#!/usr/bin/env python3
"""Causal span tracing over a bursty UDP path.

A traced variant of ``lossy_network.py``: one participant follows a
scrolling terminal through Gilbert–Elliott burst loss while every
RegionUpdate carries an end-to-end causal span
(schedule → encode → fragment → send → network → receive → reassemble
→ decode → apply).  The example then reads the trace back:

* the per-stage latency waterfall (p50/p95/p99);
* the ``recovered=yes`` split — updates that only completed because a
  NACK retransmission filled their loss;
* one fully-recovered span's stage timeline;
* the anomaly flight recorder and the Chrome-trace/Prometheus exports.

Run:  python examples/traced_lossy_network.py
"""

from repro import Instrumentation
from repro.apps import TerminalApp
from repro.net.channel import ChannelConfig, FaultProfile, duplex_lossy
from repro.obs.report import PERCENTILES, bench_payload, render_waterfall
from repro.obs.spans import OPTIONAL_STAGES, STAGES
from repro.rtp.clock import SimulatedClock
from repro.sharing import ApplicationHost, DatagramTransport, Participant
from repro.surface import Rect


def main() -> None:
    clock = SimulatedClock()
    obs = Instrumentation(clock=clock)
    obs.spans  # switch span tracing on before the session is built

    ah = ApplicationHost(clock=clock, instrumentation=obs)
    window = ah.windows.create_window(Rect(40, 40, 480, 320), title="build log")
    terminal = TerminalApp(window)
    ah.apps.attach(terminal)

    link = duplex_lossy(
        ChannelConfig(delay=0.02, seed=42),
        clock.now,
        instrumentation=obs.scoped(peer="p1"),
        faults=FaultProfile.gilbert_elliott(0.08, mean_burst=4.0),
    )
    ah.add_participant("p1", DatagramTransport(link.forward, link.backward))
    participant = Participant(
        "p1",
        DatagramTransport(link.backward, link.forward),
        clock=clock,
        config=ah.config,
        ah_supports_retransmissions=ah.config.retransmissions,
        instrumentation=obs,
    )
    participant.join()

    for i in range(500):
        if i % 5 == 0:
            terminal.append_line(f"[{i:04d}] CC module_{i % 9}.c")
        ah.advance(0.02)
        clock.advance(0.02)
        participant.process_incoming()
    for _ in range(60):  # quiet tail: let in-flight repairs land
        ah.advance(0.02)
        clock.advance(0.02)
        participant.process_incoming()

    print("per-stage latency waterfall under burst loss:")
    print(render_waterfall(bench_payload(obs, "burst-example", 500)))

    recovered = [s for s in obs.spans.completed
                 if s.outcome == "complete" and s.recovered]
    print(f"\nconverged: {participant.converged_with(ah.windows)}")
    print(f"recovered updates traced: {len(recovered)}")
    if recovered:
        span = recovered[0]
        chain_complete = all(
            stage in span.stages
            for stage in STAGES if stage not in OPTIONAL_STAGES
        )
        print(f"complete causal chain: {chain_complete}")
        start = span.start
        print(f"stage timeline of update #{span.update_id} "
              f"(e2e {span.e2e_seconds() * 1e3:.1f} ms):")
        for stage in STAGES:
            if stage not in span.stages:  # e.g. no relay in the path
                continue
            t0, t1 = span.stages[stage]
            print(f"  {stage:<10} +{(t0 - start) * 1e3:7.1f} ms "
                  f"→ +{(t1 - start) * 1e3:7.1f} ms")

    e2e = obs.registry.get("update.e2e_seconds", recovered="yes")
    p50, p95, p99 = e2e.percentiles(PERCENTILES)
    print(f"recovered-update e2e p50/p95/p99: "
          f"{p50 * 1e3:.0f}/{p95 * 1e3:.0f}/{p99 * 1e3:.0f} ms")

    # Every give-up/expiry/quarantine anomaly carries its causal
    # history; here the rings exist but no sentinel fired.
    flight = obs.flight
    print(f"flight recorder: {len(flight.dumps)} dumps, "
          f"rings for {len(flight.peers)} peers")

    chrome = obs.export_chrome_trace()
    prom = obs.export_prometheus()
    span_events = chrome.count('"ph": "X"')
    print(f"chrome trace: {span_events} span events; "
          f"prometheus exposition: {len(prom.splitlines())} lines")


if __name__ == "__main__":
    main()
