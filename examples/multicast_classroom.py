#!/usr/bin/env python3
"""E-learning broadcast: one instructor, a multicast classroom.

The draft's e-learning motivation at scale: an instructor AH shares a
terminal (a live coding demo) to a simulated multicast group.  Students
join and leave mid-lecture (PLI bootstraps them), per-student loss is
repaired with NACK retransmissions over unicast feedback channels, and
the AH encodes each update exactly once no matter how many students
watch.

Run:  python examples/multicast_classroom.py
"""

from repro.apps import TerminalApp
from repro.net.channel import ChannelConfig, duplex_lossy
from repro.net.multicast import MulticastGroup
from repro.rtp.clock import SimulatedClock
from repro.sharing import (
    ApplicationHost,
    MulticastReceiverTransport,
    MulticastSenderTransport,
    Participant,
)
from repro.surface import Rect


class Classroom:
    """Wires students into one multicast group with unicast feedback."""

    def __init__(self, clock, ah):
        self.clock = clock
        self.ah = ah
        self.group = MulticastGroup(
            ChannelConfig(delay=0.02, loss_rate=0.05, seed=100), clock.now
        )
        ah.add_participant(
            "classroom", MulticastSenderTransport(self.group), is_group=True
        )
        self.session = ah.sessions["classroom"]
        self.students: dict[str, Participant] = {}
        self._feedback = {}

    def enroll(self, name: str) -> Participant:
        member_channel = self.group.subscribe(name)
        feedback = duplex_lossy(
            ChannelConfig(delay=0.02, seed=hash(name) % 1000), self.clock.now
        )
        self._feedback[name] = feedback
        student = Participant(
            name,
            MulticastReceiverTransport(member_channel, feedback.backward),
            clock=self.clock.now,
            config=self.ah.config,
        )
        student.join()  # PLI announces the newcomer
        self.students[name] = student
        return student

    def drop_out(self, name: str) -> None:
        self.group.unsubscribe(name)
        self.students.pop(name, None)
        self._feedback.pop(name, None)

    def pump_feedback(self) -> None:
        """Unicast PLI/NACK feedback reaches the AH out-of-band."""
        for feedback in self._feedback.values():
            for packet in feedback.backward.receive_ready():
                self.ah._handle_rtcp(self.session, packet)

    def run(self, rounds: int, on_round=None) -> None:
        for i in range(rounds):
            self.pump_feedback()
            if on_round is not None:
                on_round(i)
            self.ah.advance(0.02)
            self.clock.advance(0.02)
            for student in self.students.values():
                student.process_incoming()


def main() -> None:
    clock = SimulatedClock()
    ah = ApplicationHost(clock=clock.now)
    window = ah.windows.create_window(Rect(60, 40, 560, 400), title="live demo")
    terminal = TerminalApp(window)
    ah.apps.attach(terminal)
    classroom = Classroom(clock, ah)

    for name in ("ada", "grace", "edsger"):
        classroom.enroll(name)
    print(f"lecture starts with {len(classroom.students)} students")

    lines = 0

    def lecture(i):
        nonlocal lines
        if i % 4 == 0:
            terminal.append_line(f"$ demo step {lines}: refactor module_{lines % 7}")
            lines += 1

    classroom.run(150, on_round=lecture)
    classroom.run(60)  # quiet tail so in-flight NACK repairs land
    print("mid-lecture state:",
          {n: s.converged_with(ah.windows) for n, s in classroom.students.items()})

    print("'barbara' joins late — a PLI fetches the whole screen state")
    classroom.enroll("barbara")
    classroom.run(100, on_round=lecture)
    print("  barbara converged:",
          classroom.students["barbara"].converged_with(ah.windows))
    print(f"  PLIs handled by the AH so far: {ah.plis_received}")

    print("'edsger' leaves; lecture continues")
    classroom.drop_out("edsger")
    classroom.run(150, on_round=lecture)

    print("\nfinal state:")
    for name, student in classroom.students.items():
        print(
            f"  {name:8s} converged={student.converged_with(ah.windows)} "
            f"updates={student.updates_applied} nacks={student.nacks_sent}"
        )
    sent = classroom.session.scheduler.bytes_sent
    print(
        f"\nAH encoded/sent {sent / 1024:.1f} KiB once for the whole group "
        f"({classroom.group.datagrams_sent} multicast datagrams, "
        f"{ah.nacks_received} NACKs repaired via unicast)"
    )


if __name__ == "__main__":
    main()
