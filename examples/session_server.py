#!/usr/bin/env python3
"""Multi-session hosting: one asyncio SessionServer, many join codes.

One :class:`repro.sharing.server.SessionServer` process hosts several
independent sharing sessions, each addressed by a short join code.
Participants join by code through the SIP front door; each session runs
its own signalling pump, media pump and RTCP timer as asyncio tasks on
one shared virtual clock.

Run:  python examples/session_server.py
"""

import asyncio

from repro import Instrumentation
from repro.apps import TerminalApp, TextEditorApp
from repro.sharing import SessionServer
from repro.sharing.config import SharingConfig
from repro.surface import Rect

ROOMS = 8


async def main() -> None:
    obs = Instrumentation()
    async with SessionServer(obs=obs) as server:
        # 1. Host ROOMS sessions; even rooms run a text editor, odd
        #    rooms a scrolling terminal.
        apps = {}
        for i in range(ROOMS):
            code = server.host(
                screen_width=320,
                screen_height=240,
                config=SharingConfig(adaptive_codec=False),
            )
            session = server.session(code)
            window = session.ah.windows.create_window(Rect(8, 8, 280, 200))
            app = (TextEditorApp if i % 2 == 0 else TerminalApp)(window)
            session.ah.apps.attach(app)
            apps[code] = app
        print(f"hosting {len(server.registry)} sessions: "
              f"{', '.join(sorted(server.codes()))}")

        # 2. One viewer joins every room, concurrently, by join code.
        joined = await asyncio.gather(
            *(server.join(code, "viewer") for code in apps)
        )
        print(f"joined {len(joined)} rooms through the SIP front door")

        # 3. Generate traffic in every room and wait for convergence.
        for code, app in apps.items():
            if isinstance(app, TextEditorApp):
                app.type_text(f"hello room {code}")
            else:
                for n in range(5):
                    app.append_line(f"[{code}] build output {n}")
        await server.until(
            lambda: all(
                j.participant.converged_with(server.session(c).ah.windows)
                for c, j in zip(apps, joined)
            ),
            timeout=30,
        )
        converged = sum(
            1
            for c, j in zip(apps, joined)
            if j.participant.converged_with(server.session(c).ah.windows)
        )
        print(f"converged rooms: {converged}/{ROOMS}")

        # 4. The server-wide snapshot: per-session state in one view.
        busiest = max(
            server.sessions().values(), key=lambda row: row["bytes_sent"]
        )
        print(
            f"busiest room {busiest['code']}: "
            f"{busiest['bytes_sent']} bytes to {busiest['established']}"
        )
        print(f"live sessions gauge: "
              f"{obs.registry.total('server.sessions'):.0f}")

        # 5. Viewers leave; empty sessions close and unregister.
        await asyncio.gather(*(j.leave() for j in joined))
        await server.until(lambda: len(server.registry) == 0, timeout=10)
        print(f"all viewers left; sessions remaining: {len(server.registry)}")


if __name__ == "__main__":
    asyncio.run(main())
