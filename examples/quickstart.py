#!/usr/bin/env python3
"""Quickstart: share a text editor with one participant.

Builds the smallest useful session with the two public factories —
``repro.sharing.host()`` makes a SIP-signalled service around one
Application Host, ``repro.sharing.join()`` runs the full INVITE →
negotiate → ACK handshake and returns the wired participant — then
drives typing on the AH, shows the participant converging pixel-for-
pixel, and finally types *from* the participant through the HIP channel.

Run:  python examples/quickstart.py
"""

from repro import Instrumentation
from repro.apps import TextEditorApp
from repro.sharing import host, join
from repro.surface import Rect


def main() -> None:
    # One Instrumentation object observes every layer of the session;
    # host() binds it to the session clock.
    obs = Instrumentation()
    service = host(obs=obs)
    ah = service.ah

    # 1. The AH shares a window and runs an application in it.
    window = ah.windows.create_window(
        Rect(220, 150, 350, 450), group_id=1, title="editor"
    )
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    print(f"AH shares window {window.window_id} at {window.rect.as_tuple()}")

    # 2. A participant joins through SIP signalling: the service owns
    #    the signalling queues, negotiates SDP and wires the media path.
    participant = join(service, "alice")
    kind = "tcp" if ah.sessions["alice"].transport.reliable else "udp"
    print(f"alice joined; negotiated media transport: {kind}")

    # 3. Drive the session: the AH captures damage, encodes RegionUpdate
    #    messages and ships them; the participant decodes and applies.
    def run(rounds: int) -> None:
        for _ in range(rounds):
            service.advance(0.02)

    editor.type_text("Hello from the Application Host!\n")
    run(50)
    print(f"participant now has windows {sorted(participant.windows)}")
    print(f"pixel-exact convergence: {participant.converged_with(ah.windows)}")

    # 4. The participant controls the application through HIP messages.
    participant.type_text(window.window_id, "...and hello back over HIP!")
    run(50)
    print(f"editor text on the AH:\n---\n{editor.text()}\n---")
    print(f"still pixel-exact: {participant.converged_with(ah.windows)}")

    # 5. A peek at the traffic that made this happen.
    stats = participant.stats
    print(
        f"traffic: {stats.window_info.packets} WindowManagerInfo, "
        f"{stats.region_update.packets} RegionUpdate packets "
        f"({stats.region_update.wire_bytes} bytes), "
        f"{stats.hip.packets} HIP packets"
    )

    # 6. The same session, through the unified metrics snapshot: every
    #    layer (scheduler, RTP, channel, participant) reported into one
    #    registry; update-sent → update-applied latency is reconstructed
    #    from the trace events.
    snap = obs.snapshot()
    reg = obs.registry
    print(
        f"snapshot: {len(snap['counters'])} counters, "
        f"{snap['trace']['events']} trace events"
    )
    print(
        f"  scheduler sent {reg.total('scheduler.packets_sent'):.0f} packets "
        f"({reg.total('scheduler.bytes_sent'):.0f} bytes); participant "
        f"applied {reg.total('participant.updates_applied'):.0f} updates"
    )
    latency = obs.update_latencies()
    if latency.count:
        summary = latency.summary()
        print(
            f"  update latency: p50 {summary['p50']*1000:.1f} ms, "
            f"max {summary['max']*1000:.1f} ms over {latency.count} updates"
        )


if __name__ == "__main__":
    main()
