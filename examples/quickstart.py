#!/usr/bin/env python3
"""Quickstart: share a text editor with one participant.

Builds the smallest useful session — one Application Host running a
synthetic text editor, one TCP participant over a simulated link — then
drives typing on the AH, shows the participant converging pixel-for-
pixel, and finally types *from* the participant through the HIP channel.

Run:  python examples/quickstart.py
"""

from repro import Instrumentation, quick_session
from repro.apps import TextEditorApp
from repro.surface import Rect


def main() -> None:
    # One Instrumentation object observes every layer of the session;
    # quick_session binds it to the session clock.
    obs = Instrumentation()
    ah, participant, clock = quick_session(instrumentation=obs)

    # 1. The AH shares a window and runs an application in it.
    window = ah.windows.create_window(
        Rect(220, 150, 350, 450), group_id=1, title="editor"
    )
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    print(f"AH shares window {window.window_id} at {window.rect.as_tuple()}")

    # 2. Drive the session: the AH captures damage, encodes RegionUpdate
    #    messages and ships them; the participant decodes and applies.
    def run(rounds: int) -> None:
        for _ in range(rounds):
            ah.advance(0.02)
            clock.advance(0.02)
            participant.process_incoming()

    editor.type_text("Hello from the Application Host!\n")
    run(50)
    print(f"participant now has windows {sorted(participant.windows)}")
    print(f"pixel-exact convergence: {participant.converged_with(ah.windows)}")

    # 3. The participant controls the application through HIP messages.
    participant.type_text(window.window_id, "...and hello back over HIP!")
    run(50)
    print(f"editor text on the AH:\n---\n{editor.text()}\n---")
    print(f"still pixel-exact: {participant.converged_with(ah.windows)}")

    # 4. A peek at the traffic that made this happen.
    stats = participant.stats
    print(
        f"traffic: {stats.window_info.packets} WindowManagerInfo, "
        f"{stats.region_update.packets} RegionUpdate packets "
        f"({stats.region_update.wire_bytes} bytes), "
        f"{stats.hip.packets} HIP packets"
    )

    # 5. The same session, through the unified metrics snapshot: every
    #    layer (scheduler, RTP, channel, participant) reported into one
    #    registry; update-sent → update-applied latency is reconstructed
    #    from the trace events.
    snap = obs.snapshot()
    reg = obs.registry
    print(
        f"snapshot: {len(snap['counters'])} counters, "
        f"{snap['trace']['events']} trace events"
    )
    print(
        f"  scheduler sent {reg.total('scheduler.packets_sent'):.0f} packets "
        f"({reg.total('scheduler.bytes_sent'):.0f} bytes); participant "
        f"applied {reg.total('participant.updates_applied'):.0f} updates"
    )
    latency = obs.update_latencies()
    if latency.count:
        summary = latency.summary()
        print(
            f"  update latency: p50 {summary['p50']*1000:.1f} ms, "
            f"max {summary['max']*1000:.1f} ms over {latency.count} updates"
        )


if __name__ == "__main__":
    main()
