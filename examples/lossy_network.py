#!/usr/bin/env python3
"""Sharing over a lossy UDP path: NACK recovery and a late joiner.

Demonstrates the UDP machinery of sections 4.3 and 5.3: a rate-paced
UDP participant rides out 8 % packet loss via Generic NACK
retransmissions, and a second participant joining mid-session bootstraps
with a Picture Loss Indication.

Run:  python examples/lossy_network.py
"""

from repro import Instrumentation
from repro.apps import TerminalApp
from repro.net.channel import ChannelConfig, duplex_lossy
from repro.rtp.clock import SimulatedClock
from repro.sharing import ApplicationHost, DatagramTransport, Participant
from repro.surface import Rect


def attach_udp_participant(clock, ah, name, loss_rate, seed, rate_bps=None):
    link = duplex_lossy(
        ChannelConfig(delay=0.02, loss_rate=loss_rate, seed=seed), clock.now,
        instrumentation=ah.obs.scoped(peer=name),
    )
    ah.add_participant(
        name, DatagramTransport(link.forward, link.backward), rate_bps=rate_bps
    )
    participant = Participant(
        name,
        DatagramTransport(link.backward, link.forward),
        clock=clock,
        config=ah.config,
        ah_supports_retransmissions=ah.config.retransmissions,
        instrumentation=ah.obs,
    )
    participant.join()  # UDP joiners announce themselves with a PLI
    return participant


def main() -> None:
    clock = SimulatedClock()
    obs = Instrumentation(clock=clock)
    ah = ApplicationHost(clock=clock, instrumentation=obs)
    window = ah.windows.create_window(Rect(40, 40, 480, 320), title="build log")
    terminal = TerminalApp(window)
    ah.apps.attach(terminal)

    early = attach_udp_participant(clock, ah, "early", loss_rate=0.08, seed=42)
    participants = [early]

    lines_emitted = 0

    def run(rounds, emit_every=None):
        nonlocal lines_emitted
        for i in range(rounds):
            if emit_every and i % emit_every == 0:
                terminal.append_line(
                    f"[{lines_emitted:04d}] CC module_{lines_emitted % 9}.c"
                )
                lines_emitted += 1
            ah.advance(0.02)
            clock.advance(0.02)
            for participant in participants:
                participant.process_incoming()

    print("phase 1: early participant follows a scrolling build log "
          "through 8% loss")
    run(300, emit_every=5)
    run(60)  # quiet tail: let in-flight repairs land before reporting
    print(f"  early converged: {early.converged_with(ah.windows)}")
    print(f"  NACKs sent by participant: {early.nacks_sent}, "
          f"answered by AH: {ah.nacks_received}")
    cache = ah.sessions['early'].scheduler.retransmit_cache
    print(f"  retransmit cache hits: {cache.hits}")

    print("phase 2: a late joiner arrives mid-session and PLIs for state")
    late = attach_udp_participant(clock, ah, "late", loss_rate=0.08, seed=7)
    participants.append(late)
    run(200, emit_every=5)
    print(f"  PLIs received at AH: {ah.plis_received}")
    print(f"  late joiner windows: {sorted(late.windows)}, "
          f"converged: {late.converged_with(ah.windows)}")

    print("phase 3: both keep following live updates")
    run(200, emit_every=4)
    for participant in participants:
        stats = participant.stats
        print(
            f"  {participant.id}: {stats.region_update.packets} update pkts, "
            f"{stats.region_update.wire_bytes/1024:.1f} KiB, "
            f"converged={participant.converged_with(ah.windows)}"
        )

    # The whole recovery story, from the unified metrics snapshot: the
    # channel layer counts the loss, the participants count the NACKs
    # and PLIs, and the scheduler counts the replayed packets.
    reg = obs.registry
    print("snapshot of the loss/recovery machinery:")
    print(
        f"  channel dropped {reg.total('channel.datagrams_dropped'):.0f} of "
        f"{reg.total('channel.datagrams_sent'):.0f} datagrams; "
        f"jitter buffer skipped {reg.total('jitter.sequences_skipped'):.0f} "
        f"sequences"
    )
    print(
        f"  participants sent {reg.total('participant.nacks_sent'):.0f} NACKs "
        f"/ {reg.total('participant.plis_sent'):.0f} PLIs; scheduler "
        f"replayed {reg.total('scheduler.retransmit_packets'):.0f} packets"
    )


if __name__ == "__main__":
    main()
