#!/usr/bin/env python3
"""Collaborative editing: multiple participants, BFCP floor control.

The scenario the draft's introduction motivates — "collaborative work,
software tutoring, and e-learning": an AH shares an editor and a
whiteboard with three participants on different screens and layout
policies; a BFCP floor control server arbitrates who may type or draw.

Run:  python examples/collaborative_editing.py
"""

from repro.apps import TextEditorApp, WhiteboardApp
from repro.bfcp import FloorControlServer, HidStatus
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing import (
    ApplicationHost,
    CompactedLayout,
    OriginalLayout,
    Participant,
    ShiftedLayout,
    StreamTransport,
)
from repro.surface import Rect


def attach_tcp_participant(clock, ah, name, layout, screen):
    link = duplex_reliable(ChannelConfig(delay=0.015), clock.now)
    ah.add_participant(name, StreamTransport(link.forward, link.backward))
    participant = Participant(
        name,
        StreamTransport(link.backward, link.forward),
        clock=clock.now,
        config=ah.config,
        layout=layout,
        screen_width=screen[0],
        screen_height=screen[1],
    )
    participant.join()
    return participant


def main() -> None:
    clock = SimulatedClock()
    floor = FloorControlServer()
    ah = ApplicationHost(clock=clock.now, floor_check=floor.floor_check)

    editor_window = ah.windows.create_window(
        Rect(220, 150, 350, 450), group_id=1, title="shared notes"
    )
    board_window = ah.windows.create_window(
        Rect(640, 150, 400, 300), group_id=2, title="whiteboard"
    )
    editor = TextEditorApp(editor_window)
    board = WhiteboardApp(board_window)
    ah.apps.attach(editor)
    ah.apps.attach(board)

    # Three participants mirroring Figures 3-5: original coordinates, a
    # shifted layout, and a compacted small screen.
    alice = attach_tcp_participant(clock, ah, "alice", OriginalLayout(), (1280, 1024))
    bob = attach_tcp_participant(clock, ah, "bob", ShiftedLayout(auto=True), (1280, 1024))
    carol = attach_tcp_participant(clock, ah, "carol", CompactedLayout(), (640, 480))
    everyone = [alice, bob, carol]

    def run(rounds):
        for _ in range(rounds):
            ah.advance(0.02)
            clock.advance(0.02)
            for participant in everyone:
                participant.process_incoming()

    run(60)
    print("initial sync:", {p.id: p.converged_with(ah.windows) for p in everyone})

    # Alice requests the floor and types; Bob's attempt is rejected.
    floor.request_floor("alice", user_id=1)
    floor.request_floor("bob", user_id=2)  # queued, FIFO
    print(f"floor holder: {floor.holder_participant()}, queue: {floor.queue_length}")

    alice.type_text(editor_window.window_id, "AGENDA\n1. protocol review\n")
    bob.type_text(editor_window.window_id, "bob was here")  # no floor!
    run(60)
    print(f"editor now reads:\n---\n{editor.text()}\n---")
    print(f"rejected (no floor): {ah.injector.stats.rejected_floor} events")

    # The AH blocks keyboard temporarily (a dialog got focus, say).
    floor.set_hid_status(HidStatus.STATE_MOUSE_ALLOWED)
    alice.type_text(editor_window.window_id, "IGNORED")
    alice.press_mouse(board_window.window_id, 50, 50)
    alice.move_mouse(board_window.window_id, 150, 120)
    alice.release_mouse(board_window.window_id, 150, 120)
    run(60)
    floor.set_hid_status(HidStatus.STATE_ALL_ALLOWED)
    print(f"strokes drawn while keyboard blocked: {board.strokes_completed}")

    # Alice hands over; Bob (next in FIFO) gets the floor.
    floor.release_floor(floor.holder.request_id)
    print(f"floor handed to: {floor.holder_participant()}")
    bob.type_text(editor_window.window_id, "2. bob's demo\n")
    run(60)
    print(f"editor after handover:\n---\n{editor.text()}\n---")

    run(40)
    print("final convergence:", {p.id: p.converged_with(ah.windows) for p in everyone})
    print(
        "local placements of the editor window:",
        {p.id: p.windows[editor_window.window_id].local_origin.as_tuple()
         for p in everyone},
    )


if __name__ == "__main__":
    main()
