#!/usr/bin/env python3
"""Remote desktop over real loopback sockets, negotiated with SDP.

The closest thing to production deployment this repository runs: the AH
publishes a section 10.3-style SDP offer; the participant negotiates a
TCP remoting session from it; both sides then exchange RTP over a
genuine kernel TCP connection with RFC 4571 framing — screen updates
down, keyboard events up.

Run:  python examples/remote_desktop_tcp.py
"""

import time

from repro.apps import PhotoViewerApp, TextEditorApp
from repro.core import keycodes
from repro.net.tcp import TcpListener, connect
from repro.rtp.clock import monotonic_now
from repro.sdp import build_ah_offer, negotiate, parse_sdp
from repro.sharing import ApplicationHost, Participant, TcpSocketTransport
from repro.surface import Rect


def main() -> None:
    # --- Session negotiation (section 10) ---------------------------------
    offer = build_ah_offer(remoting_port=6000, hip_port=6006)
    offer_text = offer.to_string()
    print("AH offers:")
    for line in offer_text.strip().splitlines():
        print(f"  {line}")
    agreed = negotiate(parse_sdp(offer_text), prefer_transport="tcp")
    print(
        f"participant negotiated: transport={agreed.transport}, "
        f"remoting PT={agreed.remoting_pt}, hip PT={agreed.hip_pt}, "
        f"retransmissions={agreed.retransmissions}"
    )

    # --- Real TCP connection (the negotiated transport) --------------------
    with TcpListener(port=0) as listener:  # ephemeral port for the demo
        client_conn = connect(*listener.address)
        server_conn = None
        deadline = time.monotonic() + 2
        while server_conn is None and time.monotonic() < deadline:
            accepted = listener.accept_ready()
            if accepted:
                server_conn = accepted[0]
            time.sleep(0.001)
        assert server_conn is not None, "loopback accept failed"

        try:
            # --- The shared desktop ---------------------------------------
            ah = ApplicationHost(clock=monotonic_now)
            editor_win = ah.windows.create_window(
                Rect(100, 80, 360, 280), group_id=1, title="notes"
            )
            photos_win = ah.windows.create_window(
                Rect(520, 120, 320, 240), group_id=2, title="photos"
            )
            editor = TextEditorApp(editor_win)
            viewer = PhotoViewerApp(photos_win)
            ah.apps.attach(editor)
            ah.apps.attach(viewer)

            ah.add_participant("remote", TcpSocketTransport(server_conn))
            participant = Participant(
                "remote",
                TcpSocketTransport(client_conn),
                clock=monotonic_now,
                config=ah.config,
            )
            participant.join()

            def pump(seconds: float) -> None:
                deadline = time.monotonic() + seconds
                while time.monotonic() < deadline:
                    ah.advance(0.005)
                    participant.process_incoming()
                    time.sleep(0.001)

            print("syncing initial desktop over the socket ...")
            pump(1.0)
            editor_ok = participant.window_matches(
                editor_win.window_id, editor_win.surface
            )
            print(f"  editor window pixel-exact: {editor_ok}")

            print("remote user types and flips a photo ...")
            participant.type_text(editor_win.window_id, "typed across a real socket")
            participant.press_key(photos_win.window_id, keycodes.VK_RIGHT)
            pump(1.5)
            print(f"  editor text at AH: {editor.text()!r}")
            print(f"  photo index at AH: {viewer.index}")

            stats = participant.stats
            print(
                f"socket traffic: {stats.region_update.packets} update pkts "
                f"({stats.region_update.wire_bytes / 1024:.1f} KiB), "
                f"{stats.hip.packets} HIP pkts"
            )
        finally:
            client_conn.close()
            server_conn.close()


if __name__ == "__main__":
    main()
