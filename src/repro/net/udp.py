"""Real UDP transport on loopback, for live integration tests.

Non-blocking datagram sockets carrying RTP and RTCP; the simulated
:mod:`repro.net.channel` is the default substrate for experiments, but
these sockets prove the packets survive a genuine kernel path.
"""

from __future__ import annotations

import errno
import socket

#: Practical maximum UDP payload on loopback.
MAX_DATAGRAM = 65_507


class UdpEndpoint:
    """A bound, non-blocking UDP socket with peer-directed send."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.setblocking(False)
        self.datagrams_sent = 0
        self.datagrams_received = 0

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def send_to(self, data: bytes, peer: tuple[str, int]) -> bool:
        """Best-effort send; returns False when the kernel refused."""
        if len(data) > MAX_DATAGRAM:
            raise ValueError(f"datagram too large: {len(data)}")
        try:
            self._sock.sendto(data, peer)
        except OSError as exc:
            if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK, errno.ENOBUFS):
                return False
            raise
        self.datagrams_sent += 1
        return True

    def receive(self, max_datagrams: int = 64) -> list[tuple[bytes, tuple[str, int]]]:
        """Drain up to ``max_datagrams`` pending datagrams."""
        out: list[tuple[bytes, tuple[str, int]]] = []
        for _ in range(max_datagrams):
            try:
                data, peer = self._sock.recvfrom(MAX_DATAGRAM)
            except BlockingIOError:
                break
            except OSError as exc:  # pragma: no cover - platform specific
                if exc.errno == errno.ECONNREFUSED:
                    continue
                raise
            self.datagrams_received += 1
            out.append((data, peer))
        return out

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "UdpEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
