"""Real TCP transport with RFC 4571 framing, for live integration tests.

Section 4.4: TCP "provides reliable communication and flow control
[and] is more suitable for unicast sessions"; RTP packets are framed
with a 16-bit length prefix.  The section 7 implementation note — check
the transmission buffer before sending so stale frames are skipped —
maps to the non-blocking send path here: a send that would block
reports backpressure instead of queueing unboundedly.
"""

from __future__ import annotations

import errno
import socket

from ..rtp.framing import StreamDeframer, frame


class TcpConnection:
    """A connected, non-blocking stream carrying framed RTP packets."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._deframer = StreamDeframer()
        self._pending_out = bytearray()
        self.closed = False
        self.packets_sent = 0
        self.packets_received = 0

    # -- Sending -----------------------------------------------------------

    def send_packet(self, packet: bytes) -> None:
        """Frame and queue one RTP packet, then try to flush."""
        self._pending_out.extend(frame(packet))
        self.packets_sent += 1
        self.flush()

    def flush(self) -> int:
        """Push queued bytes into the socket; returns bytes written."""
        written = 0
        while self._pending_out:
            try:
                n = self._sock.send(bytes(self._pending_out[:65536]))
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    break
                self.closed = True
                raise
            if n == 0:
                break
            del self._pending_out[:n]
            written += n
        return written

    def backlog_bytes(self) -> int:
        """Userspace backlog — the section 7 'transmission buffer' signal."""
        return len(self._pending_out)

    # -- Receiving ----------------------------------------------------------

    def receive_packets(self, max_bytes: int = 1 << 20) -> list[bytes]:
        """Drain the socket and return every complete framed packet."""
        packets: list[bytes] = []
        received = 0
        while received < max_bytes:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    break
                self.closed = True
                raise
            if not chunk:
                self.closed = True
                break
            received += len(chunk)
            packets.extend(self._deframer.feed(chunk))
        self.packets_received += len(packets)
        return packets

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "TcpConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TcpListener:
    """Accepts participant connections for an AH."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._sock.setblocking(False)

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def accept_ready(self) -> list[TcpConnection]:
        """Accept every pending connection without blocking."""
        out: list[TcpConnection] = []
        while True:
            try:
                sock, _peer = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                break
            out.append(TcpConnection(sock))
        return out

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpListener":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 5.0) -> TcpConnection:
    """Blocking connect (then non-blocking I/O) to an AH listener."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return TcpConnection(sock)
