"""Simulated network channels with loss, delay, jitter and bandwidth.

Experiments need repeatable network behaviour, so instead of live
Internet paths the benchmark harness runs the AH↔participant traffic
through these seeded channel models (real loopback sockets live in
:mod:`repro.net.udp` / :mod:`repro.net.tcp` for integration tests).

Two models mirror the draft's two transports:

* :class:`LossyChannel` — datagram semantics for UDP/multicast paths:
  i.i.d. loss, propagation delay plus jitter (which reorders), and a
  serialisation-rate bottleneck.
* :class:`ReliableChannel` — stream semantics for TCP paths: nothing is
  lost or reordered, but a bounded send buffer drains at link rate and
  exposes its backlog, which is exactly the signal the section 7
  implementation note tells AHs to watch.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Scriptable impairments layered on top of a :class:`LossyChannel`.

    The base channel keeps its i.i.d. ``loss_rate``; a fault profile
    adds the correlated/bursty behaviour real access links exhibit,
    which is what actually exercises loss-recovery state machines
    (NACK retries, reassembly expiry, duplicate suppression):

    * **Burst loss** — a Gilbert–Elliott two-state model: the link
      flips between a *good* and a *bad* state with per-datagram
      transition probabilities, each state dropping with its own rate.
    * **Reordering** — a fraction of datagrams is held back by
      ``reorder_delay`` extra seconds, overtaking later traffic.
    * **Duplication** — a fraction of datagrams arrives twice (the
      second copy after an independent delay draw).
    * **Delay jitter spikes** — occasional large one-off latency
      additions, modelling bufferbloat/wireless stalls.
    """

    #: Gilbert–Elliott transition probabilities (per datagram).
    p_good_bad: float = 0.0
    p_bad_good: float = 1.0
    #: Loss rate while in each state.
    loss_good: float = 0.0
    loss_bad: float = 1.0
    reorder_rate: float = 0.0
    reorder_delay: float = 0.05
    duplicate_rate: float = 0.0
    jitter_spike_rate: float = 0.0
    jitter_spike: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad",
                     "reorder_rate", "duplicate_rate", "jitter_spike_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.reorder_delay < 0 or self.jitter_spike < 0:
            raise ValueError("extra delays cannot be negative")

    @classmethod
    def gilbert_elliott(cls, loss_rate: float,
                        mean_burst: float = 3.0) -> "FaultProfile":
        """A burst-loss profile with ``loss_rate`` average drop rate.

        The bad state drops everything and lasts ``mean_burst``
        datagrams on average; the good state is transparent.  With
        stationary bad-state occupancy ``loss_rate``, the good→bad
        transition probability follows from the balance equation.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1 datagram")
        p_bad_good = 1.0 / mean_burst
        p_good_bad = (
            loss_rate * p_bad_good / (1.0 - loss_rate) if loss_rate else 0.0
        )
        return cls(
            p_good_bad=min(p_good_bad, 1.0),
            p_bad_good=p_bad_good,
            loss_good=0.0,
            loss_bad=1.0,
        )


class GilbertElliott:
    """The two-state Markov loss process of a :class:`FaultProfile`."""

    __slots__ = ("profile", "_rng", "bad")

    def __init__(self, profile: FaultProfile, rng: random.Random) -> None:
        self.profile = profile
        self._rng = rng
        self.bad = False

    def lose(self) -> bool:
        """Advance one datagram through the chain; True means drop it."""
        p = self.profile
        if self.bad:
            if self._rng.random() < p.p_bad_good:
                self.bad = False
        else:
            if self._rng.random() < p.p_good_bad:
                self.bad = True
        rate = p.loss_bad if self.bad else p.loss_good
        return rate > 0 and self._rng.random() < rate


@dataclass(frozen=True, slots=True)
class ChannelConfig:
    """Shared knobs for the simulated channels.

    ``bandwidth_bps`` of 0 means an infinitely fast link.  ``mtu`` only
    constrains datagram channels: oversized datagrams are dropped (as
    IP fragmentation-with-loss ultimately does to them).
    """

    delay: float = 0.02
    jitter: float = 0.0
    loss_rate: float = 0.0
    bandwidth_bps: int = 0
    mtu: int = 65_507
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay/jitter cannot be negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.bandwidth_bps < 0:
            raise ValueError("bandwidth cannot be negative")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")


class LossyChannel:
    """One-directional datagram pipe with seeded impairments."""

    def __init__(
        self,
        config: ChannelConfig,
        now: Callable[[], float],
        instrumentation=None,
        faults: FaultProfile | None = None,
    ) -> None:
        self.config = config
        self._now = as_now(now)
        self._rng = random.Random(config.seed)
        self._in_flight: list[tuple[float, int, bytes]] = []
        self._counter = 0  # tie-break so heapq never compares bytes
        self._link_free_at = 0.0
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_dropped_burst = 0
        self.datagrams_dropped_partition = 0
        self.datagrams_oversize = 0
        self.datagrams_duplicated = 0
        self.datagrams_reordered = 0
        self.bytes_sent = 0
        self._faults: FaultProfile | None = None
        self._gilbert: GilbertElliott | None = None
        #: Chaos switches (see partition()/stall()/heal()).
        self._partitioned = False
        self._stalled = False
        obs = instrumentation if instrumentation is not None else NULL
        self._c_sent = obs.counter("channel.datagrams_sent")
        self._c_bytes = obs.counter("channel.bytes_sent")
        self._c_dropped = obs.counter("channel.datagrams_dropped")
        self._c_dropped_burst = obs.counter("channel.datagrams_dropped_burst")
        self._c_dropped_partition = obs.counter(
            "channel.datagrams_dropped_partition"
        )
        self._c_oversize = obs.counter("channel.datagrams_oversize")
        self._c_duplicated = obs.counter("channel.datagrams_duplicated")
        self._c_reordered = obs.counter("channel.datagrams_reordered")
        self._g_in_flight = obs.gauge("channel.in_flight")
        if faults is not None:
            self.set_faults(faults)

    @property
    def faults(self) -> FaultProfile | None:
        return self._faults

    def set_faults(self, profile: FaultProfile | None) -> None:
        """Install (or clear, with None) a fault profile mid-run.

        The Gilbert–Elliott chain restarts in the good state; draws
        come from the channel's seeded RNG, so a scripted fault
        schedule stays fully deterministic.
        """
        self._faults = profile
        self._gilbert = (
            GilbertElliott(profile, self._rng) if profile is not None else None
        )

    # -- Chaos switches ----------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    @property
    def stalled(self) -> bool:
        return self._stalled

    def partition(self) -> None:
        """Hard partition: every datagram sent from now on is dropped.

        Unlike a 100%-loss :class:`FaultProfile` this is a scripted
        *state*, not a probabilistic process — the chaos schedules in
        :class:`~repro.net.simulator.Simulation` flip it on and off
        deterministically.  Datagrams already in flight still arrive
        (they left before the cut)."""
        self._partitioned = True

    def stall(self) -> None:
        """Stall delivery: arrivals are withheld until :meth:`heal`.

        Models a bufferbloated/frozen path: the sender keeps sending
        (nothing is dropped), but :meth:`receive_ready` yields nothing
        while stalled; healing floods out everything whose arrival
        time has passed."""
        self._stalled = True

    def heal(self) -> None:
        """Clear partition and stall states."""
        self._partitioned = False
        self._stalled = False

    def send(self, datagram: bytes) -> bool:
        """Queue a datagram; returns False when it was dropped."""
        self.datagrams_sent += 1
        self.bytes_sent += len(datagram)
        self._c_sent.inc()
        self._c_bytes.inc(len(datagram))
        if len(datagram) > self.config.mtu:
            self.datagrams_oversize += 1
            self._c_oversize.inc()
            return False
        if self._partitioned:
            self.datagrams_dropped += 1
            self.datagrams_dropped_partition += 1
            self._c_dropped.inc()
            self._c_dropped_partition.inc()
            return False
        if self._rng.random() < self.config.loss_rate:
            self.datagrams_dropped += 1
            self._c_dropped.inc()
            return False
        if self._gilbert is not None and self._gilbert.lose():
            self.datagrams_dropped += 1
            self.datagrams_dropped_burst += 1
            self._c_dropped.inc()
            self._c_dropped_burst.inc()
            return False
        now = self._now()
        if self.config.bandwidth_bps > 0:
            serialisation = len(datagram) * 8 / self.config.bandwidth_bps
            start = max(now, self._link_free_at)
            self._link_free_at = start + serialisation
            departure = self._link_free_at
        else:
            departure = now
        arrival = departure + self.config.delay
        if self.config.jitter > 0:
            arrival += self._rng.uniform(0, self.config.jitter)
        faults = self._faults
        if faults is not None:
            if (faults.jitter_spike_rate > 0
                    and self._rng.random() < faults.jitter_spike_rate):
                arrival += faults.jitter_spike
            if (faults.reorder_rate > 0
                    and self._rng.random() < faults.reorder_rate):
                arrival += faults.reorder_delay
                self.datagrams_reordered += 1
                self._c_reordered.inc()
            if (faults.duplicate_rate > 0
                    and self._rng.random() < faults.duplicate_rate):
                copy_arrival = departure + self.config.delay
                if self.config.jitter > 0:
                    copy_arrival += self._rng.uniform(0, self.config.jitter)
                heapq.heappush(
                    self._in_flight, (copy_arrival, self._counter, datagram)
                )
                self._counter += 1
                self.datagrams_duplicated += 1
                self._c_duplicated.inc()
        heapq.heappush(self._in_flight, (arrival, self._counter, datagram))
        self._counter += 1
        self._g_in_flight.set(len(self._in_flight))
        return True

    def receive_ready(self) -> list[bytes]:
        """Datagrams whose arrival time has passed, in arrival order."""
        if self._stalled:
            return []
        now = self._now()
        out: list[bytes] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            out.append(heapq.heappop(self._in_flight)[2])
        if out:
            self._g_in_flight.set(len(self._in_flight))
        return out

    def next_arrival(self) -> float | None:
        """Earliest pending arrival time, or None when idle."""
        return self._in_flight[0][0] if self._in_flight else None

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class ReliableChannel:
    """One-directional stream pipe: TCP-like delivery with a send buffer.

    Bytes enter a bounded buffer and drain at link rate; everything
    arrives, in order, ``delay`` after its serialisation completes.
    :meth:`backlog_bytes` is the select()-style signal from the draft's
    implementation notes: "monitor the state of their TCP transmission
    buffers ... and only send the most recent screen data when there is
    no backlog."
    """

    def __init__(
        self,
        config: ChannelConfig,
        now: Callable[[], float],
        send_buffer: int = 256 * 1024,
        instrumentation=None,
    ) -> None:
        if send_buffer <= 0:
            raise ValueError("send buffer must be positive")
        self.config = config
        self._now = as_now(now)
        self.send_buffer = send_buffer
        self._in_flight: list[tuple[float, int, bytes]] = []
        self._counter = 0
        self._link_free_at = 0.0
        self.bytes_sent = 0
        self.sends_refused = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_bytes = obs.counter("channel.bytes_sent")
        self._c_refused = obs.counter("channel.sends_refused")
        self._g_backlog = obs.gauge("channel.backlog_bytes")

    def _drain_level(self, now: float) -> int:
        """Bytes still queued ahead of the link at time ``now``."""
        backlog = 0.0
        if self.config.bandwidth_bps > 0 and self._link_free_at > now:
            backlog = (self._link_free_at - now) * self.config.bandwidth_bps / 8
        return int(backlog)

    def backlog_bytes(self) -> int:
        return self._drain_level(self._now())

    def can_send(self, size: int) -> bool:
        """Would ``size`` bytes fit the send buffer right now?"""
        return self._drain_level(self._now()) + size <= self.send_buffer

    def send(self, data: bytes) -> bool:
        """Queue stream bytes; refuses (returns False) when buffer is full.

        Refusal models a non-blocking socket returning EWOULDBLOCK —
        the sender is expected to retry after the backlog drains.
        """
        now = self._now()
        if not self.can_send(len(data)):
            self.sends_refused += 1
            self._c_refused.inc()
            return False
        if self.config.bandwidth_bps > 0:
            serialisation = len(data) * 8 / self.config.bandwidth_bps
            start = max(now, self._link_free_at)
            self._link_free_at = start + serialisation
            departure = self._link_free_at
        else:
            departure = now
        arrival = departure + self.config.delay
        heapq.heappush(self._in_flight, (arrival, self._counter, data))
        self._counter += 1
        self.bytes_sent += len(data)
        self._c_bytes.inc(len(data))
        self._g_backlog.set(self._drain_level(now))
        return True

    def receive_ready(self) -> bytes:
        """Contiguous stream bytes that have arrived by now."""
        now = self._now()
        chunks: list[bytes] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            chunks.append(heapq.heappop(self._in_flight)[2])
        return b"".join(chunks)

    def next_arrival(self) -> float | None:
        return self._in_flight[0][0] if self._in_flight else None


@dataclass(slots=True)
class DuplexChannel:
    """A forward/backward pair used for one AH↔participant association."""

    forward: LossyChannel | ReliableChannel
    backward: LossyChannel | ReliableChannel

    def _each(self, verb: str) -> None:
        for side in (self.forward, self.backward):
            method = getattr(side, verb, None)
            if method is not None:
                method()

    def partition(self) -> None:
        """Cut both directions (see :meth:`LossyChannel.partition`)."""
        self._each("partition")

    def stall(self) -> None:
        """Stall both directions (see :meth:`LossyChannel.stall`)."""
        self._each("stall")

    def heal(self) -> None:
        """Clear partition/stall on both directions."""
        self._each("heal")


def duplex_lossy(
    config: ChannelConfig,
    now: Callable[[], float],
    back_seed_offset: int = 1,
    instrumentation=None,
    faults: FaultProfile | None = None,
    back_faults: FaultProfile | None = None,
) -> DuplexChannel:
    """Symmetric lossy pair with independent loss processes.

    ``faults`` impairs the forward (AH→participant) direction,
    ``back_faults`` the return path; either may be None.
    """
    back = ChannelConfig(
        delay=config.delay,
        jitter=config.jitter,
        loss_rate=config.loss_rate,
        bandwidth_bps=config.bandwidth_bps,
        mtu=config.mtu,
        seed=config.seed + back_seed_offset,
    )
    obs = instrumentation if instrumentation is not None else NULL
    return DuplexChannel(
        LossyChannel(config, now, instrumentation=obs.scoped(dir="fwd"),
                     faults=faults),
        LossyChannel(back, now, instrumentation=obs.scoped(dir="back"),
                     faults=back_faults),
    )


def duplex_reliable(
    config: ChannelConfig,
    now: Callable[[], float],
    send_buffer: int = 256 * 1024,
    instrumentation=None,
) -> DuplexChannel:
    obs = instrumentation if instrumentation is not None else NULL
    return DuplexChannel(
        ReliableChannel(config, now, send_buffer,
                        instrumentation=obs.scoped(dir="fwd")),
        ReliableChannel(config, now, send_buffer,
                        instrumentation=obs.scoped(dir="back")),
    )
