"""Token-bucket rate control for UDP senders.

"The AH controls the transmission rate for participants using UDP,
because UDP itself does not provide flow and congestion control.
Several simultaneous multicast sessions with different transmission
rates can be created at the AH." (section 4.3)  Each rate tier gets its
own :class:`TokenBucket`.
"""

from __future__ import annotations

from typing import Callable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL


class TokenBucket:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` burst."""

    def __init__(
        self,
        rate_bps: int,
        now: Callable[[], float],
        burst_bytes: int | None = None,
        instrumentation=None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self._now = as_now(now)
        self.burst_bytes = burst_bytes if burst_bytes is not None else max(
            1500, rate_bps // 8 // 20  # ~50 ms worth by default
        )
        if self.burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self._tokens = float(self.burst_bytes)
        self._last_refill = self._now()
        self.bytes_admitted = 0
        self.bytes_deferred = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_admitted = obs.counter("ratecontrol.bytes_admitted")
        self._c_deferred = obs.counter("ratecontrol.bytes_deferred")

    def _refill(self) -> None:
        now = self._now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + elapsed * self.rate_bps / 8,
            )
            self._last_refill = now

    def try_consume(self, size: int) -> bool:
        """Admit ``size`` bytes if tokens allow; otherwise defer."""
        if size < 0:
            raise ValueError("size cannot be negative")
        self._refill()
        if size <= self._tokens:
            self._tokens -= size
            self.bytes_admitted += size
            self._c_admitted.inc(size)
            return True
        self.bytes_deferred += size
        self._c_deferred.inc(size)
        return False

    def available(self) -> int:
        """Bytes currently sendable without waiting."""
        self._refill()
        return int(self._tokens)

    def time_until(self, size: int) -> float:
        """Seconds until ``size`` bytes could be admitted (0 if now).

        Sizes beyond the burst can never be admitted whole; the caller
        must fragment first.  For those we report the time to fill the
        bucket completely.
        """
        self._refill()
        target = min(float(size), float(self.burst_bytes))
        deficit = target - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 8 / self.rate_bps
