"""Simulated multicast: one send fans out to N independent lossy paths.

"The AH can support both multicast and unicast transmissions" (section
4.2).  Real IP multicast is not available in the test environment, so
the group is modelled as the thing that matters to the protocol: a
single send operation whose copies traverse *independent* loss/delay
processes to each subscriber — which is why two receivers NACK
different packets and why NACK-storm suppression (section 5.3.2)
exists.
"""

from __future__ import annotations

from typing import Callable

from .channel import ChannelConfig, LossyChannel


class MulticastGroup:
    """A named group address with per-subscriber delivery channels."""

    def __init__(
        self,
        config: ChannelConfig,
        now: Callable[[], float],
        name: str = "239.0.0.1:6000",
    ) -> None:
        self.config = config
        self.name = name
        self._now = now
        self._subscribers: dict[str, LossyChannel] = {}
        self._next_seed = config.seed
        self.datagrams_sent = 0

    def subscribe(self, subscriber_id: str) -> LossyChannel:
        """Join the group; returns the subscriber's receive channel."""
        if subscriber_id in self._subscribers:
            raise ValueError(f"subscriber {subscriber_id!r} already joined")
        self._next_seed += 7919  # distinct loss process per subscriber
        member_config = ChannelConfig(
            delay=self.config.delay,
            jitter=self.config.jitter,
            loss_rate=self.config.loss_rate,
            bandwidth_bps=self.config.bandwidth_bps,
            mtu=self.config.mtu,
            seed=self._next_seed,
        )
        channel = LossyChannel(member_config, self._now)
        self._subscribers[subscriber_id] = channel
        return channel

    def unsubscribe(self, subscriber_id: str) -> None:
        self._subscribers.pop(subscriber_id, None)

    def send(self, datagram: bytes) -> int:
        """Fan a datagram out to every subscriber; returns copies delivered
        to the network (not necessarily surviving loss)."""
        self.datagrams_sent += 1
        delivered = 0
        # Snapshot: a delivery side effect may unsubscribe mid-fan-out
        # (a relay dropping a departed viewer), and mutating the dict
        # while iterating it would raise RuntimeError.
        for channel in list(self._subscribers.values()):
            if channel.send(datagram):
                delivered += 1
        return delivered

    def channel_for(self, subscriber_id: str) -> LossyChannel:
        return self._subscribers[subscriber_id]

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def subscriber_ids(self) -> list[str]:
        return list(self._subscribers)
