"""Session simulation driver.

Tests, examples and benchmarks all advance the same loop: tick the AH,
advance the clock, service the participants.  :class:`Simulation`
centralises that with convergence-aware stepping, so experiment code
reads as *what* it drives rather than *how* the loop works.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..obs.clockutil import resolve_clock
from ..obs.instrumentation import NULL
from ..rtp.clock import SimulatedClock


class Simulation:
    """Drives one AH and its participants on a shared simulated clock."""

    def __init__(
        self,
        ah,
        clock: SimulatedClock = None,
        dt: float = 0.02,
        instrumentation=None,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if clock is None or not callable(getattr(clock, "advance", None)):
            raise TypeError(
                "Simulation needs a clock with now() and advance()"
            )
        resolve_clock(clock, None, "Simulation")  # validates now()
        self.ah = ah
        self.clock = clock
        self.dt = dt
        #: Where snapshots come from; defaults to the AH's own object so
        #: one injection at AH construction covers the whole harness.
        self.obs = (
            instrumentation if instrumentation is not None
            else getattr(ah, "obs", NULL)
        )
        self.participants: list = []
        #: Callables invoked with the round index before each step.
        self.drivers: list[Callable[[int], None]] = []
        self.rounds_run = 0
        #: (time, snapshot) pairs collected by :meth:`sample_every`.
        self.samples: list[tuple[float, dict]] = []
        self._sample_interval: float | None = None
        self._sampler: Callable[[], dict] | None = None
        self._next_sample = 0.0
        #: Scripted one-shot events: (time, order, callback) heap.
        self._scripted: list[tuple[float, int, Callable[[], None]]] = []
        self._scripted_counter = 0

    def add_participant(self, participant) -> None:
        self.participants.append(participant)

    def add_driver(self, driver: Callable[[int], None]) -> None:
        self.drivers.append(driver)

    # -- Observability ----------------------------------------------------

    def snapshot(self, events: bool = False) -> dict:
        """The session's metrics snapshot plus simulation progress."""
        snap = self.obs.snapshot(events=events)
        snap["simulation"] = {
            "time": self.clock.now(),
            "rounds": self.rounds_run,
            "dt": self.dt,
        }
        return snap

    def sample_every(
        self,
        interval: float,
        sampler: Callable[[], dict] | None = None,
    ) -> None:
        """Collect periodic snapshots into :attr:`samples`.

        Every ``interval`` simulated seconds, ``sampler()`` (default
        :meth:`snapshot`) is appended as ``(time, sample)``.  Call again
        to change cadence; the next sample is rescheduled from now.
        """
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self._sample_interval = interval
        self._sampler = sampler
        self._next_sample = self.clock.now() + interval

    # -- Fault scripting ---------------------------------------------------

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` once, at the first step where clock >= time.

        The hook for scripted fault schedules: flip a channel's
        :class:`~repro.net.channel.FaultProfile` on, clear it, change
        an app's behaviour — all deterministically placed on the
        simulated timeline.

            sim.at(2.0, lambda: link.forward.set_faults(burst))
            sim.at(6.0, lambda: link.forward.set_faults(None))
        """
        heapq.heappush(
            self._scripted, (time, self._scripted_counter, callback)
        )
        self._scripted_counter += 1

    # -- Chaos scripting ---------------------------------------------------
    #
    # Deterministic failure events on the simulated timeline.  Targets
    # are duck-typed: anything with ``crash()`` can be crashed, and
    # anything with ``partition()``/``stall()``/``heal()`` — a
    # :class:`~repro.net.channel.LossyChannel`, a
    # :class:`~repro.net.channel.DuplexChannel`, or a relay tree link —
    # can be cut, frozen and healed.  Combined with
    # :meth:`~repro.net.channel.LossyChannel.set_faults` schedules this
    # is the whole chaos vocabulary ``bench_chaos.py`` uses.

    def crash_at(self, time: float, node) -> None:
        """Kill ``node`` (anything with ``crash()``) at ``time``."""
        self.at(time, node.crash)

    def partition_at(self, time: float, target,
                     duration: float | None = None) -> None:
        """Cut ``target`` at ``time``; auto-heal after ``duration``."""
        self.at(time, target.partition)
        if duration is not None:
            self.at(time + duration, target.heal)

    def stall_at(self, time: float, target,
                 duration: float | None = None) -> None:
        """Freeze ``target``'s delivery at ``time``; optionally heal."""
        self.at(time, target.stall)
        if duration is not None:
            self.at(time + duration, target.heal)

    def heal_at(self, time: float, target) -> None:
        """Clear ``target``'s partition/stall at ``time``."""
        self.at(time, target.heal)

    # -- Stepping ---------------------------------------------------------

    def step(self) -> None:
        now = self.clock.now()
        while self._scripted and self._scripted[0][0] <= now:
            heapq.heappop(self._scripted)[2]()
        for driver in self.drivers:
            driver(self.rounds_run)
        self.ah.advance(self.dt)
        self.clock.advance(self.dt)
        for participant in self.participants:
            participant.process_incoming()
        self.rounds_run += 1
        if self._sample_interval is not None:
            now = self.clock.now()
            if now >= self._next_sample:
                sampler = self._sampler or self.snapshot
                self.samples.append((now, sampler()))
                while self._next_sample <= now:
                    self._next_sample += self._sample_interval

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    def run_seconds(self, seconds: float) -> None:
        self.run(max(1, round(seconds / self.dt)))

    def run_until(
        self,
        condition: Callable[[], bool],
        timeout: float = 30.0,
    ) -> bool:
        """Step until ``condition()`` holds; False when time runs out.

        The condition is evaluated once per round, including one final
        time at the deadline, so a condition that becomes true on the
        very last step is still observed.
        """
        deadline = self.clock.now() + timeout
        while True:
            if condition():
                return True
            if self.clock.now() >= deadline:
                return False
            self.step()

    def run_until_converged(self, timeout: float = 30.0,
                            screen_only: bool = False) -> bool:
        """Step until every participant matches the AH."""
        def all_converged() -> bool:
            for participant in self.participants:
                if screen_only:
                    if not participant.screen_converged_with(self.ah.windows):
                        return False
                elif not participant.converged_with(self.ah.windows):
                    return False
            return bool(self.participants)

        return self.run_until(all_converged, timeout=timeout)
