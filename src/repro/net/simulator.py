"""Session simulation driver.

Tests, examples and benchmarks all advance the same loop: tick the AH,
advance the clock, service the participants.  :class:`Simulation`
centralises that with convergence-aware stepping, so experiment code
reads as *what* it drives rather than *how* the loop works.
"""

from __future__ import annotations

from typing import Callable

from ..rtp.clock import SimulatedClock


class Simulation:
    """Drives one AH and its participants on a shared simulated clock."""

    def __init__(self, ah, clock: SimulatedClock, dt: float = 0.02) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.ah = ah
        self.clock = clock
        self.dt = dt
        self.participants: list = []
        #: Callables invoked with the round index before each step.
        self.drivers: list[Callable[[int], None]] = []
        self.rounds_run = 0

    def add_participant(self, participant) -> None:
        self.participants.append(participant)

    def add_driver(self, driver: Callable[[int], None]) -> None:
        self.drivers.append(driver)

    # -- Stepping ---------------------------------------------------------

    def step(self) -> None:
        for driver in self.drivers:
            driver(self.rounds_run)
        self.ah.advance(self.dt)
        self.clock.advance(self.dt)
        for participant in self.participants:
            participant.process_incoming()
        self.rounds_run += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    def run_seconds(self, seconds: float) -> None:
        self.run(max(1, round(seconds / self.dt)))

    def run_until(
        self,
        condition: Callable[[], bool],
        timeout: float = 30.0,
    ) -> bool:
        """Step until ``condition()`` holds; False when time runs out."""
        deadline = self.clock.now() + timeout
        while self.clock.now() < deadline:
            if condition():
                return True
            self.step()
        return condition()

    def run_until_converged(self, timeout: float = 30.0,
                            screen_only: bool = False) -> bool:
        """Step until every participant matches the AH."""
        def all_converged() -> bool:
            for participant in self.participants:
                if screen_only:
                    if not participant.screen_converged_with(self.ah.windows):
                        return False
                elif not participant.converged_with(self.ah.windows):
                    return False
            return bool(self.participants)

        return self.run_until(all_converged, timeout=timeout)
