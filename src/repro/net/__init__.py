"""Transport substrate: simulated channels, rate control, real sockets."""

from .channel import (
    ChannelConfig,
    DuplexChannel,
    LossyChannel,
    ReliableChannel,
    duplex_lossy,
    duplex_reliable,
)
from .multicast import MulticastGroup
from .ratecontrol import TokenBucket
from .simulator import Simulation
from .tcp import TcpConnection, TcpListener, connect
from .udp import MAX_DATAGRAM, UdpEndpoint

__all__ = [
    "ChannelConfig",
    "DuplexChannel",
    "LossyChannel",
    "MAX_DATAGRAM",
    "MulticastGroup",
    "ReliableChannel",
    "Simulation",
    "TcpConnection",
    "TcpListener",
    "TokenBucket",
    "UdpEndpoint",
    "connect",
    "duplex_lossy",
    "duplex_reliable",
]
