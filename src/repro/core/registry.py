"""Message-type values and the IANA-style extension registries.

Reproduces Table 1 (remoting message types), Table 3/5 (HIP message
types) and the section 9 registry model: values are registered with a
name and reference, unknown remoting/HIP types "MAY [be] ignore[d]" by
participants, and re-registration of an assigned value is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ProtocolError

# -- Table 1: Remoting protocol message types ---------------------------

MSG_WINDOW_MANAGER_INFO = 1
MSG_REGION_UPDATE = 2
MSG_MOVE_RECTANGLE = 3
MSG_MOUSE_POINTER_INFO = 4

# -- Table 3: HIP message types ------------------------------------------

MSG_MOUSE_PRESSED = 121
MSG_MOUSE_RELEASED = 122
MSG_MOUSE_MOVED = 123
MSG_MOUSE_WHEEL_MOVED = 124
MSG_KEY_PRESSED = 125
MSG_KEY_RELEASED = 126
MSG_KEY_TYPED = 127

#: Msg Type is an 8-bit identifier (section 5.1.2).
MAX_MESSAGE_TYPE = 0xFF


@dataclass(frozen=True, slots=True)
class RegistryEntry:
    """One registered message type: value, name, defining reference."""

    value: int
    name: str
    reference: str


class MessageTypeRegistry:
    """A section 9 subregistry ("Specification Required" policy)."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._entries: dict[int, RegistryEntry] = {}

    def register(self, value: int, name: str, reference: str) -> RegistryEntry:
        if not 0 <= value <= MAX_MESSAGE_TYPE:
            raise ProtocolError(f"message type out of 8-bit range: {value}")
        if value in self._entries:
            raise ProtocolError(
                f"{self.title}: value {value} already assigned to "
                f"{self._entries[value].name}"
            )
        entry = RegistryEntry(value, name, reference)
        self._entries[value] = entry
        return entry

    def lookup(self, value: int) -> RegistryEntry | None:
        """The entry for ``value``, or None (caller MAY ignore unknowns)."""
        return self._entries.get(value)

    def is_registered(self, value: int) -> bool:
        return value in self._entries

    def entries(self) -> list[RegistryEntry]:
        return [self._entries[v] for v in sorted(self._entries)]


def remoting_registry() -> MessageTypeRegistry:
    """Initial values of the Remoting Message Types subregistry (Table 4)."""
    registry = MessageTypeRegistry("Remoting Message Types")
    registry.register(MSG_WINDOW_MANAGER_INFO, "WindowManagerInfo", "RFC nnnn")
    registry.register(MSG_REGION_UPDATE, "RegionUpdate", "RFC nnnn")
    registry.register(MSG_MOVE_RECTANGLE, "MoveRectangle", "RFC nnnn")
    registry.register(MSG_MOUSE_POINTER_INFO, "MousePointerInfo", "RFC nnnn")
    return registry


def hip_registry() -> MessageTypeRegistry:
    """Initial values of the HIP Message Types subregistry (Table 5)."""
    registry = MessageTypeRegistry("HIP Message Types")
    registry.register(MSG_MOUSE_PRESSED, "MousePressed", "RFC nnnn")
    registry.register(MSG_MOUSE_RELEASED, "MouseReleased", "RFC nnnn")
    registry.register(MSG_MOUSE_MOVED, "MouseMoved", "RFC nnnn")
    registry.register(MSG_MOUSE_WHEEL_MOVED, "MouseWheelMoved", "RFC nnnn")
    registry.register(MSG_KEY_PRESSED, "KeyPressed", "RFC nnnn")
    registry.register(MSG_KEY_RELEASED, "KeyReleased", "RFC nnnn")
    registry.register(MSG_KEY_TYPED, "KeyTyped", "RFC nnnn")
    return registry
