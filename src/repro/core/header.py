"""The common remoting/HIP header (Figure 7) and its RegionUpdate variant.

Every remoting and HIP message starts with the same 32-bit header:

     0                   1                   2                   3
     0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |  Msg Type     |    Parameter  |          WindowID             |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

For RegionUpdate and MousePointerInfo the 8-bit parameter packs the
FirstPacket bit (MSB) and a 7-bit content payload type (Figure 10).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import ProtocolError

COMMON_HEADER_LEN = 4
MAX_WINDOW_ID = 0xFFFF
MAX_PARAMETER = 0xFF
MAX_CONTENT_PT = 0x7F

_HEADER = struct.Struct("!BBH")


@dataclass(frozen=True, slots=True)
class CommonHeader:
    """Msg Type, Parameter, WindowID — the first 4 payload bytes."""

    message_type: int
    parameter: int
    window_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.message_type <= 0xFF:
            raise ProtocolError(f"msg type out of range: {self.message_type}")
        if not 0 <= self.parameter <= MAX_PARAMETER:
            raise ProtocolError(f"parameter out of range: {self.parameter}")
        if not 0 <= self.window_id <= MAX_WINDOW_ID:
            raise ProtocolError(f"windowID out of range: {self.window_id}")

    def encode(self) -> bytes:
        return _HEADER.pack(self.message_type, self.parameter, self.window_id)

    @classmethod
    def decode(cls, data: bytes) -> "CommonHeader":
        if len(data) < COMMON_HEADER_LEN:
            raise ProtocolError(
                f"payload too short for common header: {len(data)} bytes",
                reason="truncated",
            )
        msg_type, parameter, window_id = _HEADER.unpack_from(data)
        return cls(msg_type, parameter, window_id)


def pack_update_parameter(first_packet: bool, content_pt: int) -> int:
    """Pack the F bit and 7-bit content PT into the parameter byte."""
    if not 0 <= content_pt <= MAX_CONTENT_PT:
        raise ProtocolError(f"content payload type out of range: {content_pt}")
    return (0x80 if first_packet else 0x00) | content_pt


def unpack_update_parameter(parameter: int) -> tuple[bool, int]:
    """Split a RegionUpdate/MousePointerInfo parameter byte into (F, PT)."""
    if not 0 <= parameter <= MAX_PARAMETER:
        raise ProtocolError(f"parameter out of range: {parameter}")
    return bool(parameter & 0x80), parameter & 0x7F
