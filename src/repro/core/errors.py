"""Protocol-level exceptions for the remoting and HIP payload formats."""

from __future__ import annotations


class ProtocolError(Exception):
    """Raised when a remoting/HIP message violates the wire format."""


class FragmentationError(ProtocolError):
    """Raised when a fragment sequence cannot be reassembled."""
