"""Protocol-level exceptions shared by every wire decoder.

Section 8 of the draft warns that application sharing "inherently
exposes the shared applications to risks by malicious participants".
The first line of defence is that no decoder ever leaks a raw
``struct.error`` / ``IndexError`` / ``UnicodeDecodeError`` to its
caller: every wire surface (remoting, HIP, RTP, RTCP, SDP, SIP, BFCP,
codec bitstreams) raises inside the :class:`ProtocolError` taxonomy, so
ingress code can catch one exception family, classify it, and feed the
quarantine counters (``docs/HARDENING.md``).

The taxonomy groups violations into four buckets carried by the
``reason`` attribute:

``truncated``
    The input ended before a declared or structurally required length.
``overflow``
    A declared size (fragment count, chunk length, string field, image
    dimension) exceeds the hard cap this implementation enforces.
``bad_magic``
    A signature, version, or message-type discriminator is wrong — the
    bytes are not the message the caller expected.
``semantic``
    Fields parse but violate protocol semantics (coordinates outside
    the negotiated desktop, out-of-range enum values, invalid UTF-8).

Domain-specific subclasses (``RtpError``, ``RtcpError``, ``SipError``,
``SdpError``, ``BfcpError``, ``CodecError``, ...) live with their
formats but all inherit :class:`ProtocolError`; raise sites pass
``reason=`` to refine the bucket without changing their public class.
"""

from __future__ import annotations

#: The classification buckets a :class:`ProtocolError` may carry.
REASONS = ("truncated", "overflow", "bad_magic", "semantic", "malformed")


class ProtocolError(Exception):
    """Raised when a wire message violates its format or semantics.

    ``reason`` is one of :data:`REASONS`; subclasses may fix it as a
    class attribute, and any raise site may override it per instance
    with the ``reason=`` keyword.
    """

    reason: str = "malformed"

    def __init__(self, *args, reason: str | None = None) -> None:
        super().__init__(*args)
        if reason is not None:
            self.reason = reason


class TruncatedMessageError(ProtocolError):
    """Input ends before a declared or structurally required length."""

    reason = "truncated"


class MessageOverflowError(ProtocolError):
    """A declared size exceeds the hard cap this implementation enforces."""

    reason = "overflow"


class BadMagicError(ProtocolError):
    """Signature / version / message-type discriminator mismatch."""

    reason = "bad_magic"


class SemanticError(ProtocolError):
    """Fields parse but violate protocol semantics."""

    reason = "semantic"


class FragmentationError(ProtocolError):
    """Raised when a fragment sequence cannot be reassembled."""


def classify(exc: BaseException) -> str:
    """The quarantine-counter ``reason=`` label for an exception.

    :class:`ProtocolError` instances report their ``reason`` bucket;
    anything else maps to ``malformed`` (callers should let non-protocol
    exceptions propagate — this exists for counter labelling only).
    """
    if isinstance(exc, ProtocolError):
        return exc.reason if exc.reason in REASONS else "malformed"
    return "malformed"
