"""The paper's contribution: remoting and HIP RTP payload formats.

Wire-exact implementations of every message in
draft-boyaci-avt-app-sharing-00: the common remoting/HIP header
(Figure 7), WindowManagerInfo, RegionUpdate with Table 2 fragmentation,
MoveRectangle, MousePointerInfo, and the seven HIP messages with Java
virtual keycodes.
"""

from .errors import FragmentationError, ProtocolError
from .fragmentation import (
    Fragment,
    FragmentType,
    ReassembledUpdate,
    UpdateReassembler,
    fragment_update,
)
from .header import (
    COMMON_HEADER_LEN,
    CommonHeader,
    pack_update_parameter,
    unpack_update_parameter,
)
from .hip import (
    BUTTON_LEFT,
    BUTTON_MIDDLE,
    BUTTON_RIGHT,
    WHEEL_NOTCH,
    HipMessage,
    KeyPressed,
    KeyReleased,
    KeyTyped,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
    decode_hip,
    split_text_for_key_typed,
)
from .keycodes import (
    KEYCODES,
    MODIFIER_KEYCODES,
    char_for_keycode,
    is_modifier,
    keycode_for_char,
    keycode_name,
)
from .mouse_pointer import MousePointerInfo
from .move_rectangle import MoveRectangle
from .region_update import (
    SPECIFIC_HEADER_LEN,
    RegionUpdate,
    encode_update_fragment,
    parse_update_payload,
)
from .registry import (
    MSG_KEY_PRESSED,
    MSG_KEY_RELEASED,
    MSG_KEY_TYPED,
    MSG_MOUSE_MOVED,
    MSG_MOUSE_POINTER_INFO,
    MSG_MOUSE_PRESSED,
    MSG_MOUSE_RELEASED,
    MSG_MOUSE_WHEEL_MOVED,
    MSG_MOVE_RECTANGLE,
    MSG_REGION_UPDATE,
    MSG_WINDOW_MANAGER_INFO,
    MessageTypeRegistry,
    RegistryEntry,
    hip_registry,
    remoting_registry,
)
from .window_info import WINDOW_RECORD_LEN, WindowManagerInfo, WindowRecord

__all__ = [
    "BUTTON_LEFT",
    "BUTTON_MIDDLE",
    "BUTTON_RIGHT",
    "COMMON_HEADER_LEN",
    "CommonHeader",
    "Fragment",
    "FragmentType",
    "FragmentationError",
    "HipMessage",
    "KEYCODES",
    "KeyPressed",
    "KeyReleased",
    "KeyTyped",
    "MODIFIER_KEYCODES",
    "MSG_KEY_PRESSED",
    "MSG_KEY_RELEASED",
    "MSG_KEY_TYPED",
    "MSG_MOUSE_MOVED",
    "MSG_MOUSE_POINTER_INFO",
    "MSG_MOUSE_PRESSED",
    "MSG_MOUSE_RELEASED",
    "MSG_MOUSE_WHEEL_MOVED",
    "MSG_MOVE_RECTANGLE",
    "MSG_REGION_UPDATE",
    "MSG_WINDOW_MANAGER_INFO",
    "MessageTypeRegistry",
    "MouseMoved",
    "MousePointerInfo",
    "MousePressed",
    "MouseReleased",
    "MouseWheelMoved",
    "MoveRectangle",
    "ProtocolError",
    "ReassembledUpdate",
    "RegionUpdate",
    "RegistryEntry",
    "SPECIFIC_HEADER_LEN",
    "UpdateReassembler",
    "WHEEL_NOTCH",
    "WINDOW_RECORD_LEN",
    "WindowManagerInfo",
    "WindowRecord",
    "char_for_keycode",
    "decode_hip",
    "encode_update_fragment",
    "fragment_update",
    "hip_registry",
    "is_modifier",
    "keycode_for_char",
    "keycode_name",
    "pack_update_parameter",
    "parse_update_payload",
    "remoting_registry",
    "split_text_for_key_typed",
    "unpack_update_parameter",
]
