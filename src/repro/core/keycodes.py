"""Java virtual key codes (the [keycodes] reference).

"For keyboard events publicly available Java virtual key codes are
used" (section 4.2) — the ``VK_*`` constants from OpenJDK's
``KeyEvent.java``.  This table covers the printable ASCII range,
modifiers, navigation, function and keypad keys; :func:`keycode_name`
and :func:`char_for_keycode` provide both lookup directions.
"""

from __future__ import annotations

VK_ENTER = 0x0A
VK_BACK_SPACE = 0x08
VK_TAB = 0x09
VK_CANCEL = 0x03
VK_CLEAR = 0x0C
VK_SHIFT = 0x10
VK_CONTROL = 0x11
VK_ALT = 0x12
VK_PAUSE = 0x13
VK_CAPS_LOCK = 0x14
VK_ESCAPE = 0x1B
VK_SPACE = 0x20
VK_PAGE_UP = 0x21
VK_PAGE_DOWN = 0x22
VK_END = 0x23
VK_HOME = 0x24
VK_LEFT = 0x25
VK_UP = 0x26
VK_RIGHT = 0x27
VK_DOWN = 0x28
VK_COMMA = 0x2C
VK_MINUS = 0x2D
VK_PERIOD = 0x2E
VK_SLASH = 0x2F

VK_0 = 0x30
VK_1 = 0x31
VK_2 = 0x32
VK_3 = 0x33
VK_4 = 0x34
VK_5 = 0x35
VK_6 = 0x36
VK_7 = 0x37
VK_8 = 0x38
VK_9 = 0x39

VK_SEMICOLON = 0x3B
VK_EQUALS = 0x3D

VK_A = 0x41
VK_B = 0x42
VK_C = 0x43
VK_D = 0x44
VK_E = 0x45
VK_F = 0x46
VK_G = 0x47
VK_H = 0x48
VK_I = 0x49
VK_J = 0x4A
VK_K = 0x4B
VK_L = 0x4C
VK_M = 0x4D
VK_N = 0x4E
VK_O = 0x4F
VK_P = 0x50
VK_Q = 0x51
VK_R = 0x52
VK_S = 0x53
VK_T = 0x54
VK_U = 0x55
VK_V = 0x56
VK_W = 0x57
VK_X = 0x58
VK_Y = 0x59
VK_Z = 0x5A

VK_OPEN_BRACKET = 0x5B
VK_BACK_SLASH = 0x5C
VK_CLOSE_BRACKET = 0x5D

VK_NUMPAD0 = 0x60
VK_NUMPAD1 = 0x61
VK_NUMPAD2 = 0x62
VK_NUMPAD3 = 0x63
VK_NUMPAD4 = 0x64
VK_NUMPAD5 = 0x65
VK_NUMPAD6 = 0x66
VK_NUMPAD7 = 0x67
VK_NUMPAD8 = 0x68
VK_NUMPAD9 = 0x69
VK_MULTIPLY = 0x6A
VK_ADD = 0x6B
VK_SEPARATOR = 0x6C
VK_SUBTRACT = 0x6D
VK_DECIMAL = 0x6E
VK_DIVIDE = 0x6F

#: "F1 key is defined as 'int VK_F1 = 0x70;' in KeyEvent.java."
VK_F1 = 0x70
VK_F2 = 0x71
VK_F3 = 0x72
VK_F4 = 0x73
VK_F5 = 0x74
VK_F6 = 0x75
VK_F7 = 0x76
VK_F8 = 0x77
VK_F9 = 0x78
VK_F10 = 0x79
VK_F11 = 0x7A
VK_F12 = 0x7B

VK_DELETE = 0x7F
VK_NUM_LOCK = 0x90
VK_SCROLL_LOCK = 0x91
VK_PRINTSCREEN = 0x9A
VK_INSERT = 0x9B
VK_HELP = 0x9C
VK_META = 0x9D
VK_BACK_QUOTE = 0xC0
VK_QUOTE = 0xDE
VK_WINDOWS = 0x020C
VK_CONTEXT_MENU = 0x020D
VK_UNDEFINED = 0x0

#: All VK_* constants by name, built once from module globals.
KEYCODES: dict[str, int] = {
    name: value for name, value in list(globals().items())
    if name.startswith("VK_") and isinstance(value, int)
}

_NAME_BY_CODE: dict[int, str] = {}
for _name, _value in sorted(KEYCODES.items()):
    _NAME_BY_CODE.setdefault(_value, _name)

#: Modifier keys that never produce characters on their own.
MODIFIER_KEYCODES = frozenset(
    {VK_SHIFT, VK_CONTROL, VK_ALT, VK_META, VK_CAPS_LOCK}
)


def keycode_name(keycode: int) -> str:
    """The ``VK_*`` name for a keycode, or ``VK_UNDEFINED(<n>)``."""
    name = _NAME_BY_CODE.get(keycode)
    return name if name is not None else f"VK_UNDEFINED({keycode:#x})"


def is_modifier(keycode: int) -> bool:
    return keycode in MODIFIER_KEYCODES


def keycode_for_char(ch: str) -> int | None:
    """The VK code a plain (unshifted) key press for ``ch`` would use.

    Letters map regardless of case (Java VK codes are case-blind; case
    comes from VK_SHIFT state).  Returns ``None`` for characters that
    need KeyTyped delivery instead (e.g. anything non-ASCII).
    """
    if len(ch) != 1:
        raise ValueError("keycode_for_char takes a single character")
    upper = ch.upper()
    if "A" <= upper <= "Z" or "0" <= ch <= "9":
        return ord(upper)
    direct = {
        "\n": VK_ENTER,
        "\t": VK_TAB,
        "\b": VK_BACK_SPACE,
        " ": VK_SPACE,
        ",": VK_COMMA,
        "-": VK_MINUS,
        ".": VK_PERIOD,
        "/": VK_SLASH,
        ";": VK_SEMICOLON,
        "=": VK_EQUALS,
        "[": VK_OPEN_BRACKET,
        "\\": VK_BACK_SLASH,
        "]": VK_CLOSE_BRACKET,
        "`": VK_BACK_QUOTE,
        "'": VK_QUOTE,
    }
    return direct.get(ch)


def char_for_keycode(keycode: int, shift: bool = False) -> str | None:
    """The character a key press would type on a US layout, or ``None``.

    Inverse of :func:`keycode_for_char` plus the shifted variants —
    used by the AH's event regenerator to turn KeyPressed sequences
    back into text for the shared application.
    """
    if VK_A <= keycode <= VK_Z:
        ch = chr(keycode)
        return ch if shift else ch.lower()
    if VK_0 <= keycode <= VK_9:
        if shift:
            return ")!@#$%^&*("[keycode - VK_0]
        return chr(keycode)
    if VK_NUMPAD0 <= keycode <= VK_NUMPAD9:
        return chr(ord("0") + keycode - VK_NUMPAD0)
    plain = {
        VK_ENTER: "\n",
        VK_TAB: "\t",
        VK_SPACE: " ",
        VK_COMMA: ",",
        VK_MINUS: "-",
        VK_PERIOD: ".",
        VK_SLASH: "/",
        VK_SEMICOLON: ";",
        VK_EQUALS: "=",
        VK_OPEN_BRACKET: "[",
        VK_BACK_SLASH: "\\",
        VK_CLOSE_BRACKET: "]",
        VK_BACK_QUOTE: "`",
        VK_QUOTE: "'",
    }
    shifted = {
        VK_COMMA: "<",
        VK_MINUS: "_",
        VK_PERIOD: ">",
        VK_SLASH: "?",
        VK_SEMICOLON: ":",
        VK_EQUALS: "+",
        VK_OPEN_BRACKET: "{",
        VK_BACK_SLASH: "|",
        VK_CLOSE_BRACKET: "}",
        VK_BACK_QUOTE: "~",
        VK_QUOTE: '"',
    }
    if shift and keycode in shifted:
        return shifted[keycode]
    return plain.get(keycode)
