"""MousePointerInfo (section 5.2.4): explicit pointer position and icon.

"The format of this message is same as RegionUpdate message ... except
they have different message types.  The payload of MousePointerInfo
message can be only the left and top coordinates" — a position-only
move — "[or] MAY carry both the left and top coordinates and the new
image of the mouse pointer", after which "the participant MUST store
and use this image until a new image arrives".
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ProtocolError
from .region_update import encode_update_fragment, parse_update_payload
from .registry import MSG_MOUSE_POINTER_INFO


@dataclass(frozen=True, slots=True)
class MousePointerInfo:
    """Pointer position, optionally with a new encoded pointer image.

    ``image_data`` empty ⇒ position-only: the participant moves the
    stored pointer image.  Non-empty ⇒ the payload also replaces the
    stored image (``content_pt`` names the image codec).
    """

    window_id: int
    left: int
    top: int
    content_pt: int = 0
    image_data: bytes = b""

    MESSAGE_TYPE = MSG_MOUSE_POINTER_INFO

    def __post_init__(self) -> None:
        if not 0 <= self.window_id <= 0xFFFF:
            raise ProtocolError(f"windowID out of range: {self.window_id}")
        if not 0 <= self.left <= 0xFFFF_FFFF or not 0 <= self.top <= 0xFFFF_FFFF:
            raise ProtocolError(
                f"pointer coordinates out of range: {self.left},{self.top}"
            )
        if not 0 <= self.content_pt <= 0x7F:
            raise ProtocolError(f"content PT out of range: {self.content_pt}")

    @property
    def has_image(self) -> bool:
        return bool(self.image_data)

    def encode_single(self) -> bytes:
        """Encode as one unfragmented RTP payload (F=1)."""
        return encode_update_fragment(
            self.MESSAGE_TYPE,
            self.window_id,
            self.content_pt,
            first_packet=True,
            chunk=self.image_data,
            left=self.left,
            top=self.top,
        )

    @classmethod
    def decode_single(cls, payload: bytes,
                      bounds: tuple[int, int] | None = None
                      ) -> "MousePointerInfo":
        header, first, pt, (left, top, data) = parse_update_payload(
            payload, cls.MESSAGE_TYPE, bounds=bounds
        )
        if not first:
            raise ProtocolError("decode_single on a continuation fragment")
        return cls(header.window_id, left, top, pt, data)
