"""WindowManagerInfo (section 5.2.1): the full window-manager state.

The message transfers every shared window's identity, geometry,
grouping and — implicitly, through record order — z-order: "The first
record describes the window at the bottom of the stacking order, the
last record the one on top."
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import ProtocolError
from .header import COMMON_HEADER_LEN, CommonHeader
from .registry import MSG_WINDOW_MANAGER_INFO

#: Each window record is 20 bytes (Figure 8).
WINDOW_RECORD_LEN = 20
_RECORD = struct.Struct("!HBBIIII")

MAX_U32 = 0xFFFF_FFFF

#: Hard cap on records per message — windowID is 16-bit, but no real
#: window manager shares anywhere near this many windows at once.
MAX_WINDOW_RECORDS = 512


@dataclass(frozen=True, slots=True)
class WindowRecord:
    """One 20-byte window record (Figure 8)."""

    window_id: int
    group_id: int
    left: int
    top: int
    width: int
    height: int
    reserved: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.window_id <= 0xFFFF:
            raise ProtocolError(f"windowID out of range: {self.window_id}")
        if not 0 <= self.group_id <= 0xFF:
            raise ProtocolError(f"groupID out of range: {self.group_id}")
        if not 0 <= self.reserved <= 0xFF:
            raise ProtocolError(f"reserved byte out of range: {self.reserved}")
        for label, value in (
            ("left", self.left),
            ("top", self.top),
            ("width", self.width),
            ("height", self.height),
        ):
            if not 0 <= value <= MAX_U32:
                raise ProtocolError(f"{label} out of u32 range: {value}")

    def encode(self) -> bytes:
        return _RECORD.pack(
            self.window_id,
            self.group_id,
            self.reserved,
            self.left,
            self.top,
            self.width,
            self.height,
        )

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "WindowRecord":
        if len(data) < offset + WINDOW_RECORD_LEN:
            raise ProtocolError("truncated window record", reason="truncated")
        window_id, group_id, reserved, left, top, width, height = (
            _RECORD.unpack_from(data, offset)
        )
        return cls(window_id, group_id, left, top, width, height, reserved)

    @property
    def is_grouped(self) -> bool:
        """GroupID 0 is reserved and means "no grouping"."""
        return self.group_id != 0


@dataclass(frozen=True, slots=True)
class WindowManagerInfo:
    """The complete window-manager state, bottom-of-stack first."""

    records: tuple[WindowRecord, ...]

    MESSAGE_TYPE = MSG_WINDOW_MANAGER_INFO

    def encode(self) -> bytes:
        """Full RTP payload: common header + window records.

        "Parameter and WindowID fields of common remoting/HIP header
        MUST be ignored" — they are emitted as zero.
        """
        header = CommonHeader(self.MESSAGE_TYPE, 0, 0)
        return header.encode() + b"".join(r.encode() for r in self.records)

    @classmethod
    def decode(cls, payload: bytes) -> "WindowManagerInfo":
        header = CommonHeader.decode(payload)
        if header.message_type != MSG_WINDOW_MANAGER_INFO:
            raise ProtocolError(
                f"not a WindowManagerInfo payload: type {header.message_type}",
                reason="bad_magic",
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) % WINDOW_RECORD_LEN != 0:
            raise ProtocolError(
                f"window record block of {len(body)} bytes is not a "
                f"multiple of {WINDOW_RECORD_LEN}",
                reason="truncated",
            )
        if len(body) // WINDOW_RECORD_LEN > MAX_WINDOW_RECORDS:
            raise ProtocolError(
                f"more than {MAX_WINDOW_RECORDS} window records",
                reason="overflow",
            )
        records = tuple(
            WindowRecord.decode(body, offset)
            for offset in range(0, len(body), WINDOW_RECORD_LEN)
        )
        return cls(records)

    # -- Semantics helpers ------------------------------------------------

    def window_ids(self) -> list[int]:
        """All windowIDs, bottom-first (the z-order)."""
        return [r.window_id for r in self.records]

    def top_window_id(self) -> int | None:
        return self.records[-1].window_id if self.records else None

    def groups(self) -> dict[int, list[int]]:
        """GroupID → windowIDs mapping (group 0 / ungrouped excluded)."""
        out: dict[int, list[int]] = {}
        for record in self.records:
            if record.is_grouped:
                out.setdefault(record.group_id, []).append(record.window_id)
        return out

    def closed_since(self, previous: "WindowManagerInfo") -> list[int]:
        """WindowIDs present in ``previous`` but absent here.

        Participants "MUST close this window after receiving a
        WindowManagerInfo message which does not contain this WindowID".
        """
        current = set(self.window_ids())
        return [wid for wid in previous.window_ids() if wid not in current]

    def opened_since(self, previous: "WindowManagerInfo") -> list[int]:
        prior = set(previous.window_ids())
        return [wid for wid in self.window_ids() if wid not in prior]
