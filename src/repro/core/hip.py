"""Human Interface Protocol messages (section 6, Figures 13-19).

Seven participant-to-AH messages carried as RTP with their own payload
type: MousePressed, MouseReleased, MouseMoved, MouseWheelMoved,
KeyPressed, KeyReleased, KeyTyped.  All share the common remoting/HIP
header; the WindowID names "the window that had keyboard or mouse
focus".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar

from .errors import ProtocolError
from .header import COMMON_HEADER_LEN, CommonHeader
from .registry import (
    MSG_KEY_PRESSED,
    MSG_KEY_RELEASED,
    MSG_KEY_TYPED,
    MSG_MOUSE_MOVED,
    MSG_MOUSE_PRESSED,
    MSG_MOUSE_RELEASED,
    MSG_MOUSE_WHEEL_MOVED,
)

_POS = struct.Struct("!II")
_POS_DIST = struct.Struct("!IIi")  # wheel distance is 2's-complement signed
_KEYCODE = struct.Struct("!I")

#: Mouse button values carried in the parameter byte (sections 6.2/6.3).
BUTTON_LEFT = 1
BUTTON_RIGHT = 2
BUTTON_MIDDLE = 3

#: "the 'distance' field carries each notch as 120" (section 6.5).
WHEEL_NOTCH = 120

MAX_U32 = 0xFFFF_FFFF

#: Hard cap on one KeyTyped payload's UTF-8 bytes.  The splitter keeps
#: messages under the RTP MTU anyway; a larger body is hostile input.
MAX_KEY_TYPED_BYTES = 16384


def _check_window_id(window_id: int) -> None:
    if not 0 <= window_id <= 0xFFFF:
        raise ProtocolError(f"windowID out of range: {window_id}")


def _check_coords(left: int, top: int) -> None:
    if not 0 <= left <= MAX_U32 or not 0 <= top <= MAX_U32:
        raise ProtocolError(f"coordinates out of range: {left},{top}")


class HipMessage:
    """Shared behaviour for the seven HIP message dataclasses."""

    MESSAGE_TYPE: ClassVar[int]

    def encode(self) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class _MouseButtonEvent(HipMessage):
    """Common shape of MousePressed/MouseReleased (Figures 13/14)."""

    window_id: int
    button: int
    left: int
    top: int

    def __post_init__(self) -> None:
        _check_window_id(self.window_id)
        _check_coords(self.left, self.top)
        if not 0 <= self.button <= 0xFF:
            raise ProtocolError(f"button value out of range: {self.button}")

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, self.button, self.window_id)
        return header.encode() + _POS.pack(self.left, self.top)

    @classmethod
    def _decode(cls, payload: bytes):
        header = CommonHeader.decode(payload)
        if header.message_type != cls.MESSAGE_TYPE:
            raise ProtocolError(
                f"expected type {cls.MESSAGE_TYPE}, got {header.message_type}"
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) != _POS.size:
            raise ProtocolError(f"mouse event body must be 8 bytes, got {len(body)}")
        left, top = _POS.unpack(body)
        return cls(header.window_id, header.parameter, left, top)


@dataclass(frozen=True, slots=True)
class MousePressed(_MouseButtonEvent):
    """Generate a mouse-pressed event at screen coordinates (section 6.2)."""

    MESSAGE_TYPE = MSG_MOUSE_PRESSED

    @classmethod
    def decode(cls, payload: bytes) -> "MousePressed":
        return cls._decode(payload)


@dataclass(frozen=True, slots=True)
class MouseReleased(_MouseButtonEvent):
    """Generate a mouse-released event at screen coordinates (section 6.3)."""

    MESSAGE_TYPE = MSG_MOUSE_RELEASED

    @classmethod
    def decode(cls, payload: bytes) -> "MouseReleased":
        return cls._decode(payload)


@dataclass(frozen=True, slots=True)
class MouseMoved(HipMessage):
    """Move the AH pointer to the given coordinates (section 6.4)."""

    window_id: int
    left: int
    top: int

    MESSAGE_TYPE = MSG_MOUSE_MOVED

    def __post_init__(self) -> None:
        _check_window_id(self.window_id)
        _check_coords(self.left, self.top)

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, 0, self.window_id)
        return header.encode() + _POS.pack(self.left, self.top)

    @classmethod
    def decode(cls, payload: bytes) -> "MouseMoved":
        header = CommonHeader.decode(payload)
        if header.message_type != cls.MESSAGE_TYPE:
            raise ProtocolError(
                f"expected type {cls.MESSAGE_TYPE}, got {header.message_type}"
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) != _POS.size:
            raise ProtocolError(f"MouseMoved body must be 8 bytes, got {len(body)}")
        left, top = _POS.unpack(body)
        return cls(header.window_id, left, top)


@dataclass(frozen=True, slots=True)
class MouseWheelMoved(HipMessage):
    """Wheel rotation at given coordinates (section 6.5).

    ``distance`` is ``120 * notches``; positive = away from the user,
    negative values on the wire use two's complement.
    """

    window_id: int
    left: int
    top: int
    distance: int

    MESSAGE_TYPE = MSG_MOUSE_WHEEL_MOVED

    def __post_init__(self) -> None:
        _check_window_id(self.window_id)
        _check_coords(self.left, self.top)
        if not -(1 << 31) <= self.distance < (1 << 31):
            raise ProtocolError(f"wheel distance out of i32: {self.distance}")

    @property
    def notches(self) -> float:
        """Rotation in notch units (may be fractional for smooth wheels)."""
        return self.distance / WHEEL_NOTCH

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, 0, self.window_id)
        return header.encode() + _POS_DIST.pack(self.left, self.top, self.distance)

    @classmethod
    def decode(cls, payload: bytes) -> "MouseWheelMoved":
        header = CommonHeader.decode(payload)
        if header.message_type != cls.MESSAGE_TYPE:
            raise ProtocolError(
                f"expected type {cls.MESSAGE_TYPE}, got {header.message_type}"
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) != _POS_DIST.size:
            raise ProtocolError(
                f"MouseWheelMoved body must be 12 bytes, got {len(body)}"
            )
        left, top, distance = _POS_DIST.unpack(body)
        return cls(header.window_id, left, top, distance)


@dataclass(frozen=True, slots=True)
class _KeyEvent(HipMessage):
    """Common shape of KeyPressed/KeyReleased (Figures 17/18)."""

    window_id: int
    keycode: int

    def __post_init__(self) -> None:
        _check_window_id(self.window_id)
        if not 0 <= self.keycode <= MAX_U32:
            raise ProtocolError(f"keycode out of u32 range: {self.keycode}")

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, 0, self.window_id)
        return header.encode() + _KEYCODE.pack(self.keycode)

    @classmethod
    def _decode(cls, payload: bytes):
        header = CommonHeader.decode(payload)
        if header.message_type != cls.MESSAGE_TYPE:
            raise ProtocolError(
                f"expected type {cls.MESSAGE_TYPE}, got {header.message_type}"
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) != _KEYCODE.size:
            raise ProtocolError(f"key event body must be 4 bytes, got {len(body)}")
        (keycode,) = _KEYCODE.unpack(body)
        return cls(header.window_id, keycode)


@dataclass(frozen=True, slots=True)
class KeyPressed(_KeyEvent):
    """Generate a key-pressed event for a Java VK code (section 6.6)."""

    MESSAGE_TYPE = MSG_KEY_PRESSED

    @classmethod
    def decode(cls, payload: bytes) -> "KeyPressed":
        return cls._decode(payload)


@dataclass(frozen=True, slots=True)
class KeyReleased(_KeyEvent):
    """Generate a key-released event (section 6.7).

    "A KeyReleased event for a key without a prior KeyPressed event
    for this key is acceptable."
    """

    MESSAGE_TYPE = MSG_KEY_RELEASED

    @classmethod
    def decode(cls, payload: bytes) -> "KeyReleased":
        return cls._decode(payload)


@dataclass(frozen=True, slots=True)
class KeyTyped(HipMessage):
    """Inject UTF-8 text into the AH input queue (section 6.8).

    "There is no padding for the UTF-8 string.  The participant MUST
    send more than one KeyTyped message if the string does not fit into
    a single KeyTyped packet" — see :func:`split_text_for_key_typed`.
    """

    window_id: int
    text: str

    MESSAGE_TYPE = MSG_KEY_TYPED

    def __post_init__(self) -> None:
        _check_window_id(self.window_id)

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, 0, self.window_id)
        return header.encode() + self.text.encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "KeyTyped":
        header = CommonHeader.decode(payload)
        if header.message_type != cls.MESSAGE_TYPE:
            raise ProtocolError(
                f"expected type {cls.MESSAGE_TYPE}, got {header.message_type}"
            )
        raw = payload[COMMON_HEADER_LEN:]
        if len(raw) > MAX_KEY_TYPED_BYTES:
            raise ProtocolError(
                f"KeyTyped body exceeds {MAX_KEY_TYPED_BYTES} bytes",
                reason="overflow",
            )
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"KeyTyped carries invalid UTF-8: {exc}",
                                reason="semantic") from exc
        return cls(header.window_id, text)


def split_text_for_key_typed(
    window_id: int, text: str, max_payload: int
) -> list[KeyTyped]:
    """Split ``text`` into KeyTyped messages whose payloads fit ``max_payload``.

    Splits on code-point boundaries only — a UTF-8 sequence is never
    torn across packets, keeping every message independently decodable.
    """
    budget = max_payload - COMMON_HEADER_LEN
    if budget < 4:  # must fit any single UTF-8 code point
        raise ProtocolError(f"max_payload too small for KeyTyped: {max_payload}")
    messages: list[KeyTyped] = []
    chunk: list[str] = []
    chunk_bytes = 0
    for ch in text:
        ch_len = len(ch.encode("utf-8"))
        if chunk and chunk_bytes + ch_len > budget:
            messages.append(KeyTyped(window_id, "".join(chunk)))
            chunk, chunk_bytes = [], 0
        chunk.append(ch)
        chunk_bytes += ch_len
    if chunk or not messages:
        messages.append(KeyTyped(window_id, "".join(chunk)))
    return messages


class KeyTypedAssembler:
    """Reassemble KeyTyped text a peer split mid-UTF-8-sequence.

    Section 6.8 requires splitting on code-point boundaries, but a
    non-conforming (or hostile) participant may tear a multi-byte
    sequence across packets.  A strict incremental UTF-8 decoder accepts
    a legitimate continuation on the next push, rejects overlong and
    invalid sequences outright, and pends at most 3 bytes — so the
    per-sender reassembly buffer is bounded by construction.
    """

    def __init__(self) -> None:
        import codecs as _codecs

        self._decoder = _codecs.getincrementaldecoder("utf-8")("strict")

    def push(self, raw: bytes) -> str:
        """Feed one KeyTyped body; return the text completed so far.

        Raises :class:`ProtocolError` (``semantic``) on invalid UTF-8 and
        resets, so one poisoned packet cannot corrupt later ones.
        """
        if len(raw) > MAX_KEY_TYPED_BYTES:
            self.reset()
            raise ProtocolError(
                f"KeyTyped body exceeds {MAX_KEY_TYPED_BYTES} bytes",
                reason="overflow",
            )
        try:
            return self._decoder.decode(raw)
        except UnicodeDecodeError as exc:
            self.reset()
            raise ProtocolError(f"KeyTyped carries invalid UTF-8: {exc}",
                                reason="semantic") from exc

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for a sequence's continuation (≤ 3)."""
        return len(self._decoder.getstate()[0])

    def reset(self) -> None:
        self._decoder.reset()


#: Decoder dispatch for all seven HIP message types.
_HIP_DECODERS = {
    MSG_MOUSE_PRESSED: MousePressed.decode,
    MSG_MOUSE_RELEASED: MouseReleased.decode,
    MSG_MOUSE_MOVED: MouseMoved.decode,
    MSG_MOUSE_WHEEL_MOVED: MouseWheelMoved.decode,
    MSG_KEY_PRESSED: KeyPressed.decode,
    MSG_KEY_RELEASED: KeyReleased.decode,
    MSG_KEY_TYPED: KeyTyped.decode,
}


def decode_hip(payload: bytes) -> HipMessage | None:
    """Decode any HIP payload; unknown types return ``None`` (MAY ignore)."""
    header = CommonHeader.decode(payload)
    decoder = _HIP_DECODERS.get(header.message_type)
    if decoder is None:
        return None
    return decoder(payload)
