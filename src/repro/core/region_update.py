"""RegionUpdate (section 5.2.2): ship new pixels for a window region.

The common header's parameter byte packs the FirstPacket bit and the
content payload type (Figure 10).  The message-specific header — left
and top, two unsigned 32-bit words — appears **only in the first RTP
payload** of a fragmented update; width/height travel inside the encoded
image itself ("The width and height of the RegionUpdate is not
transmitted explicitly by this protocol").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import ProtocolError
from .header import (
    COMMON_HEADER_LEN,
    CommonHeader,
    pack_update_parameter,
    unpack_update_parameter,
)
from .registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE

_COORDS = struct.Struct("!II")
#: Specific header present only in first fragments.
SPECIFIC_HEADER_LEN = _COORDS.size
MAX_U32 = 0xFFFF_FFFF


@dataclass(frozen=True, slots=True)
class RegionUpdate:
    """A complete (unfragmented view of a) region update.

    ``content_pt`` names the image codec (7-bit payload type); ``data``
    is the codec bitstream.  Fragmentation into RTP-sized pieces is the
    fragmenter's job (:mod:`repro.core.fragmentation`).
    """

    window_id: int
    left: int
    top: int
    content_pt: int
    data: bytes

    MESSAGE_TYPE = MSG_REGION_UPDATE

    def __post_init__(self) -> None:
        if not 0 <= self.window_id <= 0xFFFF:
            raise ProtocolError(f"windowID out of range: {self.window_id}")
        if not 0 <= self.left <= MAX_U32 or not 0 <= self.top <= MAX_U32:
            raise ProtocolError(f"coordinates out of range: {self.left},{self.top}")
        if not 0 <= self.content_pt <= 0x7F:
            raise ProtocolError(f"content PT out of range: {self.content_pt}")

    # -- Single-packet form (F=1, marker=1) --------------------------------

    def encode_single(self) -> bytes:
        """Encode as one non-fragmented RTP payload (Figure 11)."""
        header = CommonHeader(
            self.MESSAGE_TYPE,
            pack_update_parameter(True, self.content_pt),
            self.window_id,
        )
        return header.encode() + _COORDS.pack(self.left, self.top) + self.data

    @classmethod
    def decode_single(cls, payload: bytes,
                      bounds: tuple[int, int] | None = None) -> "RegionUpdate":
        header, first, pt, body = parse_update_payload(
            payload, cls.MESSAGE_TYPE, bounds=bounds
        )
        if not first:
            raise ProtocolError("decode_single on a continuation fragment")
        left, top, data = body
        return cls(header.window_id, left, top, pt, data)


def check_origin_bounds(left: int, top: int,
                        bounds: tuple[int, int] | None, what: str) -> None:
    """Reject an origin outside the negotiated desktop (section 8).

    ``bounds`` is the negotiated ``(width, height)``; ``None`` skips the
    check for callers that have not negotiated a desktop yet.
    """
    if bounds is None:
        return
    width, height = bounds
    if left >= width or top >= height:
        raise ProtocolError(
            f"{what} origin {left},{top} outside desktop {width}x{height}",
            reason="semantic",
        )


def parse_update_payload(
    payload: bytes, expected_type: int,
    bounds: tuple[int, int] | None = None,
) -> tuple[CommonHeader, bool, int, tuple[int, int, bytes]]:
    """Parse a RegionUpdate-shaped payload (also used by MousePointerInfo).

    Returns ``(common_header, first_packet, content_pt, (left, top, data))``.
    For continuation fragments (F=0), left/top are reported as 0 and the
    body is everything after the common header.  With ``bounds`` set, a
    first fragment whose origin lies outside the negotiated desktop is
    rejected at decode time.
    """
    header = CommonHeader.decode(payload)
    if header.message_type != expected_type:
        raise ProtocolError(
            f"expected message type {expected_type}, got {header.message_type}",
            reason="bad_magic",
        )
    first, content_pt = unpack_update_parameter(header.parameter)
    rest = payload[COMMON_HEADER_LEN:]
    if first:
        if len(rest) < SPECIFIC_HEADER_LEN:
            raise ProtocolError("first fragment missing left/top header",
                                reason="truncated")
        left, top = _COORDS.unpack_from(rest)
        check_origin_bounds(left, top, bounds, "update")
        return header, True, content_pt, (left, top, rest[SPECIFIC_HEADER_LEN:])
    return header, False, content_pt, (0, 0, rest)


def encode_update_fragment(
    message_type: int,
    window_id: int,
    content_pt: int,
    first_packet: bool,
    chunk: bytes,
    left: int = 0,
    top: int = 0,
) -> bytes:
    """Encode one fragment payload of a RegionUpdate/MousePointerInfo.

    First fragments carry the left/top specific header; continuation
    fragments carry only the 32-bit common header before the data
    ("All the payloads will carry the 32 bit common remoting/HIP
    header, while left and top fields are carried only in the first RTP
    payload").
    """
    if message_type not in (MSG_REGION_UPDATE, MSG_MOUSE_POINTER_INFO):
        raise ProtocolError(f"not an update-shaped message type: {message_type}")
    header = CommonHeader(
        message_type, pack_update_parameter(first_packet, content_pt), window_id
    )
    if first_packet:
        return header.encode() + _COORDS.pack(left, top) + chunk
    return header.encode() + chunk
