"""RegionUpdate fragmentation and reassembly (section 5.2.2, Table 2).

A large update "will be carried in several RTP payloads".  Two bits
describe the fragment type:

    +------------+-----------------+-----------------------+
    | Marker bit | FirstPacket bit | Fragment Type         |
    +------------+-----------------+-----------------------+
    |      1     |        1        | Not Fragmented        |
    |      0     |        1        | Start Fragment        |
    |      0     |        0        | Continuation Fragment |
    |      1     |        0        | End Fragment          |
    +------------+-----------------+-----------------------+

All fragments of one update share an RTP timestamp (section 5.1.1), and
the left/top specific header rides only in the first payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..obs.instrumentation import NULL
from .errors import FragmentationError
from .header import COMMON_HEADER_LEN
from .region_update import (
    SPECIFIC_HEADER_LEN,
    encode_update_fragment,
    parse_update_payload,
)
from .registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE


class FragmentType(enum.Enum):
    """The four marker/FirstPacket combinations of Table 2."""

    NOT_FRAGMENTED = (True, True)
    START = (False, True)
    CONTINUATION = (False, False)
    END = (True, False)

    @classmethod
    def from_bits(cls, marker: bool, first_packet: bool) -> "FragmentType":
        return cls((marker, first_packet))

    @property
    def marker(self) -> bool:
        return self.value[0]

    @property
    def first_packet(self) -> bool:
        return self.value[1]


@dataclass(frozen=True, slots=True)
class Fragment:
    """One RTP payload of a (possibly multi-packet) update message."""

    payload: bytes
    marker: bool

    @property
    def size(self) -> int:
        return len(self.payload)


def fragment_update(
    message_type: int,
    window_id: int,
    content_pt: int,
    left: int,
    top: int,
    data: bytes,
    max_payload: int,
) -> list[Fragment]:
    """Split ``data`` into RTP payloads of at most ``max_payload`` bytes.

    ``max_payload`` bounds the full RTP *payload* (common header +
    optional specific header + chunk); the caller subtracts its RTP/UDP
    overhead first.  Works for RegionUpdate and MousePointerInfo alike.
    """
    first_overhead = COMMON_HEADER_LEN + SPECIFIC_HEADER_LEN
    cont_overhead = COMMON_HEADER_LEN
    if max_payload <= first_overhead:
        raise FragmentationError(
            f"max_payload {max_payload} cannot fit the first-fragment headers"
        )
    first_budget = max_payload - first_overhead
    cont_budget = max_payload - cont_overhead

    chunks: list[bytes] = [data[:first_budget]]
    offset = first_budget
    while offset < len(data):
        chunks.append(data[offset : offset + cont_budget])
        offset += cont_budget

    fragments: list[Fragment] = []
    last = len(chunks) - 1
    for index, chunk in enumerate(chunks):
        first = index == 0
        marker = index == last
        payload = encode_update_fragment(
            message_type,
            window_id,
            content_pt,
            first_packet=first,
            chunk=chunk,
            left=left,
            top=top,
        )
        fragments.append(Fragment(payload, marker))
    return fragments


@dataclass(frozen=True, slots=True)
class ReassembledUpdate:
    """A complete update rebuilt from its fragments."""

    message_type: int
    window_id: int
    content_pt: int
    left: int
    top: int
    data: bytes
    timestamp: int
    fragment_count: int


class _Partial:
    __slots__ = ("window_id", "content_pt", "left", "top", "chunks", "count")

    def __init__(self, window_id: int, content_pt: int, left: int, top: int):
        self.window_id = window_id
        self.content_pt = content_pt
        self.left = left
        self.top = top
        self.chunks: list[bytes] = []
        self.count = 0


class UpdateReassembler:
    """Rebuilds multi-packet updates from in-order RTP arrivals.

    The jitter buffer upstream guarantees sequence order; reassembly
    groups by RTP timestamp ("If a RegionUpdate message occupies more
    than one packet, the timestamp SHALL be the same for all of those
    packets").  A new timestamp while a message is incomplete means
    packets were lost — the partial update is dropped and counted, and
    the caller may issue a NACK or PLI.

    Two further expiry rules harden the path against stalled recovery:

    * **Sequence continuity** — fragments of one update occupy
      consecutive RTP sequence numbers.  When ``sequence_number`` is
      supplied to :meth:`push`, a gap inside an open partial drops it
      immediately.  Without this, a lost END fragment followed by a
      same-timestamp update in the same window would be spliced into
      the stale partial and decode as corrupt pixels.
    * **Deadline** — a partial older than ``max_partial_age`` seconds
      (needs ``now``) is dropped by :meth:`expire` or the next push, so
      a lost END on an otherwise idle stream cannot buffer a partial
      update forever.

    Drops are counted by reason (``drops_by_reason`` and the
    ``reassembly.updates_dropped{reason=...}`` counter family).
    """

    _DROP_REASONS = (
        "timestamp_change", "sequence_gap", "expired",
        "orphan", "window_mismatch", "oversize",
    )

    #: Default cap on one reassembled update's accumulated bytes — a
    #: 16 Mpx RGBA frame; a peer declaring more is feeding garbage.
    DEFAULT_MAX_UPDATE_BYTES = 64 * 1024 * 1024

    def __init__(
        self,
        message_type: int = MSG_REGION_UPDATE,
        now=None,
        max_partial_age: float | None = None,
        instrumentation=None,
        bounds: tuple[int, int] | None = None,
        max_update_bytes: int = DEFAULT_MAX_UPDATE_BYTES,
    ) -> None:
        if message_type not in (MSG_REGION_UPDATE, MSG_MOUSE_POINTER_INFO):
            raise FragmentationError(
                f"reassembler only handles update-shaped types: {message_type}"
            )
        if max_partial_age is not None and max_partial_age <= 0:
            raise FragmentationError("max_partial_age must be positive")
        self.message_type = message_type
        self._now = now
        self.max_partial_age = max_partial_age
        self.bounds = bounds
        self.max_update_bytes = max_update_bytes
        self._partial_bytes = 0
        self._partial: _Partial | None = None
        self._partial_timestamp: int | None = None
        self._partial_next_seq: int | None = None
        self._partial_started: float | None = None
        self.updates_dropped = 0
        self.drops_by_reason: dict[str, int] = {
            reason: 0 for reason in self._DROP_REASONS
        }
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_drops = {
            reason: obs.counter("reassembly.updates_dropped", reason=reason)
            for reason in self._DROP_REASONS
        }

    def push(
        self,
        payload: bytes,
        marker: bool,
        timestamp: int,
        sequence_number: int | None = None,
    ) -> ReassembledUpdate | None:
        """Feed one RTP payload; returns a completed update when ready."""
        # Age out a stale partial before parsing: a malformed payload
        # raises out of push(), and must not leave an already-expired
        # partial resident (holding memory and absorbing later
        # continuations that happen to share its timestamp).
        self.expire()
        header, first, content_pt, (left, top, chunk) = parse_update_payload(
            payload, self.message_type, bounds=self.bounds
        )
        fragment_type = FragmentType.from_bits(marker, first)
        if self._partial is not None and (
            timestamp != self._partial_timestamp or first
        ):
            # Lost the tail of the previous update.
            self._drop_partial("timestamp_change")
        if (
            self._partial is not None
            and sequence_number is not None
            and self._partial_next_seq is not None
            and sequence_number & 0xFFFF != self._partial_next_seq
        ):
            # A hole inside this update: its missing fragment can share
            # timestamp and window with what follows, so splicing would
            # silently corrupt pixels.  Drop the partial; the incoming
            # fragment is then judged on its own (orphan unless START).
            self._drop_partial("sequence_gap")

        if fragment_type is FragmentType.NOT_FRAGMENTED:
            return ReassembledUpdate(
                self.message_type, header.window_id, content_pt,
                left, top, chunk, timestamp, 1,
            )

        if fragment_type is FragmentType.START:
            partial = _Partial(header.window_id, content_pt, left, top)
            partial.chunks.append(chunk)
            partial.count = 1
            self._partial = partial
            self._partial_bytes = len(chunk)
            self._partial_timestamp = timestamp
            self._partial_next_seq = (
                (sequence_number + 1) & 0xFFFF
                if sequence_number is not None else None
            )
            self._partial_started = self._now() if self._now else None
            return None

        # Continuation or End: must extend an open partial.
        if self._partial is None or timestamp != self._partial_timestamp:
            self._count_drop("orphan")
            return None  # orphan fragment — its start was lost
        if header.window_id != self._partial.window_id:
            self._drop_partial("window_mismatch")
            return None
        self._partial_bytes += len(chunk)
        if self._partial_bytes > self.max_update_bytes:
            self._drop_partial("oversize")
            raise FragmentationError(
                f"update exceeds {self.max_update_bytes} bytes",
                reason="overflow",
            )
        self._partial.chunks.append(chunk)
        self._partial.count += 1
        # Adopt the fragment's sequence numbering even when the START
        # arrived without one: later continuations are then held to
        # continuity instead of being spliced blindly.
        if sequence_number is not None:
            self._partial_next_seq = (sequence_number + 1) & 0xFFFF
        if fragment_type is FragmentType.END:
            partial = self._partial
            self._clear_partial()
            return ReassembledUpdate(
                self.message_type,
                partial.window_id,
                partial.content_pt,
                partial.left,
                partial.top,
                b"".join(partial.chunks),
                timestamp,
                partial.count,
            )
        return None

    def expire(self) -> bool:
        """Drop a partial past its deadline; True when one was dropped.

        Needs both a clock and ``max_partial_age``; otherwise only the
        timestamp-change / sequence-gap rules apply.
        """
        if (
            self._partial is None
            or self._partial_started is None
            or self.max_partial_age is None
            or self._now is None
        ):
            return False
        if self._now() - self._partial_started >= self.max_partial_age:
            self._drop_partial("expired")
            return True
        return False

    def _clear_partial(self) -> None:
        self._partial = None
        self._partial_bytes = 0
        self._partial_timestamp = None
        self._partial_next_seq = None
        self._partial_started = None

    def _drop_partial(self, reason: str) -> None:
        self._clear_partial()
        self._count_drop(reason)

    def _count_drop(self, reason: str) -> None:
        self.updates_dropped += 1
        self.drops_by_reason[reason] += 1
        self._c_drops[reason].inc()
        if self._obs.enabled:
            # reason="expired" is a flight-recorder sentinel.
            self._obs.event(
                "reassembly.dropped",
                reason=reason,
                message_type=self.message_type,
            )

    @property
    def has_partial(self) -> bool:
        return self._partial is not None
