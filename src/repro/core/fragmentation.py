"""RegionUpdate fragmentation and reassembly (section 5.2.2, Table 2).

A large update "will be carried in several RTP payloads".  Two bits
describe the fragment type:

    +------------+-----------------+-----------------------+
    | Marker bit | FirstPacket bit | Fragment Type         |
    +------------+-----------------+-----------------------+
    |      1     |        1        | Not Fragmented        |
    |      0     |        1        | Start Fragment        |
    |      0     |        0        | Continuation Fragment |
    |      1     |        0        | End Fragment          |
    +------------+-----------------+-----------------------+

All fragments of one update share an RTP timestamp (section 5.1.1), and
the left/top specific header rides only in the first payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import FragmentationError
from .header import COMMON_HEADER_LEN
from .region_update import (
    SPECIFIC_HEADER_LEN,
    encode_update_fragment,
    parse_update_payload,
)
from .registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE


class FragmentType(enum.Enum):
    """The four marker/FirstPacket combinations of Table 2."""

    NOT_FRAGMENTED = (True, True)
    START = (False, True)
    CONTINUATION = (False, False)
    END = (True, False)

    @classmethod
    def from_bits(cls, marker: bool, first_packet: bool) -> "FragmentType":
        return cls((marker, first_packet))

    @property
    def marker(self) -> bool:
        return self.value[0]

    @property
    def first_packet(self) -> bool:
        return self.value[1]


@dataclass(frozen=True, slots=True)
class Fragment:
    """One RTP payload of a (possibly multi-packet) update message."""

    payload: bytes
    marker: bool

    @property
    def size(self) -> int:
        return len(self.payload)


def fragment_update(
    message_type: int,
    window_id: int,
    content_pt: int,
    left: int,
    top: int,
    data: bytes,
    max_payload: int,
) -> list[Fragment]:
    """Split ``data`` into RTP payloads of at most ``max_payload`` bytes.

    ``max_payload`` bounds the full RTP *payload* (common header +
    optional specific header + chunk); the caller subtracts its RTP/UDP
    overhead first.  Works for RegionUpdate and MousePointerInfo alike.
    """
    first_overhead = COMMON_HEADER_LEN + SPECIFIC_HEADER_LEN
    cont_overhead = COMMON_HEADER_LEN
    if max_payload <= first_overhead:
        raise FragmentationError(
            f"max_payload {max_payload} cannot fit the first-fragment headers"
        )
    first_budget = max_payload - first_overhead
    cont_budget = max_payload - cont_overhead

    chunks: list[bytes] = [data[:first_budget]]
    offset = first_budget
    while offset < len(data):
        chunks.append(data[offset : offset + cont_budget])
        offset += cont_budget

    fragments: list[Fragment] = []
    last = len(chunks) - 1
    for index, chunk in enumerate(chunks):
        first = index == 0
        marker = index == last
        payload = encode_update_fragment(
            message_type,
            window_id,
            content_pt,
            first_packet=first,
            chunk=chunk,
            left=left,
            top=top,
        )
        fragments.append(Fragment(payload, marker))
    return fragments


@dataclass(frozen=True, slots=True)
class ReassembledUpdate:
    """A complete update rebuilt from its fragments."""

    message_type: int
    window_id: int
    content_pt: int
    left: int
    top: int
    data: bytes
    timestamp: int
    fragment_count: int


class _Partial:
    __slots__ = ("window_id", "content_pt", "left", "top", "chunks", "count")

    def __init__(self, window_id: int, content_pt: int, left: int, top: int):
        self.window_id = window_id
        self.content_pt = content_pt
        self.left = left
        self.top = top
        self.chunks: list[bytes] = []
        self.count = 0


class UpdateReassembler:
    """Rebuilds multi-packet updates from in-order RTP arrivals.

    The jitter buffer upstream guarantees sequence order; reassembly
    groups by RTP timestamp ("If a RegionUpdate message occupies more
    than one packet, the timestamp SHALL be the same for all of those
    packets").  A new timestamp while a message is incomplete means
    packets were lost — the partial update is dropped and counted, and
    the caller may issue a NACK or PLI.
    """

    def __init__(self, message_type: int = MSG_REGION_UPDATE) -> None:
        if message_type not in (MSG_REGION_UPDATE, MSG_MOUSE_POINTER_INFO):
            raise FragmentationError(
                f"reassembler only handles update-shaped types: {message_type}"
            )
        self.message_type = message_type
        self._partial: _Partial | None = None
        self._partial_timestamp: int | None = None
        self.updates_dropped = 0

    def push(self, payload: bytes, marker: bool,
             timestamp: int) -> ReassembledUpdate | None:
        """Feed one RTP payload; returns a completed update when ready."""
        header, first, content_pt, (left, top, chunk) = parse_update_payload(
            payload, self.message_type
        )
        fragment_type = FragmentType.from_bits(marker, first)

        if self._partial is not None and (
            timestamp != self._partial_timestamp or first
        ):
            # Lost the tail of the previous update.
            self._drop_partial()

        if fragment_type is FragmentType.NOT_FRAGMENTED:
            return ReassembledUpdate(
                self.message_type, header.window_id, content_pt,
                left, top, chunk, timestamp, 1,
            )

        if fragment_type is FragmentType.START:
            partial = _Partial(header.window_id, content_pt, left, top)
            partial.chunks.append(chunk)
            partial.count = 1
            self._partial = partial
            self._partial_timestamp = timestamp
            return None

        # Continuation or End: must extend an open partial.
        if self._partial is None or timestamp != self._partial_timestamp:
            self.updates_dropped += 1
            return None  # orphan fragment — its start was lost
        if header.window_id != self._partial.window_id:
            self._drop_partial()
            return None
        self._partial.chunks.append(chunk)
        self._partial.count += 1
        if fragment_type is FragmentType.END:
            partial = self._partial
            self._partial = None
            self._partial_timestamp = None
            return ReassembledUpdate(
                self.message_type,
                partial.window_id,
                partial.content_pt,
                partial.left,
                partial.top,
                b"".join(partial.chunks),
                timestamp,
                partial.count,
            )
        return None

    def _drop_partial(self) -> None:
        self._partial = None
        self._partial_timestamp = None
        self.updates_dropped += 1

    @property
    def has_partial(self) -> bool:
        return self._partial is not None
