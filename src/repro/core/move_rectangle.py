"""MoveRectangle (section 5.2.3): copy a window region to a new place.

"The MoveRectangle message instructs the participant to move the
specified region of a window to a new position. ... Source and
destination rectangles may overlap."  Efficient for scrolls: one 28-byte
message replaces re-encoding the scrolled pixels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import ProtocolError
from .header import COMMON_HEADER_LEN, CommonHeader
from .registry import MSG_MOVE_RECTANGLE

_BODY = struct.Struct("!IIIIII")
MAX_U32 = 0xFFFF_FFFF


@dataclass(frozen=True, slots=True)
class MoveRectangle:
    """Figure 12: source rect + destination origin, all u32 pixels."""

    window_id: int
    source_left: int
    source_top: int
    width: int
    height: int
    dest_left: int
    dest_top: int

    MESSAGE_TYPE = MSG_MOVE_RECTANGLE

    def __post_init__(self) -> None:
        if not 0 <= self.window_id <= 0xFFFF:
            raise ProtocolError(f"windowID out of range: {self.window_id}")
        for label, value in (
            ("source_left", self.source_left),
            ("source_top", self.source_top),
            ("width", self.width),
            ("height", self.height),
            ("dest_left", self.dest_left),
            ("dest_top", self.dest_top),
        ):
            if not 0 <= value <= MAX_U32:
                raise ProtocolError(f"{label} out of u32 range: {value}")

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, 0, self.window_id)
        return header.encode() + _BODY.pack(
            self.source_left,
            self.source_top,
            self.width,
            self.height,
            self.dest_left,
            self.dest_top,
        )

    @classmethod
    def decode(cls, payload: bytes,
               bounds: tuple[int, int] | None = None) -> "MoveRectangle":
        header = CommonHeader.decode(payload)
        if header.message_type != MSG_MOVE_RECTANGLE:
            raise ProtocolError(
                f"not a MoveRectangle payload: type {header.message_type}",
                reason="bad_magic",
            )
        body = payload[COMMON_HEADER_LEN:]
        if len(body) != _BODY.size:
            raise ProtocolError(
                f"MoveRectangle body must be {_BODY.size} bytes, got {len(body)}",
                reason="truncated" if len(body) < _BODY.size else "overflow",
            )
        src_left, src_top, width, height, dst_left, dst_top = _BODY.unpack(body)
        message = cls(
            header.window_id, src_left, src_top, width, height, dst_left, dst_top
        )
        if bounds is not None:
            bw, bh = bounds
            if (src_left + width > bw or src_top + height > bh
                    or dst_left + width > bw or dst_top + height > bh):
                raise ProtocolError(
                    f"MoveRectangle geometry outside desktop {bw}x{bh}",
                    reason="semantic",
                )
        return message

    def overlaps(self) -> bool:
        """True when source and destination rectangles overlap."""
        return (
            self.source_left < self.dest_left + self.width
            and self.dest_left < self.source_left + self.width
            and self.source_top < self.dest_top + self.height
            and self.dest_top < self.source_top + self.height
        )
