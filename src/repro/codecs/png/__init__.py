"""From-scratch PNG codec (the draft's mandatory image format).

Implements the subset draft-boyaci-avt-png needs: 8-bit RGBA, zlib
IDAT, per-row adaptive filtering, no interlace.
"""

from __future__ import annotations

import numpy as np

from ..base import PT_PNG, CodecError, ImageCodec, _check_pixels
from .chunks import Chunk, ImageHeader, PngFormatError, iter_chunks
from .decoder import decode_png
from .encoder import encode_png
from .filters import (
    ALL_FILTERS,
    FILTER_AVERAGE,
    FILTER_NONE,
    FILTER_PAETH,
    FILTER_SUB,
    FILTER_UP,
    apply_filter,
    choose_filter,
    filter_image,
    undo_filter,
    unfilter_image,
)


class PngCodec(ImageCodec):
    """The mandatory lossless codec for RegionUpdate payloads."""

    payload_type = PT_PNG
    name = "png"
    lossless = True

    def __init__(
        self,
        compression_level: int = 6,
        adaptive_filter: bool = True,
        fixed_filter: int = FILTER_NONE,
    ) -> None:
        if not 0 <= compression_level <= 9:
            raise CodecError(f"compression level out of range: {compression_level}")
        self.compression_level = compression_level
        self.adaptive_filter = adaptive_filter
        self.fixed_filter = fixed_filter

    def encode(self, pixels: np.ndarray) -> bytes:
        _check_pixels(pixels)
        try:
            return encode_png(
                pixels,
                compression_level=self.compression_level,
                adaptive_filter=self.adaptive_filter,
                fixed_filter=self.fixed_filter,
            )
        except PngFormatError as exc:
            raise CodecError(str(exc)) from exc

    def decode(self, data: bytes) -> np.ndarray:
        try:
            return decode_png(data)
        except PngFormatError as exc:
            raise CodecError(str(exc)) from exc


__all__ = [
    "ALL_FILTERS",
    "Chunk",
    "FILTER_AVERAGE",
    "FILTER_NONE",
    "FILTER_PAETH",
    "FILTER_SUB",
    "FILTER_UP",
    "ImageHeader",
    "PngCodec",
    "PngFormatError",
    "apply_filter",
    "choose_filter",
    "decode_png",
    "encode_png",
    "filter_image",
    "iter_chunks",
    "undo_filter",
    "unfilter_image",
]
