"""Scalar reference implementations of the PNG filter pipeline.

These are the pre-vectorisation row-at-a-time/byte-at-a-time kernels,
kept for three jobs:

* **equivalence pinning** — tests assert the vectorised hot path in
  :mod:`repro.codecs.png.filters` is byte-identical to these across all
  five filter types and edge cases;
* **benchmark baseline** — ``benchmarks/bench_encode_path.py`` measures
  the vectorised path against this one on the same machine, making the
  speedup claim (and its CI gate) hardware-independent;
* **fallback** — a straight-line scalar path with no whole-image
  temporaries, usable when memory is tighter than time.

Note the scalar fallback still compresses its ``bytearray`` directly —
``zlib.compress`` accepts any buffer, so the historical
``bytes(filtered)`` copy of the whole filtered image is gone here too.
"""

from __future__ import annotations

import zlib

import numpy as np

from .chunks import (
    SIGNATURE,
    TYPE_IDAT,
    TYPE_IEND,
    Chunk,
    ImageHeader,
    PngFormatError,
)
from .filters import (
    ALL_FILTERS,
    BPP,
    FILTER_AVERAGE,
    FILTER_NONE,
    FILTER_PAETH,
    FILTER_SUB,
    FILTER_UP,
    _paeth_predictor,
    _shift_left,
)


def scalar_apply_filter(
    filter_type: int, row: np.ndarray, prev: np.ndarray
) -> np.ndarray:
    """Filter one scanline (reference; identical to the historical code)."""
    if filter_type == FILTER_NONE:
        return row.copy()
    a = _shift_left(row)
    if filter_type == FILTER_SUB:
        return (row.astype(np.int16) - a).astype(np.uint8)
    if filter_type == FILTER_UP:
        return (row.astype(np.int16) - prev).astype(np.uint8)
    if filter_type == FILTER_AVERAGE:
        avg = (a.astype(np.int16) + prev.astype(np.int16)) // 2
        return (row.astype(np.int16) - avg).astype(np.uint8)
    if filter_type == FILTER_PAETH:
        c = _shift_left(prev)
        pred = _paeth_predictor(a, prev, c)
        return (row.astype(np.int16) - pred).astype(np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def scalar_undo_filter(
    filter_type: int, filtered: np.ndarray, prev: np.ndarray
) -> np.ndarray:
    """Reconstruct one scanline with per-byte loops (reference)."""
    if filter_type == FILTER_NONE:
        return filtered.copy()
    if filter_type == FILTER_UP:
        return ((filtered.astype(np.int16) + prev) % 256).astype(np.uint8)
    if filter_type == FILTER_SUB:
        lanes = filtered.reshape(-1, BPP).astype(np.uint64)
        return (np.cumsum(lanes, axis=0) % 256).astype(np.uint8).reshape(-1)

    row = filtered.astype(np.int16).copy()
    n = len(row)
    if filter_type == FILTER_AVERAGE:
        prev16 = prev.astype(np.int16)
        for i in range(n):
            left = row[i - BPP] if i >= BPP else 0
            row[i] = (row[i] + (left + prev16[i]) // 2) % 256
        return row.astype(np.uint8)
    if filter_type == FILTER_PAETH:
        prev16 = prev.astype(np.int16)
        for i in range(n):
            a = int(row[i - BPP]) if i >= BPP else 0
            b = int(prev16[i])
            c = int(prev16[i - BPP]) if i >= BPP else 0
            p = a + b - c
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
            if pa <= pb and pa <= pc:
                pred = a
            elif pb <= pc:
                pred = b
            else:
                pred = c
            row[i] = (row[i] + pred) % 256
        return row.astype(np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def scalar_choose_filter(
    row: np.ndarray, prev: np.ndarray
) -> tuple[int, np.ndarray]:
    """Per-row MSAD minimisation over five materialised candidates."""
    best_type = FILTER_NONE
    best_row: np.ndarray | None = None
    best_score: int | None = None
    for filter_type in ALL_FILTERS:
        candidate = scalar_apply_filter(filter_type, row, prev)
        signed = candidate.astype(np.int16)
        signed = np.where(signed > 127, 256 - signed, signed)
        score = int(np.abs(signed).sum())
        if best_score is None or score < best_score:
            best_type, best_row, best_score = filter_type, candidate, score
    assert best_row is not None
    return best_type, best_row


def encode_png_scalar(
    pixels: np.ndarray,
    compression_level: int = 6,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
    idat_chunk_size: int = 1 << 20,
) -> bytes:
    """Row-at-a-time PNG encode (reference/fallback path)."""
    if pixels.ndim != 3 or pixels.shape[2] != 4 or pixels.dtype != np.uint8:
        raise PngFormatError(f"encoder needs (h, w, 4) uint8, got {pixels.shape}")
    height, width = pixels.shape[:2]
    if height == 0 or width == 0:
        raise PngFormatError("cannot encode an empty image")

    rows = pixels.reshape(height, width * 4)
    filtered = bytearray()
    prev = np.zeros(width * 4, dtype=np.uint8)
    for y in range(height):
        row = rows[y]
        if adaptive_filter:
            filter_type, out = scalar_choose_filter(row, prev)
        else:
            filter_type = fixed_filter
            out = scalar_apply_filter(filter_type, row, prev)
        filtered.append(filter_type)
        filtered.extend(out.tobytes())
        prev = row

    compressed = zlib.compress(filtered, compression_level)

    parts = [SIGNATURE, Chunk(b"IHDR", ImageHeader(width, height).encode()).encode()]
    for start in range(0, len(compressed), idat_chunk_size):
        parts.append(
            Chunk(TYPE_IDAT, compressed[start : start + idat_chunk_size]).encode()
        )
    parts.append(Chunk(TYPE_IEND, b"").encode())
    return b"".join(parts)


def unfilter_rows_scalar(
    raw: bytes, height: int, stride: int
) -> np.ndarray:
    """Row-at-a-time reconstruction of a decompressed IDAT stream."""
    out = np.empty((height, stride), dtype=np.uint8)
    prev = np.zeros(stride, dtype=np.uint8)
    offset = 0
    for y in range(height):
        filter_type = raw[offset]
        offset += 1
        row = np.frombuffer(raw, dtype=np.uint8, count=stride, offset=offset)
        offset += stride
        recon = scalar_undo_filter(filter_type, row, prev)
        out[y] = recon
        prev = recon
    return out
