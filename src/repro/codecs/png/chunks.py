"""PNG container: signature, chunk framing, CRC-32 (ISO 3309).

Implements the PNG datastream structure from the W3C PNG specification
— the container the draft's mandatory image format
(draft-boyaci-avt-png) relies on.  Only what the remoting payload needs
is implemented: 8-bit RGBA (colour type 6), no interlacing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..base import CodecError

#: The eight-byte PNG file signature.
SIGNATURE = b"\x89PNG\r\n\x1a\n"

TYPE_IHDR = b"IHDR"
TYPE_IDAT = b"IDAT"
TYPE_IEND = b"IEND"

#: Colour type 6: each pixel is an RGBA quadruple.
COLOR_TYPE_RGBA = 6
BIT_DEPTH_8 = 8

#: The PNG spec caps chunk length at 2^31-1; a declared length beyond
#: the datastream itself is rejected earlier by the truncation check,
#: but cap the count of chunks to bound the iterator's work.
MAX_CHUNKS = 4096


class PngFormatError(CodecError):
    """Raised for malformed PNG datastreams."""


@dataclass(frozen=True, slots=True)
class Chunk:
    """One PNG chunk: 4-char type plus body bytes."""

    type: bytes
    data: bytes

    def encode(self) -> bytes:
        if len(self.type) != 4:
            raise PngFormatError(f"chunk type must be 4 bytes: {self.type!r}")
        crc = zlib.crc32(self.type + self.data) & 0xFFFF_FFFF
        return (
            struct.pack("!I", len(self.data))
            + self.type
            + self.data
            + struct.pack("!I", crc)
        )


@dataclass(frozen=True, slots=True)
class ImageHeader:
    """The IHDR payload for the subset this codec produces."""

    width: int
    height: int
    bit_depth: int = BIT_DEPTH_8
    color_type: int = COLOR_TYPE_RGBA
    compression: int = 0
    filter_method: int = 0
    interlace: int = 0

    _STRUCT = struct.Struct("!IIBBBBB")

    def encode(self) -> bytes:
        if not (1 <= self.width <= 0x7FFF_FFFF and 1 <= self.height <= 0x7FFF_FFFF):
            raise PngFormatError(
                f"image dimensions out of range: {self.width}x{self.height}"
            )
        return self._STRUCT.pack(
            self.width,
            self.height,
            self.bit_depth,
            self.color_type,
            self.compression,
            self.filter_method,
            self.interlace,
        )

    @classmethod
    def decode(cls, data: bytes) -> "ImageHeader":
        if len(data) != cls._STRUCT.size:
            raise PngFormatError(f"IHDR wrong size: {len(data)}")
        width, height, depth, color, comp, filt, interlace = cls._STRUCT.unpack(data)
        header = cls(width, height, depth, color, comp, filt, interlace)
        if width == 0 or height == 0:
            raise PngFormatError("zero image dimension")
        return header


def iter_chunks(data: bytes) -> Iterator[Chunk]:
    """Walk the chunks of a PNG datastream, verifying CRCs.

    Raises :class:`PngFormatError` on a bad signature, truncation, or
    CRC mismatch.
    """
    if not data.startswith(SIGNATURE):
        raise PngFormatError("missing PNG signature", reason="bad_magic")
    offset = len(SIGNATURE)
    count = 0
    while offset < len(data):
        if count >= MAX_CHUNKS:
            raise PngFormatError(f"more than {MAX_CHUNKS} chunks",
                                 reason="overflow")
        count += 1
        if len(data) < offset + 8:
            raise PngFormatError("truncated chunk header", reason="truncated")
        (length,) = struct.unpack_from("!I", data, offset)
        chunk_type = data[offset + 4 : offset + 8]
        body_start = offset + 8
        body_end = body_start + length
        if len(data) < body_end + 4:
            raise PngFormatError(f"truncated {chunk_type!r} chunk",
                                 reason="truncated")
        body = data[body_start:body_end]
        (stored_crc,) = struct.unpack_from("!I", data, body_end)
        actual_crc = zlib.crc32(chunk_type + body) & 0xFFFF_FFFF
        if stored_crc != actual_crc:
            raise PngFormatError(f"CRC mismatch in {chunk_type!r} chunk")
        yield Chunk(chunk_type, body)
        offset = body_end + 4
        if chunk_type == TYPE_IEND:
            return
    raise PngFormatError("datastream ended without IEND", reason="truncated")
