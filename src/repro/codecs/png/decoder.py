"""PNG decoder for the encoder's subset: 8-bit RGBA, no interlace."""

from __future__ import annotations

import numpy as np

from ..base import bounded_decompress, check_decode_dims
from .chunks import (
    BIT_DEPTH_8,
    COLOR_TYPE_RGBA,
    TYPE_IDAT,
    TYPE_IEND,
    TYPE_IHDR,
    ImageHeader,
    PngFormatError,
    iter_chunks,
)
from .filters import BPP, unfilter_image


def decode_png(data: bytes) -> np.ndarray:
    """Decode a PNG datastream to an ``(h, w, 4) uint8`` array.

    Raises :class:`PngFormatError` for anything outside the encoder's
    subset (non-RGBA colour types, interlacing, 16-bit depth) or for a
    corrupt stream.
    """
    header: ImageHeader | None = None
    idat = bytearray()
    seen_iend = False
    for chunk in iter_chunks(data):
        if chunk.type == TYPE_IHDR:
            if header is not None:
                raise PngFormatError("duplicate IHDR")
            header = ImageHeader.decode(chunk.data)
        elif chunk.type == TYPE_IDAT:
            if header is None:
                raise PngFormatError("IDAT before IHDR")
            idat.extend(chunk.data)
        elif chunk.type == TYPE_IEND:
            seen_iend = True
        # Ancillary chunks are skipped, per spec.
    if header is None:
        raise PngFormatError("no IHDR chunk")
    if not seen_iend:
        raise PngFormatError("no IEND chunk")
    if header.bit_depth != BIT_DEPTH_8 or header.color_type != COLOR_TYPE_RGBA:
        raise PngFormatError(
            "unsupported PNG subset: need 8-bit RGBA, got "
            f"depth={header.bit_depth} color={header.color_type}"
        )
    if header.interlace != 0:
        raise PngFormatError("interlaced PNG not supported")
    if header.compression != 0 or header.filter_method != 0:
        raise PngFormatError("unknown compression/filter method")

    width, height = header.width, header.height
    check_decode_dims(width, height, "PNG image")
    stride = width * BPP
    expected = height * (stride + 1)
    raw = bounded_decompress(bytes(idat), expected, "IDAT stream",
                             error_cls=PngFormatError)

    scanlines = np.frombuffer(raw, dtype=np.uint8).reshape(height, 1 + stride)
    try:
        out = unfilter_image(scanlines[:, 0], scanlines[:, 1:])
    except ValueError as exc:
        raise PngFormatError(str(exc)) from exc
    return out.reshape(height, width, BPP)
