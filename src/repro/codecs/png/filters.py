"""PNG scanline filters (types 0-4) with vectorised apply/undo.

PNG's pre-compression filters are why it beats plain DEFLATE on screen
content: rows of UI pixels are self-similar, so Sub/Up/Average/Paeth
residuals are near-zero and compress extremely well.  Filtering is the
per-row design choice ablated in ``bench_codecs.py``.
"""

from __future__ import annotations

import numpy as np

FILTER_NONE = 0
FILTER_SUB = 1
FILTER_UP = 2
FILTER_AVERAGE = 3
FILTER_PAETH = 4

ALL_FILTERS = (FILTER_NONE, FILTER_SUB, FILTER_UP, FILTER_AVERAGE, FILTER_PAETH)

#: Bytes per pixel for 8-bit RGBA.
BPP = 4


def _shift_left(row: np.ndarray) -> np.ndarray:
    """The 'a' predictor: the pixel ``BPP`` bytes to the left (0 padded)."""
    out = np.zeros_like(row)
    out[BPP:] = row[:-BPP]
    return out


def _paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorised Paeth predictor over int16 inputs."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


def apply_filter(filter_type: int, row: np.ndarray, prev: np.ndarray) -> np.ndarray:
    """Filter one scanline; ``prev`` is the prior *raw* scanline (zeros for row 0)."""
    if filter_type == FILTER_NONE:
        return row.copy()
    a = _shift_left(row)
    if filter_type == FILTER_SUB:
        return (row.astype(np.int16) - a).astype(np.uint8)
    if filter_type == FILTER_UP:
        return (row.astype(np.int16) - prev).astype(np.uint8)
    if filter_type == FILTER_AVERAGE:
        avg = (a.astype(np.int16) + prev.astype(np.int16)) // 2
        return (row.astype(np.int16) - avg).astype(np.uint8)
    if filter_type == FILTER_PAETH:
        c = _shift_left(prev)
        pred = _paeth_predictor(a, prev, c)
        return (row.astype(np.int16) - pred).astype(np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def undo_filter(filter_type: int, filtered: np.ndarray, prev: np.ndarray) -> np.ndarray:
    """Reconstruct a raw scanline from its filtered form.

    Sub/Average/Paeth have a serial data dependency along the row, so
    those loops run per-pixel-group; Up is fully vectorised.
    """
    if filter_type == FILTER_NONE:
        return filtered.copy()
    if filter_type == FILTER_UP:
        return ((filtered.astype(np.int16) + prev) % 256).astype(np.uint8)

    if filter_type == FILTER_SUB:
        # row[i] = filt[i] + row[i-4]  ⇒  per byte-lane prefix sum
        # (mod 256), fully vectorisable.
        lanes = filtered.reshape(-1, BPP).astype(np.uint64)
        return (np.cumsum(lanes, axis=0) % 256).astype(np.uint8).reshape(-1)

    row = filtered.astype(np.int16).copy()
    n = len(row)
    if filter_type == FILTER_AVERAGE:
        prev16 = prev.astype(np.int16)
        for i in range(n):
            left = row[i - BPP] if i >= BPP else 0
            row[i] = (row[i] + (left + prev16[i]) // 2) % 256
        return row.astype(np.uint8)
    if filter_type == FILTER_PAETH:
        prev16 = prev.astype(np.int16)
        for i in range(n):
            a = int(row[i - BPP]) if i >= BPP else 0
            b = int(prev16[i])
            c = int(prev16[i - BPP]) if i >= BPP else 0
            p = a + b - c
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
            if pa <= pb and pa <= pc:
                pred = a
            elif pb <= pc:
                pred = b
            else:
                pred = c
            row[i] = (row[i] + pred) % 256
        return row.astype(np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def choose_filter(row: np.ndarray, prev: np.ndarray) -> tuple[int, np.ndarray]:
    """Pick the filter minimising sum of absolute residuals (MSAD heuristic).

    This is the standard libpng heuristic: treat filtered bytes as
    signed and pick the filter with minimal total magnitude, a cheap
    proxy for DEFLATE-compressibility.
    """
    best_type = FILTER_NONE
    best_row: np.ndarray | None = None
    best_score: int | None = None
    for filter_type in ALL_FILTERS:
        candidate = apply_filter(filter_type, row, prev)
        signed = candidate.astype(np.int16)
        signed = np.where(signed > 127, 256 - signed, signed)
        score = int(np.abs(signed).sum())
        if best_score is None or score < best_score:
            best_type, best_row, best_score = filter_type, candidate, score
    assert best_row is not None
    return best_type, best_row
