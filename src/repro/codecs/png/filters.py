"""PNG scanline filters (types 0-4) with vectorised apply/undo.

PNG's pre-compression filters are why it beats plain DEFLATE on screen
content: rows of UI pixels are self-similar, so Sub/Up/Average/Paeth
residuals are near-zero and compress extremely well.  Filtering is the
per-row design choice ablated in ``bench_codecs.py``.

The hot paths here are whole-image: :func:`filter_image` computes all
five candidates as ``(h, w*4)`` arrays and picks per-row winners with a
vectorised MSAD argmin; :func:`unfilter_image` reconstructs every row,
batching the filters that have no serial dependency.  The per-row
``apply_filter``/``choose_filter``/``undo_filter`` API is kept on top of
the same kernels.  Bit-for-bit scalar references live in
:mod:`repro.codecs.png.reference` and are pinned equal by tests.
"""

from __future__ import annotations

import threading

import numpy as np

FILTER_NONE = 0
FILTER_SUB = 1
FILTER_UP = 2
FILTER_AVERAGE = 3
FILTER_PAETH = 4

ALL_FILTERS = (FILTER_NONE, FILTER_SUB, FILTER_UP, FILTER_AVERAGE, FILTER_PAETH)

#: Bytes per pixel for 8-bit RGBA.
BPP = 4


def _shift_left(row: np.ndarray) -> np.ndarray:
    """The 'a' predictor: the pixel ``BPP`` bytes to the left (0 padded)."""
    out = np.zeros_like(row)
    out[BPP:] = row[:-BPP]
    return out


def _paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorised Paeth predictor over int16 inputs."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


# -- Whole-image filtering (encode hot path) ---------------------------------


class _Workspace:
    """Preallocated scratch for one ``(h, stride)`` filtering problem.

    Screen sharing filters the same frame geometry over and over; fresh
    ``np.empty`` per candidate plane costs more than the arithmetic at
    this size (allocation + first-touch faults + cold caches), so all
    intermediates live here and every ufunc writes through ``out=``.
    """

    def __init__(self, height: int, stride: int) -> None:
        shape = (height, stride)
        self.cands = np.empty((len(ALL_FILTERS),) + shape, dtype=np.uint8)
        self.a = np.empty(shape, dtype=np.uint8)
        self.b = np.empty(shape, dtype=np.uint8)
        self.c = np.empty(shape, dtype=np.uint8)
        self.u8a = np.empty(shape, dtype=np.uint8)
        self.u8b = np.empty(shape, dtype=np.uint8)
        self.u8c = np.empty(shape, dtype=np.uint8)
        self.i16a = np.empty(shape, dtype=np.int16)
        self.i16b = np.empty(shape, dtype=np.int16)
        self.scores = np.empty((len(ALL_FILTERS), height), dtype=np.int64)

    def predictors(self, rows: np.ndarray,
                   prev_row: np.ndarray | None = None) -> None:
        """Fill the a (left), b (up), c (up-left) planes, zero padded.

        ``prev_row`` supplies the raw scanline above ``rows[0]`` when
        the rows are a band cut out of a larger image; ``None`` keeps
        the image-start semantics (zero predecessors).
        """
        a, b, c = self.a, self.b, self.c
        a[:, :BPP] = 0
        a[:, BPP:] = rows[:, :-BPP]
        if prev_row is None:
            b[0] = 0
            c[0] = 0
        else:
            b[0] = prev_row
            c[0, :BPP] = 0
            c[0, BPP:] = prev_row[:-BPP]
        b[1:] = rows[:-1]
        c[1:, :BPP] = 0
        c[1:, BPP:] = rows[:-1, :-BPP]


class _WorkspaceCache(threading.local):
    """A few most-recent workspaces, per thread, keyed by shape."""

    MAX_SHAPES = 4

    def __init__(self) -> None:
        self.by_shape: dict[tuple[int, int], _Workspace] = {}

    def get(self, height: int, stride: int) -> _Workspace:
        key = (height, stride)
        ws = self.by_shape.pop(key, None)
        if ws is None:
            ws = _Workspace(height, stride)
            while len(self.by_shape) >= self.MAX_SHAPES:
                self.by_shape.pop(next(iter(self.by_shape)))
        self.by_shape[key] = ws  # reinsert: dict order is the LRU order
        return ws


_workspaces = _WorkspaceCache()


def _candidate_into(filter_type: int, rows: np.ndarray, ws: _Workspace,
                    out: np.ndarray) -> None:
    """One filter's residuals for every row at once, written into ``out``.

    All arithmetic stays in uint8: subtraction wraps mod 256 exactly
    like the int16-then-cast scalar reference, and the Average
    predictor uses the carry-free identity
    ``(a + b) // 2 == (a >> 1) + (b >> 1) + (a & b & 1)``.
    """
    a, b, c = ws.a, ws.b, ws.c
    if filter_type == FILTER_NONE:
        out[:] = rows
    elif filter_type == FILTER_SUB:
        np.subtract(rows, a, out=out)
    elif filter_type == FILTER_UP:
        np.subtract(rows, b, out=out)
    elif filter_type == FILTER_AVERAGE:
        t = ws.u8a
        np.right_shift(a, 1, out=out)
        np.right_shift(b, 1, out=t)
        out += t
        np.bitwise_and(a, b, out=t)
        t &= 1
        out += t
        np.subtract(rows, out, out=out)
    elif filter_type == FILTER_PAETH:
        _paeth_plane_into(ws, out)
        np.subtract(rows, out, out=out)
    else:
        raise ValueError(f"unknown filter type: {filter_type}")


def _paeth_plane_into(ws: _Workspace, out: np.ndarray) -> None:
    """Paeth predictor over whole uint8 planes, written into ``out``.

    Uses the distance identities pa = |b - c|, pb = |a - c| (computed
    carry-free in uint8 as max - min) and pc = |(a - c) + (b - c)|.
    The two selects are XOR blends through 0x00/0xFF masks, which beat
    ``np.where`` by ~2x at this size.
    """
    a, b, c = ws.a, ws.b, ws.c
    pa, pb, t = ws.u8a, ws.u8b, ws.u8c
    np.maximum(b, c, out=pa)
    np.minimum(b, c, out=t)
    pa -= t
    np.maximum(a, c, out=pb)
    np.minimum(a, c, out=t)
    pb -= t
    s, s2 = ws.i16a, ws.i16b
    np.subtract(a, c, out=s, dtype=np.int16)
    np.subtract(b, c, out=s2, dtype=np.int16)
    s += s2
    np.abs(s, out=s)
    pc = s.view(np.uint16)  # |a + b - 2c| is in [0, 510]: same bits
    mask = (pb <= pc).view(np.uint8)
    np.negative(mask, out=mask)
    pred = t
    np.bitwise_xor(b, c, out=pred)
    pred &= mask
    pred ^= c  # pb <= pc ? b : c
    mask = ((pa <= pb) & (pa <= pc)).view(np.uint8)
    np.negative(mask, out=mask)
    np.bitwise_xor(a, pred, out=out)
    out &= mask
    out ^= pred  # pa smallest ? a : pred


def filter_image(
    rows: np.ndarray,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
    prev_row: np.ndarray | None = None,
) -> np.ndarray:
    """Filter all scanlines of an image in one vectorised pass.

    ``rows`` is the raw image as ``(h, w*BPP) uint8``.  Returns the
    ready-to-compress ``(h, 1 + w*BPP) uint8`` buffer: per-row filter
    type byte followed by the filtered scanline.  With
    ``adaptive_filter`` the per-row winner is the minimum-sum-of-
    absolute-differences candidate (libpng's MSAD heuristic), resolved
    for all rows with one argmin.

    ``prev_row`` makes the call band-composable: filtering rows
    ``[y0:y1)`` of an image with ``prev_row=rows_full[y0-1]`` yields
    exactly rows ``[y0:y1)`` of the whole-image result, because every
    predictor (and the per-row MSAD choice) only ever reaches one raw
    row up.  Bands therefore reassemble into a byte-identical scanline
    stream.
    """
    height, stride = rows.shape
    out = np.empty((height, 1 + stride), dtype=np.uint8)
    ws = _workspaces.get(height, stride)
    ws.predictors(rows, prev_row)
    if not adaptive_filter:
        out[:, 0] = fixed_filter
        _candidate_into(fixed_filter, rows, ws, out[:, 1:])
        return out

    cands = ws.cands
    for f in ALL_FILTERS:
        _candidate_into(f, rows, ws, cands[f])
    # MSAD score: each filtered byte counts its signed magnitude
    # min(v, 256 - v), which in wraparound uint8 is min(v, -v); per-row
    # sums for all five candidates, then one argmin along the candidate
    # axis (ties resolve to the lower filter type, matching the scalar
    # loop's strict-less update).  A row sums to at most stride * 255,
    # far inside uint32.
    scores = ws.scores
    scratch = ws.u8a
    for f in ALL_FILTERS:
        np.negative(cands[f], out=scratch)
        np.minimum(scratch, cands[f], out=scratch)
        scores[f] = np.add.reduce(scratch, axis=1, dtype=np.uint32)
    chosen = np.argmin(scores, axis=0).astype(np.uint8)
    out[:, 0] = chosen
    for f in ALL_FILTERS:
        mask = chosen == f
        if mask.any():
            out[mask, 1:] = cands[f][mask]
    return out


# -- Whole-image unfiltering (decode hot path) -------------------------------


def _undo_average_row(filtered: list[int], prev: list[int],
                      out: list[int]) -> None:
    """Average reconstruction, one independent recurrence per byte lane."""
    n = len(filtered)
    for lane in range(BPP):
        left = 0
        for i in range(lane, n, BPP):
            left = out[i] = (filtered[i] + ((left + prev[i]) >> 1)) & 0xFF


def _undo_paeth_row(filtered: list[int], prev: list[int],
                    out: list[int]) -> None:
    """Paeth reconstruction, one independent recurrence per byte lane."""
    n = len(filtered)
    for lane in range(BPP):
        a = 0  # reconstructed left neighbour
        c = 0  # raw up-left neighbour
        for i in range(lane, n, BPP):
            b = prev[i]
            p = a + b - c
            pa = p - a if p >= a else a - p
            pb = p - b if p >= b else b - p
            pc = p - c if p >= c else c - p
            if pa <= pb and pa <= pc:
                pred = a
            elif pb <= pc:
                pred = b
            else:
                pred = c
            a = out[i] = (filtered[i] + pred) & 0xFF
            c = b


def _undo_sub_rows(filtered: np.ndarray) -> np.ndarray:
    """Sub rows have no inter-row dependency: per-lane prefix sums.

    The truncating cast to uint8 is the mod-256 reduction; a uint32
    accumulator is exact for any spec-sized row (width < 2^24).
    """
    rows, stride = filtered.shape
    lanes = filtered.reshape(rows, stride // BPP, BPP)
    return (
        np.cumsum(lanes, axis=1, dtype=np.uint32)
        .astype(np.uint8)
        .reshape(rows, stride)
    )


def unfilter_image(filter_types: np.ndarray, filtered: np.ndarray) -> np.ndarray:
    """Reconstruct all scanlines from their filtered form.

    ``filter_types`` is ``(h,)``, ``filtered`` is ``(h, w*BPP)``.  None
    and Sub rows never read the row above, so they are reconstructed
    for the whole image up front; runs of consecutive Up rows collapse
    into one column-wise cumulative sum; Average and Paeth rows run a
    lane-wise recurrence over Python ints (byte lanes advance together,
    with no per-byte numpy indexing).
    """
    bad = filter_types > FILTER_PAETH
    if bad.any():
        raise ValueError(
            f"unknown filter type: {int(filter_types[int(np.argmax(bad))])}"
        )
    height, stride = filtered.shape
    out = np.empty((height, stride), dtype=np.uint8)

    types = filter_types.tolist()
    none_mask = filter_types == FILTER_NONE
    if none_mask.any():
        out[none_mask] = filtered[none_mask]
    sub_mask = filter_types == FILTER_SUB
    if sub_mask.any():
        out[sub_mask] = _undo_sub_rows(filtered[sub_mask])

    zero_prev = np.zeros(stride, dtype=np.uint8)
    y = 0
    while y < height:
        filter_type = types[y]
        if filter_type in (FILTER_NONE, FILTER_SUB):
            y += 1
            continue
        prev = out[y - 1] if y else zero_prev
        if filter_type == FILTER_UP:
            # Batch the whole run of consecutive Up rows: each adds its
            # residuals to the row above, i.e. a cumulative sum down
            # the columns seeded by the last reconstructed row.
            end = y + 1
            while end < height and types[end] == FILTER_UP:
                end += 1
            span = np.cumsum(filtered[y:end], axis=0, dtype=np.uint32)
            span += prev
            out[y:end] = span.astype(np.uint8)  # truncation is mod 256
            y = end
            continue
        row_out = out[y].tolist()
        row_filtered = filtered[y].tolist()
        row_prev = prev.tolist()
        if filter_type == FILTER_AVERAGE:
            _undo_average_row(row_filtered, row_prev, row_out)
        else:
            _undo_paeth_row(row_filtered, row_prev, row_out)
        out[y] = row_out
        y += 1
    return out


# -- Per-row API -------------------------------------------------------------


def apply_filter(filter_type: int, row: np.ndarray, prev: np.ndarray) -> np.ndarray:
    """Filter one scanline; ``prev`` is the prior *raw* scanline (zeros for row 0)."""
    if filter_type == FILTER_NONE:
        return row.copy()
    a = _shift_left(row)
    if filter_type == FILTER_SUB:
        return (row.astype(np.int16) - a).astype(np.uint8)
    if filter_type == FILTER_UP:
        return (row.astype(np.int16) - prev).astype(np.uint8)
    if filter_type == FILTER_AVERAGE:
        avg = (a.astype(np.int16) + prev.astype(np.int16)) // 2
        return (row.astype(np.int16) - avg).astype(np.uint8)
    if filter_type == FILTER_PAETH:
        c = _shift_left(prev)
        pred = _paeth_predictor(a, prev, c)
        return (row.astype(np.int16) - pred).astype(np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def undo_filter(filter_type: int, filtered: np.ndarray, prev: np.ndarray) -> np.ndarray:
    """Reconstruct a raw scanline from its filtered form."""
    if filter_type == FILTER_NONE:
        return filtered.copy()
    if filter_type == FILTER_UP:
        return ((filtered.astype(np.int16) + prev) % 256).astype(np.uint8)
    if filter_type == FILTER_SUB:
        return _undo_sub_rows(filtered.reshape(1, -1))[0]
    if filter_type in (FILTER_AVERAGE, FILTER_PAETH):
        out = [0] * len(filtered)
        row_filtered = filtered.tolist()
        row_prev = prev.tolist()
        if filter_type == FILTER_AVERAGE:
            _undo_average_row(row_filtered, row_prev, out)
        else:
            _undo_paeth_row(row_filtered, row_prev, out)
        return np.array(out, dtype=np.uint8)
    raise ValueError(f"unknown filter type: {filter_type}")


def choose_filter(row: np.ndarray, prev: np.ndarray) -> tuple[int, np.ndarray]:
    """Pick the filter minimising sum of absolute residuals (MSAD heuristic).

    This is the standard libpng heuristic: treat filtered bytes as
    signed and pick the filter with minimal total magnitude, a cheap
    proxy for DEFLATE-compressibility.  One-row view of the whole-image
    kernel in :func:`filter_image`.
    """
    rows = np.vstack([prev, row])
    filtered = filter_image(rows)
    # Row 0 is only predictor context; the answer is the second row.
    return int(filtered[1, 0]), filtered[1, 1:].copy()
