"""PNG encoder: 8-bit RGBA, per-row adaptive filtering, zlib IDAT."""

from __future__ import annotations

import zlib

import numpy as np

from .chunks import (
    SIGNATURE,
    TYPE_IDAT,
    TYPE_IEND,
    Chunk,
    ImageHeader,
    PngFormatError,
)
from .filters import FILTER_NONE, filter_image


def check_encode_input(pixels: np.ndarray) -> tuple[int, int]:
    """Validate encoder input; returns ``(height, width)``."""
    if pixels.ndim != 3 or pixels.shape[2] != 4 or pixels.dtype != np.uint8:
        raise PngFormatError(f"encoder needs (h, w, 4) uint8, got {pixels.shape}")
    height, width = pixels.shape[:2]
    if height == 0 or width == 0:
        raise PngFormatError("cannot encode an empty image")
    return height, width


def filtered_scanlines(
    pixels: np.ndarray,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
) -> np.ndarray:
    """The ready-to-compress ``(h, 1 + w*4)`` filtered scanline stream."""
    height, width = check_encode_input(pixels)
    rows = np.ascontiguousarray(pixels).reshape(height, width * 4)
    return filter_image(
        rows, adaptive_filter=adaptive_filter, fixed_filter=fixed_filter
    )


def assemble_png(
    width: int,
    height: int,
    compressed: bytes,
    idat_chunk_size: int = 1 << 20,
) -> bytes:
    """Wrap an already-compressed scanline stream into a PNG datastream.

    ``compressed`` must be one complete zlib stream of the filtered
    scanlines; the parallel encode path builds it from per-band raw
    deflate members, the serial path from one ``zlib.compress``.
    """
    parts = [SIGNATURE, Chunk(b"IHDR", ImageHeader(width, height).encode()).encode()]
    for start in range(0, len(compressed), idat_chunk_size):
        parts.append(
            Chunk(TYPE_IDAT, compressed[start : start + idat_chunk_size]).encode()
        )
    if not compressed:  # pragma: no cover - zlib never returns empty
        parts.append(Chunk(TYPE_IDAT, b"").encode())
    parts.append(Chunk(TYPE_IEND, b"").encode())
    return b"".join(parts)


def encode_png(
    pixels: np.ndarray,
    compression_level: int = 6,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
    idat_chunk_size: int = 1 << 20,
) -> bytes:
    """Encode an ``(h, w, 4) uint8`` array as a complete PNG datastream.

    ``adaptive_filter`` enables the per-row MSAD filter heuristic;
    switching it off and forcing ``fixed_filter`` is the ablation knob
    for experiment E1.

    All rows are filtered in one whole-image pass (five candidate
    planes, vectorised per-row argmin) into a single preallocated
    buffer that zlib compresses in place — no per-row temporaries, no
    ``bytes()`` copy of the filtered image.  The scalar reference path
    lives in :func:`repro.codecs.png.reference.encode_png_scalar` and
    produces byte-identical output; the multi-process band path lives
    in :func:`repro.codecs.parallel.encode_png_parallel` and produces a
    byte-identical *scanline stream* (the deflate framing differs).
    """
    height, width = check_encode_input(pixels)
    filtered = filtered_scanlines(
        pixels, adaptive_filter=adaptive_filter, fixed_filter=fixed_filter
    )
    compressed = zlib.compress(filtered, compression_level)
    return assemble_png(width, height, compressed, idat_chunk_size)
