"""PNG encoder: 8-bit RGBA, per-row adaptive filtering, zlib IDAT."""

from __future__ import annotations

import zlib

import numpy as np

from .chunks import (
    SIGNATURE,
    TYPE_IDAT,
    TYPE_IEND,
    Chunk,
    ImageHeader,
    PngFormatError,
)
from .filters import FILTER_NONE, apply_filter, choose_filter


def encode_png(
    pixels: np.ndarray,
    compression_level: int = 6,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
    idat_chunk_size: int = 1 << 20,
) -> bytes:
    """Encode an ``(h, w, 4) uint8`` array as a complete PNG datastream.

    ``adaptive_filter`` enables the per-row MSAD filter heuristic;
    switching it off and forcing ``fixed_filter`` is the ablation knob
    for experiment E1.
    """
    if pixels.ndim != 3 or pixels.shape[2] != 4 or pixels.dtype != np.uint8:
        raise PngFormatError(f"encoder needs (h, w, 4) uint8, got {pixels.shape}")
    height, width = pixels.shape[:2]
    if height == 0 or width == 0:
        raise PngFormatError("cannot encode an empty image")

    rows = pixels.reshape(height, width * 4)
    filtered = bytearray()
    prev = np.zeros(width * 4, dtype=np.uint8)
    for y in range(height):
        row = rows[y]
        if adaptive_filter:
            filter_type, out = choose_filter(row, prev)
        else:
            filter_type = fixed_filter
            out = apply_filter(filter_type, row, prev)
        filtered.append(filter_type)
        filtered.extend(out.tobytes())
        prev = row

    compressed = zlib.compress(bytes(filtered), compression_level)

    parts = [SIGNATURE, Chunk(b"IHDR", ImageHeader(width, height).encode()).encode()]
    for start in range(0, len(compressed), idat_chunk_size):
        parts.append(
            Chunk(TYPE_IDAT, compressed[start : start + idat_chunk_size]).encode()
        )
    if not compressed:  # pragma: no cover - zlib never returns empty
        parts.append(Chunk(TYPE_IDAT, b"").encode())
    parts.append(Chunk(TYPE_IEND, b"").encode())
    return b"".join(parts)
