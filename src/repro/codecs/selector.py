"""Content-adaptive codec selection.

Section 4.2 prescribes choosing an encoding "according to their
characteristics": lossless PNG for computer-generated content, a lossy
codec for photographic regions.  :class:`ContentClassifier` estimates
which kind a pixel rectangle is using two cheap statistics that separate
UI from photos well:

* **colour population** — UI regions reuse a handful of exact colours;
  photographs have thousands of distinct values, and
* **gradient smoothness** — photographic neighbourhoods vary gently,
  while text/UI is dominated by hard edges and flat runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CodecRegistry, ImageCodec


@dataclass(frozen=True, slots=True)
class ContentStats:
    """Diagnostics from a classification pass."""

    distinct_color_fraction: float
    smooth_gradient_fraction: float
    is_photographic: bool


class ContentClassifier:
    """Labels pixel rectangles as synthetic (UI) or photographic."""

    def __init__(
        self,
        color_fraction_threshold: float = 0.35,
        smoothness_threshold: float = 0.5,
        sample_cap: int = 128 * 128,
    ) -> None:
        self.color_fraction_threshold = color_fraction_threshold
        self.smoothness_threshold = smoothness_threshold
        self.sample_cap = sample_cap

    def classify(self, pixels: np.ndarray) -> ContentStats:
        """Analyse ``(h, w, 4)`` pixels; both signals must agree on 'photo'."""
        sample = self._subsample(pixels)
        h, w = sample.shape[:2]
        n = h * w
        packed = (
            sample[:, :, 0].astype(np.uint32) << 16
            | sample[:, :, 1].astype(np.uint32) << 8
            | sample[:, :, 2].astype(np.uint32)
        )
        distinct = len(np.unique(packed))
        color_fraction = distinct / n

        gray = sample[:, :, :3].astype(np.int16).mean(axis=2)
        dx = np.abs(np.diff(gray, axis=1))
        dy = np.abs(np.diff(gray, axis=0))
        grads = np.concatenate([dx.ravel(), dy.ravel()])
        nonflat = grads[grads > 0]
        if nonflat.size == 0:
            smooth_fraction = 0.0
        else:
            # Photographic gradients are small but nonzero; UI edges jump.
            smooth_fraction = float((nonflat <= 16).mean())

        is_photo = (
            color_fraction >= self.color_fraction_threshold
            and smooth_fraction >= self.smoothness_threshold
        )
        return ContentStats(color_fraction, smooth_fraction, is_photo)

    def _subsample(self, pixels: np.ndarray) -> np.ndarray:
        h, w = pixels.shape[:2]
        if h * w <= self.sample_cap:
            return pixels
        step = int(np.ceil(np.sqrt(h * w / self.sample_cap)))
        return pixels[::step, ::step]


class CodecSelector:
    """Chooses a codec per update rectangle via content classification."""

    def __init__(
        self,
        registry: CodecRegistry,
        lossless_name: str = "png",
        lossy_name: str = "lossy-dct",
        classifier: ContentClassifier | None = None,
        allow_lossy: bool = True,
    ) -> None:
        self.registry = registry
        self.lossless = registry.by_name(lossless_name)
        self.lossy = registry.by_name(lossy_name) if allow_lossy else None
        self.classifier = classifier or ContentClassifier()

    def select(self, pixels: np.ndarray) -> ImageCodec:
        """Lossy for photographic content (when allowed), else lossless."""
        if self.lossy is None:
            return self.lossless
        if self.classifier.classify(pixels).is_photographic:
            return self.lossy
        return self.lossless
