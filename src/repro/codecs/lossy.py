"""Lossy DCT block codec — the JPEG-class stand-in.

Section 4.2: "JPEG is lossy, but more suitable for photographic
images."  This codec reproduces the JPEG pipeline shape with pure
numpy: RGB→YCbCr, 8×8 block DCT, quality-scaled quantisation with the
standard JPEG tables, zigzag ordering, and a zlib entropy stage standing
in for Huffman coding.  Alpha is not carried (decodes opaque), matching
how screen-sharing codecs treat the desktop as an opaque surface.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from .base import (
    PT_LOSSY_DCT,
    CodecError,
    ImageCodec,
    _check_pixels,
    bounded_decompress,
    check_decode_dims,
)

_HEADER = struct.Struct("!IIB")  # width, height, quality
BLOCK = 8

#: Standard JPEG (Annex K) luminance and chrominance quantisation tables.
_LUMA_Q = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
_CHROMA_Q = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def _dct_matrix() -> np.ndarray:
    """Orthonormal 8-point DCT-II basis matrix."""
    t = np.zeros((BLOCK, BLOCK))
    for k in range(BLOCK):
        scale = np.sqrt(1.0 / BLOCK) if k == 0 else np.sqrt(2.0 / BLOCK)
        for n in range(BLOCK):
            t[k, n] = scale * np.cos(np.pi * (2 * n + 1) * k / (2 * BLOCK))
    return t


_DCT = _dct_matrix()
_IDCT = _DCT.T


def _zigzag_order() -> np.ndarray:
    """Flat indices of an 8×8 block in JPEG zigzag scan order."""
    order = sorted(
        ((y, x) for y in range(BLOCK) for x in range(BLOCK)),
        key=lambda p: (p[0] + p[1], p[1] if (p[0] + p[1]) % 2 else p[0]),
    )
    return np.array([y * BLOCK + x for y, x in order], dtype=np.int64)


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


def _quality_scale(quality: int) -> float:
    """IJG quality→scale mapping (quality 50 = tables as published)."""
    q = min(max(quality, 1), 100)
    if q < 50:
        return 50.0 / q
    return 2.0 - q / 50.0


def _scaled_tables(quality: int) -> tuple[np.ndarray, np.ndarray]:
    scale = _quality_scale(quality)
    luma = np.clip(np.round(_LUMA_Q * scale), 1, 255)
    chroma = np.clip(np.round(_CHROMA_Q * scale), 1, 255)
    return luma, chroma


def _rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 full-range conversion; output float64, 0-centred Y."""
    r = rgb[:, :, 0].astype(np.float64)
    g = rgb[:, :, 1].astype(np.float64)
    b = rgb[:, :, 2].astype(np.float64)
    y = 0.299 * r + 0.587 * g + 0.114 * b - 128.0
    cb = -0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=2)


def _ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    y = ycc[:, :, 0] + 128.0
    cb = ycc[:, :, 1]
    cr = ycc[:, :, 2]
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    rgb = np.stack([r, g, b], axis=2)
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def _pad_to_blocks(plane: np.ndarray) -> np.ndarray:
    """Edge-pad a 2-D plane so both dimensions are multiples of 8."""
    h, w = plane.shape
    ph = (BLOCK - h % BLOCK) % BLOCK
    pw = (BLOCK - w % BLOCK) % BLOCK
    if ph or pw:
        plane = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    return plane


def _blockify(plane: np.ndarray) -> np.ndarray:
    """(H, W) → (n_blocks, 8, 8) in raster block order."""
    h, w = plane.shape
    return (
        plane.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, BLOCK, BLOCK)
    )


def _unblockify(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    return (
        blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )


def block_band_rows(height: int, bands: int) -> list[tuple[int, int]]:
    """Partition ``height`` pixel rows into ≤ ``bands`` block-aligned bands.

    Every band boundary except the last lands on a multiple of
    :data:`BLOCK`, so each band covers whole 8×8 block rows and bands
    can be DCT-coded independently with byte-identical output.
    """
    if bands < 1:
        raise ValueError("band count must be positive")
    block_rows = -(-height // BLOCK)
    bands = min(bands, block_rows)
    per_band = -(-block_rows // bands)
    spans = []
    for start in range(0, block_rows, per_band):
        y0 = start * BLOCK
        y1 = min((start + per_band) * BLOCK, height)
        spans.append((y0, y1))
    return spans


def plane_band_coefficients(
    pixels: np.ndarray, quality: int, y0: int = 0, y1: int | None = None
) -> list[bytes]:
    """Quantised zigzag coefficient bytes for pixel rows ``[y0, y1)``.

    ``y0`` (and ``y1``, unless it is the image height) must be
    block-aligned.  Returns ``[y, cb, cr]`` byte strings for the band's
    blocks in raster order: concatenating each channel's bands in order
    reproduces the whole-image plane stream byte for byte, because 8×8
    blocks never cross a block-aligned band boundary and the edge
    padding a band applies is the padding the full image would apply.
    """
    if y1 is None:
        y1 = pixels.shape[0]
    if y0 % BLOCK:
        raise ValueError(f"band start {y0} is not block-aligned")
    luma_q, chroma_q = _scaled_tables(quality)
    ycc = _rgb_to_ycbcr(pixels[y0:y1, :, :3])
    planes_out: list[bytes] = []
    for channel in range(3):
        table = luma_q if channel == 0 else chroma_q
        plane = _pad_to_blocks(ycc[:, :, channel])
        blocks = _blockify(plane)
        # Batched 2-D DCT: T @ block @ T'  for every block at once.
        coeffs = np.einsum("ij,njk,lk->nil", _DCT, blocks, _DCT)
        quantised = np.round(coeffs / table).astype(np.int16)
        flat = quantised.reshape(-1, BLOCK * BLOCK)[:, _ZIGZAG]
        planes_out.append(flat.astype("<i2").tobytes())
    return planes_out


class LossyDctCodec(ImageCodec):
    """JPEG-shaped lossy codec: block DCT + quantisation + zlib entropy."""

    payload_type = PT_LOSSY_DCT
    name = "lossy-dct"
    lossless = False

    def __init__(self, quality: int = 75) -> None:
        if not 1 <= quality <= 100:
            raise CodecError(f"quality out of range: {quality}")
        self.quality = quality

    def encode(self, pixels: np.ndarray) -> bytes:
        _check_pixels(pixels)
        h, w = pixels.shape[:2]
        planes_out = plane_band_coefficients(pixels, self.quality)
        body = zlib.compress(b"".join(planes_out), 6)
        return _HEADER.pack(w, h, self.quality) + body

    def decode(self, data: bytes) -> np.ndarray:
        if len(data) < _HEADER.size:
            raise CodecError("lossy payload too short for header",
                             reason="truncated")
        w, h, quality = _HEADER.unpack_from(data)
        if w == 0 or h == 0:
            raise CodecError("lossy payload has empty dimensions",
                             reason="semantic")
        if not 1 <= quality <= 100:
            raise CodecError(f"corrupt quality field: {quality}",
                             reason="semantic")
        check_decode_dims(w, h, "lossy payload")

        padded_h = h + (BLOCK - h % BLOCK) % BLOCK
        padded_w = w + (BLOCK - w % BLOCK) % BLOCK
        n_blocks = (padded_h // BLOCK) * (padded_w // BLOCK)
        plane_bytes = n_blocks * BLOCK * BLOCK * 2
        raw = bounded_decompress(data[_HEADER.size:], plane_bytes * 3,
                                 "entropy stage")
        # Declared dims × payload length must agree exactly before any
        # reshape: an undersized or oversized plane stream must surface
        # as the ProtocolError taxonomy, never as a numpy ValueError.
        if len(raw) != plane_bytes * 3:
            raise CodecError(
                f"plane stream is {len(raw)} bytes; dimensions {w}x{h} "
                f"declare {plane_bytes * 3}",
                reason="truncated" if len(raw) < plane_bytes * 3
                else "overflow",
            )
        luma_q, chroma_q = _scaled_tables(quality)
        planes = []
        for channel in range(3):
            table = luma_q if channel == 0 else chroma_q
            flat = np.frombuffer(
                raw, dtype="<i2", count=n_blocks * 64, offset=channel * plane_bytes
            ).reshape(n_blocks, 64)
            blocks = flat[:, _UNZIGZAG].reshape(n_blocks, BLOCK, BLOCK)
            coeffs = blocks.astype(np.float64) * table
            spatial = np.einsum("ji,njk,kl->nil", _DCT, coeffs, _DCT)
            planes.append(_unblockify(spatial, padded_h, padded_w)[:h, :w])
        ycc = np.stack(planes, axis=2)
        rgb = _ycbcr_to_rgb(ycc)
        out = np.empty((h, w, 4), dtype=np.uint8)
        out[:, :, :3] = rgb
        out[:, :, 3] = 255
        return out

    def psnr(self, original: np.ndarray, decoded: np.ndarray) -> float:
        """Peak signal-to-noise ratio over RGB, in dB (inf when equal)."""
        a = original[:, :, :3].astype(np.float64)
        b = decoded[:, :, :3].astype(np.float64)
        mse = float(((a - b) ** 2).mean())
        if mse == 0.0:
            return float("inf")
        return 10.0 * np.log10(255.0**2 / mse)
