"""Uncompressed RGBA codec — the baseline every compression is judged against."""

from __future__ import annotations

import struct

import numpy as np

from .base import PT_RAW, CodecError, ImageCodec, _check_pixels

_DIMS = struct.Struct("!II")


class RawCodec(ImageCodec):
    """Width/height header followed by raw RGBA bytes, row-major."""

    payload_type = PT_RAW
    name = "raw"
    lossless = True

    def encode(self, pixels: np.ndarray) -> bytes:
        _check_pixels(pixels)
        h, w = pixels.shape[:2]
        return _DIMS.pack(w, h) + pixels.tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        if len(data) < _DIMS.size:
            raise CodecError("raw payload too short for dimensions")
        w, h = _DIMS.unpack_from(data)
        expected = w * h * 4
        body = data[_DIMS.size :]
        if len(body) != expected:
            raise CodecError(
                f"raw payload length {len(body)} != {expected} for {w}x{h}"
            )
        if w == 0 or h == 0:
            raise CodecError("raw payload has empty dimensions")
        return np.frombuffer(body, dtype=np.uint8).reshape(h, w, 4).copy()
