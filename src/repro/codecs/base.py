"""Codec interface and the payload-type registry.

RegionUpdate carries "the actual payload type of the content which can
be PNG, JPEG, Theora, or any other media type which has an RTP payload
specification" in a 7-bit PT field (section 5.2.2).  A
:class:`CodecRegistry` maps those dynamic payload-type numbers to codec
implementations; "All AH and participant software implementations MUST
support PNG images", which the default registry enforces.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.errors import ProtocolError

#: Dynamic RTP payload types (RFC 3551: 96-127 are dynamic).
PT_PNG = 96
PT_RAW = 97
PT_ZLIB = 98
PT_LOSSY_DCT = 99

MAX_PAYLOAD_TYPE = 0x7F

#: Hard caps on decoded image geometry.  A shared desktop is at most a
#: few thousand pixels on a side; these bounds stop a hostile payload
#: from declaring gigapixel dimensions and driving allocation.
MAX_IMAGE_DIM = 32768
MAX_IMAGE_PIXELS = 1 << 24  # 16 Mpx ≈ 64 MiB of RGBA


class CodecError(ProtocolError):
    """Raised when encoding or decoding image payloads fails."""


def check_decode_dims(width: int, height: int, what: str = "image") -> None:
    """Reject hostile dimensions before any allocation happens."""
    if width <= 0 or height <= 0:
        raise CodecError(f"{what} has non-positive dimensions "
                         f"{width}x{height}", reason="semantic")
    if width > MAX_IMAGE_DIM or height > MAX_IMAGE_DIM:
        raise CodecError(f"{what} dimension exceeds {MAX_IMAGE_DIM}",
                         reason="overflow")
    if width * height > MAX_IMAGE_PIXELS:
        raise CodecError(f"{what} exceeds {MAX_IMAGE_PIXELS} pixels",
                         reason="overflow")


def bounded_decompress(data: bytes, expected: int, what: str = "stream",
                       error_cls: type["CodecError"] | None = None) -> bytes:
    """zlib-inflate at most ``expected`` bytes; reject bombs and trailers.

    ``zlib.decompress`` with no bound lets a kilobyte of input expand to
    gigabytes.  This decompresses with a hard output cap and requires the
    stream to produce exactly ``expected`` bytes.
    """
    import zlib

    err = error_cls or CodecError
    decompressor = zlib.decompressobj()
    try:
        raw = decompressor.decompress(data, expected + 1)
    except zlib.error as exc:
        raise err(f"corrupt {what}: {exc}") from exc
    if len(raw) > expected or decompressor.unconsumed_tail:
        raise err(f"{what} inflates past the declared {expected} bytes",
                  reason="overflow")
    if len(raw) < expected:
        raise err(f"{what} ends short of the declared {expected} bytes",
                  reason="truncated")
    if decompressor.unused_data:
        raise err(f"trailing garbage after {what}")
    return raw


@dataclass(frozen=True, slots=True)
class EncodedImage:
    """An encoded image payload plus the PT identifying its format."""

    payload_type: int
    data: bytes
    width: int
    height: int

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= MAX_PAYLOAD_TYPE:
            raise CodecError(f"payload type out of range: {self.payload_type}")


class ImageCodec(abc.ABC):
    """Encodes/decodes RGBA pixel rectangles for RegionUpdate payloads."""

    #: The RTP payload type this codec registers under.
    payload_type: int
    #: Human-readable name used in SDP-ish negotiation and reports.
    name: str
    #: Whether a decode returns bit-exact pixels.
    lossless: bool

    @abc.abstractmethod
    def encode(self, pixels: np.ndarray) -> bytes:
        """Encode an ``(h, w, 4) uint8`` array to payload bytes."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> np.ndarray:
        """Decode payload bytes back to an ``(h, w, 4) uint8`` array."""

    def encode_image(self, pixels: np.ndarray) -> EncodedImage:
        _check_pixels(pixels)
        return EncodedImage(
            payload_type=self.payload_type,
            data=self.encode(pixels),
            width=pixels.shape[1],
            height=pixels.shape[0],
        )


def _check_pixels(pixels: np.ndarray) -> None:
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise CodecError(f"expected (h, w, 4) RGBA array, got {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise CodecError(f"expected uint8 pixels, got {pixels.dtype}")
    if pixels.shape[0] == 0 or pixels.shape[1] == 0:
        raise CodecError("cannot encode an empty image")


class CodecRegistry:
    """Maps RTP payload types to codecs for one session.

    Mirrors the draft's negotiation model: AH and participant agree on
    a PT↔codec mapping during session establishment, and RegionUpdate's
    PT field selects the decoder at the participant.
    """

    def __init__(self) -> None:
        self._by_pt: dict[int, ImageCodec] = {}
        self._by_name: dict[str, ImageCodec] = {}

    def register(self, codec: ImageCodec) -> None:
        if codec.payload_type in self._by_pt:
            raise CodecError(
                f"payload type {codec.payload_type} already registered"
            )
        if codec.name in self._by_name:
            raise CodecError(f"codec name {codec.name!r} already registered")
        self._by_pt[codec.payload_type] = codec
        self._by_name[codec.name] = codec

    def by_payload_type(self, pt: int) -> ImageCodec:
        try:
            return self._by_pt[pt]
        except KeyError:
            raise CodecError(f"no codec for payload type {pt}") from None

    def by_name(self, name: str) -> ImageCodec:
        try:
            return self._by_name[name]
        except KeyError:
            raise CodecError(f"no codec named {name!r}") from None

    def supports(self, pt: int) -> bool:
        return pt in self._by_pt

    def payload_types(self) -> list[int]:
        return sorted(self._by_pt)

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def intersect_names(self, offered: list[str]) -> list[str]:
        """Codec names supported both locally and by the ``offered`` list."""
        return [n for n in offered if n in self._by_name]


def default_registry() -> CodecRegistry:
    """The mandatory codec set: PNG (required by the draft) + companions."""
    from .lossy import LossyDctCodec
    from .png import PngCodec
    from .raw import RawCodec
    from .zlib_codec import ZlibCodec

    registry = CodecRegistry()
    registry.register(PngCodec())
    registry.register(RawCodec())
    registry.register(ZlibCodec())
    registry.register(LossyDctCodec())
    return registry
