"""Image codecs for RegionUpdate payloads.

PNG (mandatory, lossless, from scratch), a DCT-based lossy codec (the
JPEG stand-in), raw and zlib baselines, plus the content-adaptive
selector of section 4.2.
"""

from .base import (
    MAX_PAYLOAD_TYPE,
    PT_LOSSY_DCT,
    PT_PNG,
    PT_RAW,
    PT_ZLIB,
    CodecError,
    CodecRegistry,
    EncodedImage,
    ImageCodec,
    default_registry,
)
from .lossy import LossyDctCodec
from .png import PngCodec, decode_png, encode_png
from .raw import RawCodec
from .selector import CodecSelector, ContentClassifier, ContentStats
from .zlib_codec import ZlibCodec

__all__ = [
    "CodecError",
    "CodecRegistry",
    "CodecSelector",
    "ContentClassifier",
    "ContentStats",
    "EncodedImage",
    "ImageCodec",
    "LossyDctCodec",
    "MAX_PAYLOAD_TYPE",
    "PT_LOSSY_DCT",
    "PT_PNG",
    "PT_RAW",
    "PT_ZLIB",
    "PngCodec",
    "RawCodec",
    "ZlibCodec",
    "decode_png",
    "default_registry",
    "encode_png",
]
