"""Worker-process encode pool: band-sharded, shared-memory, zero-copy.

PR 6 vectorised the capture→encode hot path but left it single-
threaded; this module spreads it across cores the way ShAppliT's
broker-mediated cluster sharing spreads one shared surface's encode
work across executors.  An :class:`EncodePool` owns N worker processes
and a set of shared-memory blocks; pixel data crosses the process
boundary exactly zero times (workers slice ``memoryview``-backed numpy
views of the shared blocks), and only small compressed results ride
back over each worker's pipe.

Three pipelines shard into horizontal **bands**:

* **PNG** — :func:`encode_png_parallel`.  Scanline filtering is band-
  composable (each row's predictors and MSAD choice reach exactly one
  raw row up, see :func:`repro.codecs.png.filters.filter_image`), so
  every band filters independently and the reassembled scanline stream
  is byte-identical to the serial path.  Each band then deflates its
  scanlines as a *raw* deflate member (non-final bands end on a
  ``Z_SYNC_FLUSH`` byte boundary, the last band emits the final block);
  the parent concatenates members behind one zlib header and combines
  the per-band Adler-32 checksums (:func:`adler32_combine`), producing
  a standard single-stream zlib IDAT — the pigz construction.
* **Lossy DCT** — :func:`encode_lossy_parallel`.  8×8 blocks never
  cross a block-aligned band boundary, so each band's quantised
  coefficients (:func:`repro.codecs.lossy.plane_band_coefficients`)
  concatenate into byte-identical plane streams; the entropy stage
  then reuses the parallel deflate.
* **Tile diff** — :meth:`EncodePool.diff_bands` runs
  :func:`repro.surface.damage.band_tile_changes` on workers when both
  framebuffer generations live in pool shared memory.

Degradation is always graceful: a missing pool, a small image, or a
crashed worker falls back to the in-process vector path (the worker is
respawned behind the scenes, ``encode.worker_crashes`` counts it) — a
dead worker never wedges a session, and ``workers=0`` configurations
never construct a pool at all.  Supervision hooks:
:meth:`EncodePool.ensure_workers` is synchronous and self-healing, and
:meth:`EncodePool.watch` is an asyncio loop made to run under
:class:`repro.health.TaskSupervisor`.
"""

from __future__ import annotations

import asyncio
import atexit
import multiprocessing
import os
import struct
import zlib
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..obs.instrumentation import NULL
from . import lossy as lossy_mod
from .lossy import block_band_rows, plane_band_coefficients
from .png.encoder import assemble_png, check_encode_input, encode_png
from .png.filters import FILTER_NONE, filter_image

#: Default worker count: leave one core for the session/event loop.
DEFAULT_WORKERS = max(1, (os.cpu_count() or 1) - 1)

#: Below this many pixel rows the dispatch overhead beats the win and
#: the pool hands straight back to the in-process path.
MIN_PARALLEL_ROWS = 128

_ADLER_BASE = 65521


def adler32_combine(adler1: int, adler2: int, len2: int) -> int:
    """Adler-32 of ``A + B`` given ``adler32(A)``, ``adler32(B)``, ``len(B)``.

    The zlib ``adler32_combine`` identity: the low word is a plain
    modular sum and the high word shifts by ``len2`` repetitions of
    ``sum1(A)``.  Lets per-band checksums combine without ever touching
    the concatenated data.
    """
    rem = len2 % _ADLER_BASE
    sum1_a = adler1 & 0xFFFF
    sum2_a = (adler1 >> 16) & 0xFFFF
    sum1_b = adler2 & 0xFFFF
    sum2_b = (adler2 >> 16) & 0xFFFF
    sum1 = (sum1_a + sum1_b - 1) % _ADLER_BASE
    sum2 = (sum2_a + sum2_b + rem * (sum1_a - 1)) % _ADLER_BASE
    return (sum2 << 16) | sum1


def zlib_header(level: int) -> bytes:
    """The 2-byte zlib stream header ``zlib.compress(b"", level)`` emits."""
    if level in (0, 1):
        flevel = 0
    elif level < 6:
        flevel = 1
    elif level == 6:
        flevel = 2
    else:
        flevel = 3
    cmf = 0x78  # deflate, 32 KiB window
    flg = flevel << 6
    flg |= 31 - ((cmf * 256 + flg) % 31)  # FCHECK
    return struct.pack("!BB", cmf, flg)


def row_bands(height: int, bands: int) -> list[tuple[int, int]]:
    """Partition ``height`` scanlines into ≤ ``bands`` contiguous spans."""
    if bands < 1:
        raise ValueError("band count must be positive")
    bands = min(bands, height)
    per_band = -(-height // bands)
    return [
        (start, min(start + per_band, height))
        for start in range(0, height, per_band)
    ]


def deflate_band(data, level: int, final: bool) -> bytes:
    """One band as a raw deflate member, concatenatable with its peers.

    Non-final members end with ``Z_SYNC_FLUSH`` (an empty stored block
    that realigns the bit stream to a byte boundary, BFINAL clear);
    the final member emits the terminating block.  Concatenating the
    members therefore forms one well-formed deflate stream.
    """
    comp = zlib.compressobj(level, zlib.DEFLATED, -zlib.MAX_WBITS)
    out = comp.compress(data)
    out += comp.flush(zlib.Z_FINISH if final else zlib.Z_SYNC_FLUSH)
    return out


# -- Worker side --------------------------------------------------------------


class _Attachments:
    """A worker's bounded LRU of shared-memory attachments by name."""

    MAX = 8

    def __init__(self) -> None:
        self._by_name: dict[str, SharedMemory] = {}

    def get(self, name: str) -> SharedMemory:
        shm = self._by_name.pop(name, None)
        if shm is None:
            shm = SharedMemory(name=name)
            while len(self._by_name) >= self.MAX:
                self._by_name.pop(next(iter(self._by_name))).close()
        self._by_name[name] = shm
        return shm

    def pixels(self, name: str, offset: int, h: int, w: int) -> np.ndarray:
        buf = self.get(name).buf
        return np.frombuffer(
            buf, dtype=np.uint8, count=h * w * 4, offset=offset
        ).reshape(h, w, 4)

    def close_all(self) -> None:
        for shm in self._by_name.values():
            shm.close()
        self._by_name.clear()


def _task_png_band(shms: _Attachments, args: tuple):
    (name, offset, h, w, y0, y1, level, adaptive, fixed, final,
     want_filtered) = args
    rows = shms.pixels(name, offset, h, w).reshape(h, w * 4)
    prev_row = rows[y0 - 1] if y0 else None
    filtered = filter_image(
        rows[y0:y1], adaptive_filter=adaptive, fixed_filter=fixed,
        prev_row=prev_row,
    )
    if want_filtered:
        return filtered.tobytes()
    member = deflate_band(filtered, level, final)
    return member, zlib.adler32(filtered), filtered.nbytes


def _task_lossy_band(shms: _Attachments, args: tuple):
    name, offset, h, w, y0, y1, quality = args
    pixels = shms.pixels(name, offset, h, w)
    return plane_band_coefficients(pixels, quality, y0, y1)


def _task_deflate_band(shms: _Attachments, args: tuple):
    name, offset, length, level, final = args
    buf = shms.get(name).buf
    data = memoryview(buf)[offset : offset + length]
    try:
        return deflate_band(data, level, final), zlib.adler32(data), length
    finally:
        data.release()


def _task_diff_band(shms: _Attachments, args: tuple):
    prev_name, prev_off, cur_name, cur_off, h, w, y0, y1, tile = args
    from ..surface.damage import band_tile_changes

    prev32 = shms.pixels(prev_name, prev_off, h, w).view(np.uint32)[:, :, 0]
    cur32 = shms.pixels(cur_name, cur_off, h, w).view(np.uint32)[:, :, 0]
    return band_tile_changes(prev32, cur32, y0, y1, tile).tobytes()


_TASKS = {
    "png_band": _task_png_band,
    "lossy_band": _task_lossy_band,
    "deflate_band": _task_deflate_band,
    "diff_band": _task_diff_band,
    "ping": lambda shms, args: "pong",
}


def _worker_main(conn) -> None:
    """Worker loop: receive (task_id, op, args), reply (task_id, ok, payload)."""
    shms = _Attachments()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg is None:  # shutdown sentinel
                return
            task_id, op, args = msg
            try:
                payload = _TASKS[op](shms, args)
            except BaseException as exc:  # survive bad tasks, report them
                conn.send((task_id, False, f"{type(exc).__name__}: {exc}"))
                continue
            conn.send((task_id, True, payload))
    finally:
        shms.close_all()
        conn.close()


# -- Parent side --------------------------------------------------------------


class _Block:
    """One parent-owned shared-memory block, with an optional array view."""

    __slots__ = ("shm", "name", "nbytes", "ptr")

    def __init__(self, nbytes: int) -> None:
        self.shm = SharedMemory(create=True, size=nbytes)
        self.name = self.shm.name
        self.nbytes = nbytes
        self.ptr = np.frombuffer(self.shm.buf, dtype=np.uint8).__array_interface__[
            "data"
        ][0]

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:
            # Live numpy views (a differ snapshot, a pool-backed
            # framebuffer) still reference the mapping; it is released
            # when they are collected.  The *named* object must still
            # be unlinked now so nothing leaks past the pool.
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class PooledFrame:
    """An ``(h, w, 4)`` RGBA buffer living in pool shared memory."""

    __slots__ = ("block", "array")

    def __init__(self, block: _Block, h: int, w: int) -> None:
        self.block = block
        self.array = np.frombuffer(
            block.shm.buf, dtype=np.uint8, count=h * w * 4
        ).reshape(h, w, 4)

    @property
    def name(self) -> str:
        return self.block.name


class _WorkerHandle:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerCrash(RuntimeError):
    """Internal: a scatter lost a worker; the caller falls back."""


class EncodePool:
    """N supervised worker processes sharing framebuffer memory.

    The pool is crash-tolerant by construction: every public entry
    point that dispatches to workers catches a lost worker, respawns it
    (``ensure_workers``), counts the event, and recomputes in-process —
    callers always get a correct result.  ``close()`` (or the context
    manager, or the ``atexit`` backstop) terminates workers and unlinks
    every shared-memory block, so CI can assert nothing leaked.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        obs=None,
        start_method: str | None = None,
        min_parallel_rows: int = MIN_PARALLEL_ROWS,
        task_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            workers = DEFAULT_WORKERS
        self.workers = workers
        self.min_parallel_rows = min_parallel_rows
        self.task_timeout = task_timeout
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        # Start the resource tracker *before* forking so every worker
        # inherits it: attach-time registrations then collapse into the
        # parent's tracked set (it is a set per name) and the parent's
        # unlink clears them, instead of each worker spawning a private
        # tracker that warns about "leaked" blocks at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._handles: list[_WorkerHandle | None] = [None] * workers
        self._staging: _Block | None = None
        self._frames: list[PooledFrame] = []
        self._task_seq = 0
        self._closed = False
        self.worker_crashes = 0
        self.fallbacks = 0
        obs = obs if obs is not None else NULL
        self._obs = obs
        self._g_workers = obs.gauge("encode.workers")
        self._g_shm = obs.gauge("encode.shm_bytes")
        self._c_bands = obs.counter("encode.bands")
        self._c_saturated = obs.counter("encode.pool_saturated")
        self._c_crashes = obs.counter("encode.worker_crashes")
        self._c_fallbacks = obs.counter("encode.fallbacks")
        atexit.register(self.close)
        self.ensure_workers()

    # -- Lifecycle ---------------------------------------------------------

    def _spawn(self, slot: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"encode-worker-{slot}", daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn)
        self._handles[slot] = handle
        return handle

    def ensure_workers(self) -> int:
        """Respawn dead workers; returns the live count (self-healing)."""
        if self._closed:
            return 0
        live = 0
        for slot, handle in enumerate(self._handles):
            if handle is None or not handle.alive:
                if handle is not None:
                    handle.conn.close()
                try:
                    self._spawn(slot)
                except OSError:  # pragma: no cover - fork failure
                    self._handles[slot] = None
                    continue
            live += 1
        self._g_workers.set(live)
        return live

    async def watch(self, interval: float = 0.5) -> None:
        """Supervision loop for :class:`repro.health.TaskSupervisor`."""
        while not self._closed:
            self.ensure_workers()
            await asyncio.sleep(interval)

    def close(self) -> None:
        """Terminate workers and unlink every shared-memory block."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if handle is None:
                continue
            try:
                if handle.alive:
                    handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            if handle is None:
                continue
            handle.process.join(timeout=1.0)
            if handle.alive:  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.conn.close()
        self._handles = [None] * self.workers
        for frame in self._frames:
            frame.block.close()
        self._frames.clear()
        if self._staging is not None:
            self._staging.close()
            self._staging = None
        self._g_workers.set(0)
        self._g_shm.set(0)
        atexit.unregister(self.close)

    def __enter__(self) -> "EncodePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- Shared memory -----------------------------------------------------

    def _shm_bytes(self) -> int:
        total = sum(f.block.nbytes for f in self._frames)
        if self._staging is not None:
            total += self._staging.nbytes
        return total

    def alloc_frame(self, height: int, width: int) -> PooledFrame | None:
        """A pool-resident RGBA frame; None when allocation fails."""
        if self._closed:
            return None
        try:
            block = _Block(height * width * 4)
        except OSError:  # pragma: no cover - /dev/shm exhausted
            return None
        frame = PooledFrame(block, height, width)
        self._frames.append(frame)
        self._g_shm.set(self._shm_bytes())
        return frame

    def frame_buffer(self, width: int, height: int):
        """A :class:`~repro.surface.framebuffer.Framebuffer` whose pixels
        live in pool shared memory, so capture output needs no staging
        copy; None when allocation fails."""
        from ..surface.framebuffer import BLACK, Framebuffer

        frame = self.alloc_frame(height, width)
        if frame is None:
            return None
        fb = Framebuffer.__new__(Framebuffer)
        fb._pixels = frame.array
        fb._pixels[:, :] = BLACK
        return fb

    def locate(self, arr: np.ndarray) -> tuple[str, int] | None:
        """(shm name, offset) when ``arr`` is a contiguous pool-resident view."""
        if not arr.flags.c_contiguous:
            return None
        ptr = arr.__array_interface__["data"][0]
        for frame in self._frames:
            block = frame.block
            if block.ptr <= ptr and ptr + arr.nbytes <= block.ptr + block.nbytes:
                return block.name, ptr - block.ptr
        if self._staging is not None:
            block = self._staging
            if block.ptr <= ptr and ptr + arr.nbytes <= block.ptr + block.nbytes:
                return block.name, ptr - block.ptr
        return None

    def _stage_bytes(self, data) -> tuple[str, int]:
        """Copy ``data`` (a buffer) into the staging block; returns its ref."""
        view = memoryview(data).cast("B")
        needed = view.nbytes
        if self._staging is None or self._staging.nbytes < needed:
            if self._staging is not None:
                self._staging.close()
            self._staging = _Block(max(needed, 1 << 20))
            self._g_shm.set(self._shm_bytes())
        self._staging.shm.buf[:needed] = view
        return self._staging.name, 0

    def _stage_pixels(self, pixels: np.ndarray) -> tuple[str, int]:
        """Reference pool-resident pixels, else copy them into staging."""
        located = self.locate(pixels)
        if located is not None:
            return located
        return self._stage_bytes(np.ascontiguousarray(pixels))

    # -- Dispatch ----------------------------------------------------------

    def _scatter(self, tasks: list[tuple[str, tuple]]) -> list | None:
        """Run tasks across workers; results in task order, None on loss.

        Tasks are tagged with unique ids so stale replies left over from
        a previously failed batch are drained and discarded instead of
        desynchronising the protocol.
        """
        if self._closed or not tasks:
            return None
        live = [h for h in self._handles if h is not None and h.alive]
        if not live:
            if self.ensure_workers() == 0:
                return None
            live = [h for h in self._handles if h is not None and h.alive]
        if len(tasks) >= len(live):
            self._c_saturated.inc()
        self._c_bands.inc(len(tasks))
        assigned: list[tuple[_WorkerHandle, int]] = []
        try:
            for index, (op, args) in enumerate(tasks):
                handle = live[index % len(live)]
                self._task_seq += 1
                handle.conn.send((self._task_seq, op, args))
                assigned.append((handle, self._task_seq))
            results: list = [None] * len(tasks)
            for index, (handle, task_id) in enumerate(assigned):
                while True:
                    if not handle.conn.poll(self.task_timeout):
                        raise WorkerCrash("worker timed out")
                    got_id, ok, payload = handle.conn.recv()
                    if got_id != task_id:
                        continue  # stale reply from an abandoned batch
                    if not ok:
                        raise WorkerCrash(payload)
                    results[index] = payload
                    break
            return results
        except (WorkerCrash, BrokenPipeError, EOFError, OSError) as exc:
            self.worker_crashes += 1
            self._c_crashes.inc()
            if self._obs.enabled:
                self._obs.event(
                    "encode.worker_lost", error=type(exc).__name__,
                )
            for handle, _ in assigned:
                if not handle.alive:
                    handle.process.join(timeout=0.1)
            self.ensure_workers()
            return None

    def _fallback(self) -> None:
        self.fallbacks += 1
        self._c_fallbacks.inc()

    # -- Band pipelines ----------------------------------------------------

    def band_count(self, height: int, bands: int | None) -> int:
        requested = bands if bands and bands > 0 else self.workers
        return max(1, min(requested, height))

    def png_bands(
        self,
        pixels: np.ndarray,
        *,
        compression_level: int = 6,
        adaptive_filter: bool = True,
        fixed_filter: int = FILTER_NONE,
        bands: int | None = None,
    ) -> bytes | None:
        """The zlib IDAT stream via band workers; None → caller falls back."""
        height, _width = pixels.shape[:2]
        n_bands = self.band_count(height, bands)
        if n_bands < 2 and bands is None:
            return None
        name, offset = self._stage_pixels(pixels)
        h, w = pixels.shape[:2]
        spans = row_bands(height, n_bands)
        tasks = [
            ("png_band",
             (name, offset, h, w, y0, y1, compression_level,
              adaptive_filter, fixed_filter, y1 == height, False))
            for y0, y1 in spans
        ]
        results = self._scatter(tasks)
        if results is None:
            return None
        members = []
        adler = 1
        for member, band_adler, band_len in results:
            members.append(member)
            adler = adler32_combine(adler, band_adler, band_len)
        return (
            zlib_header(compression_level)
            + b"".join(members)
            + struct.pack("!I", adler)
        )

    def filtered_scanline_bands(
        self,
        pixels: np.ndarray,
        *,
        adaptive_filter: bool = True,
        fixed_filter: int = FILTER_NONE,
        bands: int | None = None,
    ) -> bytes | None:
        """The raw filtered scanline stream, reassembled from workers.

        Test/verification surface: must be byte-identical to
        :func:`repro.codecs.png.encoder.filtered_scanlines`.
        """
        height, _width = pixels.shape[:2]
        n_bands = self.band_count(height, bands)
        name, offset = self._stage_pixels(pixels)
        h, w = pixels.shape[:2]
        tasks = [
            ("png_band",
             (name, offset, h, w, y0, y1, 0, adaptive_filter, fixed_filter,
              y1 == height, True))
            for y0, y1 in row_bands(height, n_bands)
        ]
        results = self._scatter(tasks)
        if results is None:
            return None
        return b"".join(results)

    def lossy_plane_bands(
        self, pixels: np.ndarray, quality: int, bands: int | None = None
    ) -> list[bytes] | None:
        """Per-channel quantised plane streams via band workers."""
        height = pixels.shape[0]
        n_bands = self.band_count(height, bands)
        name, offset = self._stage_pixels(pixels)
        h, w = pixels.shape[:2]
        tasks = [
            ("lossy_band", (name, offset, h, w, y0, y1, quality))
            for y0, y1 in block_band_rows(height, n_bands)
        ]
        results = self._scatter(tasks)
        if results is None:
            return None
        return [
            b"".join(band[channel] for band in results) for channel in range(3)
        ]

    def deflate_bands(
        self, data: bytes, level: int = 6, bands: int | None = None
    ) -> bytes | None:
        """One zlib stream of ``data``, deflated across workers."""
        if not data:
            return None
        name, offset = self._stage_bytes(data)
        n_bands = self.band_count(len(data), bands)
        spans = row_bands(len(data), n_bands)
        tasks = [
            ("deflate_band",
             (name, offset + start, end - start, level, end == len(data)))
            for start, end in spans
        ]
        results = self._scatter(tasks)
        if results is None:
            return None
        adler = 1
        members = []
        for member, band_adler, band_len in results:
            members.append(member)
            adler = adler32_combine(adler, band_adler, band_len)
        return zlib_header(level) + b"".join(members) + struct.pack("!I", adler)

    def diff_bands(
        self,
        prev: np.ndarray,
        current: np.ndarray,
        spans: list[tuple[int, int]],
        tile: int,
    ) -> list[np.ndarray] | None:
        """Changed-tile coords per band; None unless both frames are
        pool-resident (staging a full copy would defeat the point)."""
        prev_ref = self.locate(prev)
        cur_ref = self.locate(current)
        if prev_ref is None or cur_ref is None or len(spans) < 2:
            return None
        h, w = prev.shape[:2]
        tasks = [
            ("diff_band",
             (prev_ref[0], prev_ref[1], cur_ref[0], cur_ref[1], h, w,
              y0, y1, tile))
            for y0, y1 in spans
        ]
        results = self._scatter(tasks)
        if results is None:
            return None
        return [
            np.frombuffer(raw, dtype=np.int64).reshape(-1, 2)
            for raw in results
        ]

    def snapshot(self) -> dict:
        return {
            "workers": sum(
                1 for h in self._handles if h is not None and h.alive
            ),
            "worker_crashes": self.worker_crashes,
            "fallbacks": self.fallbacks,
            "shm_bytes": self._shm_bytes(),
        }


# -- Codec-level entry points -------------------------------------------------


def encode_png_parallel(
    pixels: np.ndarray,
    pool: EncodePool | None,
    *,
    compression_level: int = 6,
    adaptive_filter: bool = True,
    fixed_filter: int = FILTER_NONE,
    bands: int | None = None,
    idat_chunk_size: int = 1 << 20,
) -> bytes:
    """PNG-encode across the pool; any shortfall uses the serial path.

    The decompressed IDAT (the filtered scanline stream) is byte-
    identical to :func:`~repro.codecs.png.encoder.encode_png`'s; the
    deflate framing differs (per-band members), so the container bytes
    may not match even though every decoder reconstructs identical
    pixels.
    """
    height, width = check_encode_input(pixels)
    if (
        pool is None
        or pool.closed
        or (height < pool.min_parallel_rows and bands is None)
    ):
        return encode_png(
            pixels, compression_level=compression_level,
            adaptive_filter=adaptive_filter, fixed_filter=fixed_filter,
            idat_chunk_size=idat_chunk_size,
        )
    compressed = pool.png_bands(
        pixels, compression_level=compression_level,
        adaptive_filter=adaptive_filter, fixed_filter=fixed_filter,
        bands=bands,
    )
    if compressed is None:
        pool._fallback()
        return encode_png(
            pixels, compression_level=compression_level,
            adaptive_filter=adaptive_filter, fixed_filter=fixed_filter,
            idat_chunk_size=idat_chunk_size,
        )
    return assemble_png(width, height, compressed, idat_chunk_size)


def encode_lossy_parallel(
    pixels: np.ndarray,
    pool: EncodePool | None,
    *,
    quality: int = 75,
    bands: int | None = None,
) -> bytes:
    """Lossy-DCT encode across the pool; shortfalls use the serial path.

    The quantised plane streams (the pre-entropy bytes) are identical
    to the serial encoder's; only the zlib member framing differs.
    """
    height = pixels.shape[0]
    if (
        pool is None
        or pool.closed
        or (height < pool.min_parallel_rows and bands is None)
    ):
        return lossy_mod.LossyDctCodec(quality).encode(pixels)
    planes = pool.lossy_plane_bands(pixels, quality, bands=bands)
    if planes is not None:
        body = pool.deflate_bands(b"".join(planes), level=6, bands=bands)
        if body is not None:
            h, w = pixels.shape[:2]
            return lossy_mod._HEADER.pack(w, h, quality) + body
    pool._fallback()
    return lossy_mod.LossyDctCodec(quality).encode(pixels)
