"""Zlib-compressed RGBA codec: raw scanlines through DEFLATE.

Sits between raw and PNG in the codec spectrum — the PNG filter-stage
ablation in ``bench_codecs.py`` compares against this to isolate how
much PNG's per-row filters buy on screen content.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from .base import (
    PT_ZLIB,
    CodecError,
    ImageCodec,
    _check_pixels,
    bounded_decompress,
    check_decode_dims,
)

_DIMS = struct.Struct("!II")


class ZlibCodec(ImageCodec):
    """DEFLATE over unfiltered RGBA scanlines."""

    payload_type = PT_ZLIB
    name = "zlib"
    lossless = True

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise CodecError(f"zlib level out of range: {level}")
        self.level = level

    def encode(self, pixels: np.ndarray) -> bytes:
        _check_pixels(pixels)
        h, w = pixels.shape[:2]
        return _DIMS.pack(w, h) + zlib.compress(pixels.tobytes(), self.level)

    def decode(self, data: bytes) -> np.ndarray:
        if len(data) < _DIMS.size:
            raise CodecError("zlib payload too short for dimensions",
                             reason="truncated")
        w, h = _DIMS.unpack_from(data)
        if w == 0 or h == 0:
            raise CodecError("zlib payload has empty dimensions",
                             reason="semantic")
        check_decode_dims(w, h, "zlib payload")
        expected = w * h * 4
        body = bounded_decompress(data[_DIMS.size:], expected, "zlib payload")
        return np.frombuffer(body, dtype=np.uint8).reshape(h, w, 4).copy()
