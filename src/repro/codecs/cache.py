"""Content-addressed cache of encoded update payloads.

Screen content repeats: a toolbar repaint, a blinking cursor cell, or
the same damage rectangle fanned out to N destinations all produce
byte-identical pixel blocks.  Encoding is deterministic given the
session's codec parameters, so the encoded payload can be keyed by the
pixel content plus those parameters and shared across every
per-destination :class:`~repro.sharing.encoder.FrameEncoder` of a
session — N destinations collapse to one encode per changed block.

The cache is a bounded LRU.  Keys hash the raw pixel bytes, the array
geometry (two blocks with equal bytes but different shapes encode
differently), and an opaque ``params`` token contributed by the caller
(codec names, quality, filter mode — anything that changes the encoded
bytes).  Hashing is zero-copy: contiguous blocks feed the digest
through the buffer protocol, rect views feed their (contiguous) rows
one at a time, and only a pathological non-contiguous-row layout
touches a single bounded per-thread row workspace.  A hit-path lookup
therefore never materialises a full-frame copy.

Values keep the selected codec's payload type alongside the encoded
bytes because the receive side needs it to pick a decoder.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict

import numpy as np

#: Digest size for cache keys.  16 bytes of blake2b keeps accidental
#: collision probability negligible (~2^-64 at billions of entries)
#: while halving key storage vs the full digest.
_DIGEST_SIZE = 16

_local = threading.local()


def _row_workspace(nbytes: int) -> np.ndarray:
    """One reusable per-thread row buffer for non-contiguous-row input."""
    ws = getattr(_local, "row_workspace", None)
    if ws is None or ws.nbytes < nbytes:
        ws = np.empty(nbytes, dtype=np.uint8)
        _local.row_workspace = ws
    return ws


class EncodeCache:
    """Bounded LRU mapping pixel-content digests to encoded payloads."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError("cache size cannot be negative")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, tuple[int, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(pixels: np.ndarray, params: bytes = b"") -> bytes:
        """Content address of an update's pixel block.

        ``params`` is the caller's encode-parameter token; blocks with
        equal pixels but different codec parameters must not share an
        entry.  The pixel bytes reach the digest without a full-frame
        copy: whole contiguous arrays go straight through the buffer
        protocol, and the rect views the damage pipeline produces hash
        row by row (each row of a sliced RGBA view is contiguous).
        """
        digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        digest.update(struct.pack("!B", pixels.ndim))
        digest.update(struct.pack(f"!{pixels.ndim}q", *pixels.shape))
        digest.update(params)
        if pixels.flags.c_contiguous:
            digest.update(pixels)
        elif pixels.size:
            first = pixels[0]
            if first.flags.c_contiguous:
                for row in pixels:
                    digest.update(row)
            else:
                ws = _row_workspace(first.nbytes)
                row_out = np.frombuffer(
                    ws, dtype=pixels.dtype, count=first.size
                ).reshape(first.shape)
                for row in pixels:
                    np.copyto(row_out, row)
                    digest.update(ws[: first.nbytes])
        return digest.digest()

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Look up ``(payload_type, encoded)`` for a key, LRU-touching it."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, payload_type: int, data: bytes) -> None:
        """Insert an encoded payload, evicting least-recently-used first."""
        if self.max_entries == 0:
            return
        self._entries[key] = (payload_type, data)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
