"""Content-addressed cache of encoded update payloads.

Screen content repeats: a toolbar repaint, a blinking cursor cell, or
the same damage rectangle fanned out to N destinations all produce
byte-identical pixel blocks.  Encoding is deterministic (codec
selection included), so the encoded payload can be keyed by the pixel
content itself and shared across every per-destination
:class:`~repro.sharing.encoder.FrameEncoder` of a session.

The cache is a bounded LRU.  Keys hash the raw pixel bytes plus the
array shape (two blocks with equal bytes but different geometry encode
differently).  Values keep the selected codec's payload type alongside
the encoded bytes because the receive side needs it to pick a decoder.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

#: Digest size for cache keys.  16 bytes of blake2b keeps accidental
#: collision probability negligible (~2^-64 at billions of entries)
#: while halving key storage vs the full digest.
_DIGEST_SIZE = 16


class EncodeCache:
    """Bounded LRU mapping pixel-content digests to encoded payloads."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError("cache size cannot be negative")
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, tuple[int, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(pixels: np.ndarray) -> bytes:
        """Content address of an update's pixel block."""
        digest = hashlib.blake2b(
            np.ascontiguousarray(pixels), digest_size=_DIGEST_SIZE
        )
        digest.update(repr(pixels.shape).encode())
        return digest.digest()

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Look up ``(payload_type, encoded)`` for a key, LRU-touching it."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, payload_type: int, data: bytes) -> None:
        """Insert an encoded payload, evicting least-recently-used first."""
        if self.max_entries == 0:
            return
        self._entries[key] = (payload_type, data)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
