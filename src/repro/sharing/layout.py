"""Participant-side window layout policies (Figures 3-5).

"A participant can display the windows in their original coordinates or
it can display them in different coordinates" (section 4.1):

* Figure 3 — :class:`OriginalLayout`: identity placement.
* Figure 4 — :class:`ShiftedLayout`: every window translated by one
  offset, preserving inter-window relations.
* Figure 5 — :class:`CompactedLayout`: windows pulled together and
  clamped so they fit a smaller participant screen, z-order preserved.

A layout only moves windows; it never scales pixels.  Every policy is
invertible *per window*, which is how participant-local coordinates map
back to AH absolute coordinates for HIP events.
"""

from __future__ import annotations

import abc

from ..core.window_info import WindowRecord
from ..surface.geometry import Point, Rect


class LayoutPolicy(abc.ABC):
    """Maps AH window geometry to participant-local positions."""

    @abc.abstractmethod
    def place(self, records: list[WindowRecord],
              screen: Rect) -> dict[int, Point]:
        """Local top-left for each windowID given the local screen."""


class OriginalLayout(LayoutPolicy):
    """Figure 3: identical coordinates."""

    def place(self, records: list[WindowRecord], screen: Rect) -> dict[int, Point]:
        return {r.window_id: Point(r.left, r.top) for r in records}


class ShiftedLayout(LayoutPolicy):
    """Figure 4: translate the whole group, relations preserved.

    With ``auto=True`` the shift brings the bounding box of all shared
    windows to the local origin (what Figure 4's participant does with
    -220/-150); otherwise the explicit ``dx``/``dy`` are applied.
    """

    def __init__(self, dx: int = 0, dy: int = 0, auto: bool = True) -> None:
        self.dx = dx
        self.dy = dy
        self.auto = auto

    def place(self, records: list[WindowRecord], screen: Rect) -> dict[int, Point]:
        if not records:
            return {}
        if self.auto:
            dx = -min(r.left for r in records)
            dy = -min(r.top for r in records)
        else:
            dx, dy = self.dx, self.dy
        return {
            r.window_id: Point(max(0, r.left + dx), max(0, r.top + dy))
            for r in records
        }


class GroupedLayout(LayoutPolicy):
    """Packs windows by GroupID, preserving intra-group geometry.

    Section 4.1: "Grouping information MAY be used by the participant
    while relocating the windows."  Windows sharing a GroupID (one
    process, per section 5.2.1) move as a unit: each group's bounding
    box is stacked left-to-right with a gutter, while relative window
    positions inside a group are untouched.  Ungrouped windows
    (GroupID 0) each form their own unit.
    """

    def __init__(self, gutter: int = 16) -> None:
        if gutter < 0:
            raise ValueError("gutter cannot be negative")
        self.gutter = gutter

    def place(self, records: list[WindowRecord], screen: Rect) -> dict[int, Point]:
        if not records:
            return {}
        # Partition into units: one per group, one per ungrouped window.
        units: dict[object, list[WindowRecord]] = {}
        for record in records:
            key: object = (
                ("group", record.group_id)
                if record.group_id != 0
                else ("solo", record.window_id)
            )
            units.setdefault(key, []).append(record)

        out: dict[int, Point] = {}
        cursor_x = 0
        row_top = 0
        row_height = 0
        for key in sorted(units, key=str):
            members = units[key]
            base_x = min(r.left for r in members)
            base_y = min(r.top for r in members)
            width = max(r.left - base_x + r.width for r in members)
            height = max(r.top - base_y + r.height for r in members)
            if cursor_x > 0 and cursor_x + width > screen.width:
                # Wrap to the next row of groups.
                cursor_x = 0
                row_top += row_height + self.gutter
                row_height = 0
            for record in members:
                x = cursor_x + (record.left - base_x)
                y = row_top + (record.top - base_y)
                x = max(0, min(x, max(0, screen.width - record.width)))
                y = max(0, min(y, max(0, screen.height - record.height)))
                out[record.window_id] = Point(x, y)
            cursor_x += width + self.gutter
            row_height = max(row_height, height)
        return out


class CompactedLayout(LayoutPolicy):
    """Figure 5: squeeze windows onto a small screen.

    Positions (not sizes) are scaled toward the origin until every
    window's top-left allows it to fit, then clamped to the screen.
    Overlap increases — exactly what Figure 5 shows — while z-order
    still comes from WindowManagerInfo record order.
    """

    def place(self, records: list[WindowRecord], screen: Rect) -> dict[int, Point]:
        if not records:
            return {}
        base_x = min(r.left for r in records)
        base_y = min(r.top for r in records)
        # How far the group extends beyond the local screen, at worst.
        scale_x = 1.0
        scale_y = 1.0
        for r in records:
            extent_x = (r.left - base_x) + r.width
            extent_y = (r.top - base_y) + r.height
            if extent_x > screen.width and r.left - base_x > 0:
                scale_x = min(
                    scale_x,
                    max(0.0, (screen.width - r.width)) / (r.left - base_x),
                )
            if extent_y > screen.height and r.top - base_y > 0:
                scale_y = min(
                    scale_y,
                    max(0.0, (screen.height - r.height)) / (r.top - base_y),
                )
        out: dict[int, Point] = {}
        for r in records:
            x = int((r.left - base_x) * scale_x)
            y = int((r.top - base_y) * scale_y)
            x = max(0, min(x, max(0, screen.width - r.width)))
            y = max(0, min(y, max(0, screen.height - r.height)))
            out[r.window_id] = Point(x, y)
        return out
