"""AH-side retransmission cache for Generic NACK recovery.

"AHs MAY support retransmissions" (section 4.5.1); when the
``retransmissions`` media-type parameter is ``yes``, the AH keeps the
last N encoded RTP packets per UDP destination and replays the ones a
NACK names.
"""

from __future__ import annotations

from collections import OrderedDict


class RetransmitCache:
    """A bounded map of sequence number → encoded RTP packet bytes."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self._packets: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def store(self, sequence_number: int, encoded: bytes) -> None:
        if self.capacity == 0:
            return
        seq = sequence_number & 0xFFFF
        if seq in self._packets:
            del self._packets[seq]
        self._packets[seq] = encoded
        while len(self._packets) > self.capacity:
            self._packets.popitem(last=False)

    def lookup(self, sequence_number: int) -> bytes | None:
        """The cached packet, or None when it has aged out."""
        packet = self._packets.get(sequence_number & 0xFFFF)
        if packet is None:
            self.misses += 1
        else:
            self.hits += 1
        return packet

    def lookup_many(self, sequence_numbers: list[int]) -> list[bytes]:
        """Every cached packet among ``sequence_numbers``, in order."""
        out = []
        for seq in sequence_numbers:
            packet = self.lookup(seq)
            if packet is not None:
                out.append(packet)
        return out

    def __len__(self) -> int:
        return len(self._packets)
