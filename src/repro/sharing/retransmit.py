"""AH-side retransmission cache for Generic NACK recovery.

"AHs MAY support retransmissions" (section 4.5.1); when the
``retransmissions`` media-type parameter is ``yes``, the AH keeps the
last N encoded RTP packets per UDP destination and replays the ones a
NACK names.

Entries are keyed by **extended** sequence number.  NACK FCI entries
carry bare 16-bit PIDs, and after a sequence wraparound the same
residue names a different packet: a cache keyed on ``seq & 0xFFFF``
would happily replay a packet from 65536 sequence numbers ago, which
the receiver's jitter buffer then accepts as filling a fresh hole —
silent pixel corruption.  The cache extends stored sequence numbers
internally (store order tracks the sender's monotonic stream), evicts
the previous cycle's entry when a residue is reused, and refuses
lookups that resolve more than half the sequence space behind the
newest stored packet (counted as ``retransmit.stale_rejected``).
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs.instrumentation import NULL
from ..rtp.sequence import SequenceExtender

#: A 16-bit lookup never legitimately names a packet more than half the
#: sequence space behind the newest one stored.
STALE_WINDOW = 1 << 15


class RetransmitCache:
    """A bounded map of extended sequence number → encoded RTP packet."""

    def __init__(self, capacity: int = 2048,
                 instrumentation=None) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self._packets: OrderedDict[int, bytes] = OrderedDict()
        #: 16-bit residue → extended sequence number of the live entry.
        self._by_residue: dict[int, int] = {}
        self._extender = SequenceExtender()
        self.hits = 0
        self.misses = 0
        self.stale_rejected = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_hits = obs.counter("retransmit.cache_hits")
        self._c_misses = obs.counter("retransmit.cache_misses")
        self._c_stale = obs.counter("retransmit.stale_rejected")

    def store(self, sequence_number: int, encoded: bytes) -> None:
        """Cache one just-sent packet.

        ``sequence_number`` may be the 16-bit wire value (extended
        internally relative to the newest stored packet) or an already
        extended value.
        """
        if self.capacity == 0:
            return
        ext = self._extender.extend(sequence_number)
        residue = ext & 0xFFFF
        previous = self._by_residue.get(residue)
        if previous is not None and previous != ext:
            # Same residue, different cycle: the old packet is
            # unreachable by any honest NACK — evict it.
            self._packets.pop(previous, None)
        if ext in self._packets:
            del self._packets[ext]
        self._packets[ext] = encoded
        self._by_residue[residue] = ext
        while len(self._packets) > self.capacity:
            evicted, _ = self._packets.popitem(last=False)
            if self._by_residue.get(evicted & 0xFFFF) == evicted:
                del self._by_residue[evicted & 0xFFFF]

    def lookup(self, sequence_number: int) -> bytes | None:
        """The cached packet, or None when it aged out or went stale."""
        if sequence_number > 0xFFFF:
            ext = sequence_number
        else:
            ext = self._by_residue.get(sequence_number & 0xFFFF)
        packet = self._packets.get(ext) if ext is not None else None
        if packet is not None:
            highest = self._extender.highest or 0
            if highest - ext > STALE_WINDOW:
                # Previous-cycle leftover: replaying it would corrupt
                # the receiver silently.  Treat as a miss.
                self.stale_rejected += 1
                self._c_stale.inc()
                packet = None
        if packet is None:
            self.misses += 1
            self._c_misses.inc()
        else:
            self.hits += 1
            self._c_hits.inc()
        return packet

    def lookup_many(self, sequence_numbers: list[int]) -> list[bytes]:
        """Every cached packet among ``sequence_numbers``, in order."""
        out = []
        for seq in sequence_numbers:
            packet = self.lookup(seq)
            if packet is not None:
                out.append(packet)
        return out

    def __len__(self) -> int:
        return len(self._packets)
