"""The Application Host (AH): runs apps, distributes updates, regenerates HIDs.

One :class:`ApplicationHost` owns the virtual window system, the
synthetic applications, the capture pipeline, and a per-destination
:class:`~repro.sharing.sender.UpdateScheduler`.  A single AH serves TCP
participants, UDP participants, and multicast groups in the same
session (section 4.2); each destination keeps its own RTP sequence
space, pacing state and retransmission cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..apps.base import AppHost
from ..codecs.base import CodecRegistry, default_registry
from ..codecs.cache import EncodeCache
from ..core.errors import ProtocolError
from ..health.liveness import LivenessConfig, LivenessTracker
from ..net.ratecontrol import TokenBucket
from ..obs.clockutil import resolve_clock
from ..obs.instrumentation import NULL, resolve_obs
from ..rtp.feedback import GenericNack, PictureLossIndication
from ..rtp.reports import RtcpReporter
from ..rtp.rtcp import RtcpError, decode_compound
from ..rtp.packet import RtpPacket
from ..rtp.session import RtpReceiver, RtpSender
from ..surface.cursor import PointerState
from ..surface.geometry import Rect
from ..surface.window import WindowManager
from .capture import CapturePipeline
from .config import PT_HIP, PT_REMOTING, PointerMode, SharingConfig
from .encoder import FrameEncoder
from .events import EventInjector, FloorCheck
from .quarantine import QuarantinePolicy
from .sender import UpdateScheduler
from .transport import PacketTransport, is_rtcp


@dataclass(slots=True)
class AhSession:
    """AH-side state for one destination (participant or group)."""

    participant_id: str
    transport: PacketTransport
    scheduler: UpdateScheduler
    reporter: RtcpReporter | None = None
    hip_receiver: RtpReceiver | None = None
    is_group: bool = False


class ApplicationHost:
    """The computer that runs the shared application (section 1)."""

    def __init__(
        self,
        screen_width: int = 1280,
        screen_height: int = 1024,
        config: SharingConfig | None = None,
        registry: CodecRegistry | None = None,
        clock=None,
        floor_check: FloorCheck | None = None,
        rng: random.Random | None = None,
        now=None,
        obs=None,
        instrumentation=None,
        liveness: LivenessConfig | None = None,
    ) -> None:
        self.config = config or SharingConfig()
        self.registry = registry or default_registry()
        self._now = resolve_clock(
            clock, now, "ApplicationHost", default=lambda: 0.0
        )
        self._rng = rng or random.Random(0)
        self.obs = resolve_obs(obs, instrumentation, "ApplicationHost")
        #: One content-addressed encode cache for the whole session:
        #: the same damaged block fanned out to N destinations (or
        #: repeated over time) is encoded once.
        self.encode_cache = (
            EncodeCache(self.config.encode_cache_entries)
            if self.config.encode_cache_entries
            else None
        )
        #: One worker-process encode pool for the whole session (opt-in
        #: via ``encode_workers``); shared by every per-destination
        #: encoder like the cache.  Owned here: :meth:`close` tears it
        #: down, and the hosting layer supervises its ``watch()`` loop.
        self.encode_pool = None
        if self.config.encode_workers:
            from ..codecs.parallel import EncodePool

            workers = self.config.encode_workers
            self.encode_pool = EncodePool(
                0 if workers < 0 else workers, obs=self.obs
            )

        self.windows = WindowManager(screen_width, screen_height)
        self.apps = AppHost(self.windows)
        # Both pointer models (section 4.2) keep AH pointer state; the
        # mode decides whether it ships as MousePointerInfo messages or
        # painted into RegionUpdate pixels.
        self.pointer = PointerState()
        self.capture = CapturePipeline(
            self.windows,
            pointer=self.pointer,
            scroll_detection=self.config.scroll_detection,
            max_update_rects=self.config.max_update_rects,
            pointer_in_band=self.config.pointer_mode is PointerMode.IN_BAND,
        )
        #: Malformed packets count against the sending participant's
        #: rejection budget; a tripped budget mutes that participant's
        #: ingress for the cool-down while everyone else is served.
        self.quarantine = QuarantinePolicy(
            now=self._now,
            budget=self.config.rejection_budget,
            window=self.config.rejection_window,
            cooldown=self.config.quarantine_cooldown,
            instrumentation=self.obs,
        )
        self.injector = EventInjector(
            self.windows, self.apps, pointer=self.pointer,
            floor_check=floor_check, instrumentation=self.obs,
            on_malformed=lambda pid, exc: self.quarantine.record_rejection(
                pid, "hip", exc
            ),
        )
        #: Silence-driven participant eviction (opt-in): any arriving
        #: packet proves liveness; healthy paths always carry at least
        #: RTCP or keepalives, so silence past the thresholds means the
        #: peer died or the path partitioned.
        self.liveness = (
            LivenessTracker(self._now, liveness, instrumentation=self.obs)
            if liveness is not None
            else None
        )
        self.sessions: dict[str, AhSession] = {}
        #: Message type → handler(participant_id, payload, packet) for
        #: registered HIP-stream extension types (section 9).
        self.extension_handlers: dict = {}
        self.plis_received = 0
        self.nacks_received = 0
        self.participants_evicted = 0
        self._c_plis = self.obs.counter("ah.plis_received")
        self._c_nacks = self.obs.counter("ah.nacks_received")
        self._c_evicted = self.obs.counter("health.participants_evicted")

    # -- Participant management ------------------------------------------------

    def add_participant(
        self,
        participant_id: str,
        transport: PacketTransport,
        rate_bps: int | None = None,
        is_group: bool = False,
    ) -> AhSession:
        """Register a destination.

        TCP (reliable) destinations receive the window state and full
        image immediately, "right after the TCP connection
        establishment" (section 4.4).  UDP destinations wait for their
        PLI (section 4.3).  ``rate_bps`` attaches a token-bucket tier
        for UDP pacing (section 4.3).
        """
        if participant_id in self.sessions:
            raise ValueError(f"participant {participant_id!r} already present")
        obs = self.obs.scoped(peer=participant_id, side="ah")
        sender = RtpSender(
            PT_REMOTING, now=self._now, rng=self._rng,
            instrumentation=obs,
        )
        encoder = FrameEncoder(
            sender, self.registry, self.config, self._now,
            instrumentation=obs, cache=self.encode_cache,
            pool=self.encode_pool,
        )
        limiter = (
            TokenBucket(rate_bps, now=self._now, instrumentation=obs)
            if rate_bps
            else None
        )
        scheduler = UpdateScheduler(
            transport, encoder, self.windows, self.config, self._now, limiter,
            pixel_reader=self.capture.read_window_rect,
            instrumentation=obs,
        )
        hip_receiver = RtpReceiver(
            clock_rate=self.config.clock_rate, now=self._now,
            instrumentation=obs.scoped(stream="hip"),
        )
        reporter = RtcpReporter(
            self._now, sender=sender, receiver=hip_receiver,
            cname=f"ah/{participant_id}", rng=self._rng,
            instrumentation=obs,
        )
        session = AhSession(
            participant_id, transport, scheduler, reporter, hip_receiver,
            is_group,
        )
        self.sessions[participant_id] = session
        if self.liveness is not None:
            self.liveness.track(participant_id)
        if transport.reliable:
            scheduler.submit_full_refresh()
        return session

    def remove_participant(self, participant_id: str) -> None:
        self.sessions.pop(participant_id, None)
        self.quarantine.forget(participant_id)
        if self.liveness is not None:
            self.liveness.forget(participant_id)

    # -- Desktop sharing ---------------------------------------------------

    def share_desktop(self, title: str = "desktop"):
        """Switch to *desktop sharing*: one window covering the screen.

        Section 2: "In desktop sharing, a computer distributes all
        screen updates."  On the wire this degenerates to application
        sharing with a single full-screen window — which is exactly how
        the protocol models it.  Returns the desktop window; draw the
        whole screen into it.
        """
        screen = self.windows.screen
        return self.windows.create_window(
            Rect(0, 0, screen.width, screen.height), title=title
        )

    # -- Main loop ------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """One service round: tick apps, capture, distribute, receive."""
        if dt > 0:
            self.apps.tick_all(dt)
        frame = self.capture.capture()
        for session in self.sessions.values():
            if not frame.is_empty:
                session.scheduler.submit(frame)
            session.scheduler.pump()
            if session.reporter is not None:
                report = session.reporter.poll()
                if report is not None:
                    session.transport.send_packet(report)
        self.process_incoming()

    def pump(self) -> None:
        """Service transports without advancing app time."""
        for session in self.sessions.values():
            session.scheduler.pump()
        self.process_incoming()

    # -- Receive path ------------------------------------------------------------------

    def process_incoming(self) -> None:
        departed: list[str] = []
        for session in self.sessions.values():
            quarantined = self.quarantine.is_quarantined(
                session.participant_id
            )
            packets = session.transport.receive_packets()
            if packets and self.liveness is not None:
                self.liveness.note_alive(session.participant_id)
            for raw in packets:
                if quarantined:
                    continue  # drain but ignore until the cool-down ends
                if is_rtcp(raw):
                    self._handle_rtcp(session, raw)
                else:
                    self._handle_rtp(session, raw)
            if session.transport.closed:
                departed.append(session.participant_id)
        for participant_id in departed:
            self.remove_participant(participant_id)

    def poll_liveness(self) -> list[str]:
        """Evict participants silent past the dead threshold.

        Returns the evicted ids so the signalling layer above (the
        session core) can drop the matching calls.  No-op without a
        configured tracker.
        """
        if self.liveness is None:
            return []
        report = self.liveness.poll()
        for participant_id in report.newly_dead:
            self.remove_participant(participant_id)
            self.participants_evicted += 1
            self._c_evicted.inc()
            if self.obs.enabled:
                self.obs.event(
                    "health.participant_evicted", peer=participant_id
                )
        return report.newly_dead

    def _handle_rtp(self, session: AhSession, raw: bytes) -> None:
        try:
            packet = RtpPacket.decode(raw)
        except ProtocolError as exc:
            self.quarantine.record_rejection(session.participant_id, "rtp", exc)
            return
        if packet.payload_type != PT_HIP:
            return
        if session.hip_receiver is not None:
            session.hip_receiver.receive(packet)
        if len(packet.payload) >= 1:
            handler = self.extension_handlers.get(packet.payload[0])
            if handler is not None:
                try:
                    if handler(session.participant_id, packet.payload, packet):
                        return
                except ProtocolError as exc:
                    # Malformed extension input counts like any other;
                    # an extension *bug* (non-protocol error) propagates.
                    self.quarantine.record_rejection(
                        session.participant_id, "extension", exc
                    )
                    return
        self.injector.inject_payload(session.participant_id, packet.payload)

    def _handle_rtcp(self, session: AhSession, raw: bytes) -> None:
        try:
            messages = decode_compound(raw)
        except RtcpError as exc:
            self.quarantine.record_rejection(
                session.participant_id, "rtcp", exc
            )
            return
        for message in messages:
            if isinstance(message, PictureLossIndication):
                self.plis_received += 1
                self._c_plis.inc()
                if self.obs.enabled:
                    self.obs.event("pli.received", peer=session.participant_id)
                session.scheduler.submit_full_refresh()
            elif isinstance(message, GenericNack):
                self.nacks_received += 1
                self._c_nacks.inc()
                if self.obs.enabled:
                    self.obs.event(
                        "nack.received",
                        peer=session.participant_id,
                        count=len(message.sequence_numbers()),
                    )
                if self.config.retransmissions:
                    session.scheduler.retransmit(message.sequence_numbers())

    # -- Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release host-owned process resources (the encode pool)."""
        if self.encode_pool is not None:
            self.encode_pool.close()

    # -- Introspection -------------------------------------------------------------------

    def total_bytes_sent(self) -> int:
        return sum(s.scheduler.bytes_sent for s in self.sessions.values())

    def total_packets_sent(self) -> int:
        return sum(s.scheduler.packets_sent for s in self.sessions.values())

    def session(self, participant_id: str) -> AhSession:
        return self.sessions[participant_id]
