"""repro.sharing.server — asyncio multi-session hosting.

One :class:`SessionServer` process hosts hundreds of independent
sharing sessions: a join-code :class:`SessionRegistry`, one
:class:`HostedSession` (AH + :class:`SessionCore` + task group) per
code, a signalling front door (INVITE/BYE through the existing SIP/SDP
stack), and cooperative transport adapters so per-session work never
blocks the event loop.  The synchronous
:class:`~repro.sharing.service.SharingService` wraps the same
:class:`SessionCore` for single-session use.

See ``docs/API.md`` for the public surface and
``benchmarks/bench_session_server.py`` for the sessions-per-core and
p95-latency gates.
"""

from .aio import AsyncTransport, CooperativeTransport, DEFAULT_BUDGET
from .core import CoreCall, SessionCore
from .errors import (
    DuplicateJoinCode,
    DuplicateParticipant,
    JoinFailed,
    ServerError,
    ServerOverloaded,
    SessionClosed,
    UnknownJoinCode,
)
from .registry import CODE_ALPHABET, SessionRegistry
from .session import HostedSession, SessionState
from .server import JoinedParticipant, SessionServer

__all__ = [
    "AsyncTransport",
    "CODE_ALPHABET",
    "CooperativeTransport",
    "CoreCall",
    "DEFAULT_BUDGET",
    "DuplicateJoinCode",
    "DuplicateParticipant",
    "HostedSession",
    "JoinFailed",
    "JoinedParticipant",
    "ServerError",
    "ServerOverloaded",
    "SessionClosed",
    "SessionCore",
    "SessionRegistry",
    "SessionServer",
    "SessionState",
    "UnknownJoinCode",
]
