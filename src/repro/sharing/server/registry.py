"""The session registry: join codes → hosted sessions.

One :class:`SessionRegistry` per :class:`~repro.sharing.server.SessionServer`
maps short human-typable join codes to live sessions.  Codes are drawn
from an unambiguous alphabet (no ``0/O``, ``1/I/L``) with a seeded RNG
so simulations stay deterministic; callers may also pin an explicit
code (meeting rooms with stable codes), which must be unique.

The registry is bookkeeping only — session lifecycle (task groups,
signalling) lives in :class:`~repro.sharing.server.session.HostedSession`;
the registry just guarantees code uniqueness and O(1) lookup, and
counts what happened through the server's instrumentation.
"""

from __future__ import annotations

import random
from typing import Iterator

from ...obs.instrumentation import NULL
from .errors import DuplicateJoinCode, UnknownJoinCode

#: Unambiguous join-code alphabet (31 symbols, no 0/O, 1/I/L).
CODE_ALPHABET = "23456789ABCDEFGHJKMNPQRSTUVWXYZ"

#: Canonicalisation of the confusable classes the alphabet excludes:
#: a pinned code may contain them, and a human transcribing ``0`` as
#: ``O`` (or ``1``/``l`` as ``I``) must still resolve to the same key.
_CONFUSABLES = str.maketrans({"0": "O", "1": "I", "L": "I"})

#: Characters a *normalised* code may contain: the unambiguous
#: alphabet plus the canonical representative of each confusable class.
_ALLOWED = frozenset(CODE_ALPHABET) | {"O", "I"}


class SessionRegistry:
    """Join-code keyed map of hosted sessions."""

    def __init__(
        self,
        rng: random.Random | None = None,
        code_length: int = 6,
        obs=None,
    ) -> None:
        if code_length < 4:
            raise ValueError("join codes shorter than 4 are guessable")
        self._rng = rng or random.Random()
        self._code_length = code_length
        self._sessions: dict[str, object] = {}
        self._obs = obs if obs is not None else NULL
        self._g_sessions = self._obs.gauge("server.sessions")
        self._c_registered = self._obs.counter("server.sessions_registered")
        self._c_removed = self._obs.counter("server.sessions_removed")

    # -- Code allocation ----------------------------------------------------

    def issue_code(self) -> str:
        """A fresh, unused join code."""
        while True:
            code = "".join(
                self._rng.choice(CODE_ALPHABET)
                for _ in range(self._code_length)
            )
            if code not in self._sessions:
                return code

    @staticmethod
    def normalise(code: str) -> str:
        """Join codes are case-insensitive, dash/space tolerant, and
        confusable-folded (``0``→``O``, ``1``/``L``→``I``), so any
        transcription a human could plausibly produce resolves to the
        same registry key."""
        return (
            code.replace("-", "").replace(" ", "")
            .upper()
            .translate(_CONFUSABLES)
        )

    # -- CRUD ---------------------------------------------------------------

    def register(self, session, code: str | None = None) -> str:
        """Add ``session`` under ``code`` (or a freshly issued one).

        Pinned codes are normalised (which folds the ``0/O`` and
        ``1/I/L`` confusable classes to one representative each, so a
        pinned ``"HELL0"`` and a user-typed ``"HELLO"`` meet at the
        same key) and then validated: anything still outside the
        join-code alphabet has no unambiguous transcription and is
        rejected rather than registered as an untypeable session.
        """
        if code is None:
            code = self.issue_code()
        else:
            code = self.normalise(code)
            if not code:
                raise ValueError("join code cannot be empty")
            bad = sorted(set(code) - _ALLOWED)
            if bad:
                raise ValueError(
                    f"join code {code!r} uses unmappable characters"
                    f" outside the join-code alphabet: {''.join(bad)!r}"
                )
            if code in self._sessions:
                raise DuplicateJoinCode(code)
        self._sessions[code] = session
        self._c_registered.inc()
        self._g_sessions.set(len(self._sessions))
        return code

    def lookup(self, code: str):
        """The session registered under ``code``; :class:`UnknownJoinCode`
        when the code was never issued or its session already closed."""
        session = self._sessions.get(self.normalise(code))
        if session is None:
            raise UnknownJoinCode(code)
        return session

    def remove(self, code: str) -> None:
        """Drop ``code``; removing an unknown code is a no-op (the
        BYE-race path can tear a session down from two directions)."""
        if self._sessions.pop(self.normalise(code), None) is not None:
            self._c_removed.inc()
            self._g_sessions.set(len(self._sessions))

    # -- Introspection ------------------------------------------------------

    def codes(self) -> list[str]:
        return sorted(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, code: str) -> bool:
        return self.normalise(code) in self._sessions

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(list(self._sessions.items()))
