"""Non-blocking transport adapters for the asyncio session server.

Every transport in :mod:`repro.sharing.transport` is already
*non-blocking* in the syscall sense (simulated channels never block;
the real sockets are ``setblocking(False)``), but a busy destination
can still hand ``receive_packets()`` an unbounded batch, and one
chatty session must not monopolise the event loop while its neighbours
starve.  Two adapters keep per-session work loop-friendly:

* :class:`CooperativeTransport` bounds how many packets one
  ``receive_packets()`` call may return, buffering the excess locally,
  so each media-pump iteration does a bounded amount of work.
* :class:`AsyncTransport` adds awaitable receive on top — it yields to
  the event loop between bounded batches, and for real-socket
  transports (anything exposing ``fileno()``) it wakes on readability
  via ``loop.add_reader`` instead of polling.
"""

from __future__ import annotations

import asyncio
from collections import deque

from ..transport import PacketTransport

#: Default per-drain packet budget; generous for media, tight enough
#: that a flooding peer cannot stall sibling sessions.
DEFAULT_BUDGET = 256


class CooperativeTransport(PacketTransport):
    """A bounded-batch view over any :class:`PacketTransport`.

    ``receive_packets()`` returns at most ``budget`` packets per call;
    anything beyond the budget waits, already drained from the
    underlying path, in a local deque for the next call.  Send-side
    calls delegate unchanged.
    """

    def __init__(self, inner: PacketTransport,
                 budget: int = DEFAULT_BUDGET) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1 packet")
        self.inner = inner
        self.budget = budget
        self._pending: deque[bytes] = deque()

    @property
    def reliable(self) -> bool:  # type: ignore[override]
        return self.inner.reliable

    def send_packet(self, packet: bytes) -> bool:
        return self.inner.send_packet(packet)

    def receive_packets(self) -> list[bytes]:
        pending = self._pending
        if len(pending) < self.budget:
            pending.extend(self.inner.receive_packets())
        n = min(self.budget, len(pending))
        return [pending.popleft() for _ in range(n)]

    @property
    def has_backlog(self) -> bool:
        """True when a previous drain left packets buffered locally."""
        return bool(self._pending)

    def backlog_bytes(self) -> int:
        return self.inner.backlog_bytes()

    def can_send(self, size: int) -> bool:
        return self.inner.can_send(size)

    @property
    def closed(self) -> bool:
        # Deliver buffered packets before reporting the close.
        return self.inner.closed and not self._pending


class AsyncTransport(CooperativeTransport):
    """Awaitable receive over a cooperative transport.

    ``recv()`` returns the next bounded batch, yielding to the event
    loop first so sibling sessions interleave; when the underlying
    transport exposes a ``fileno()`` (real sockets), the adapter
    registers a reader with the running loop and sleeps until the
    socket is readable instead of spin-polling.
    """

    def __init__(self, inner: PacketTransport,
                 budget: int = DEFAULT_BUDGET,
                 poll_interval: float = 0.001) -> None:
        super().__init__(inner, budget)
        self._poll_interval = poll_interval
        self._readable: asyncio.Event | None = None
        self._reader_fd: int | None = None

    def _fileno(self) -> int | None:
        fileno = getattr(self.inner, "fileno", None)
        if callable(fileno):
            try:
                return fileno()
            except (OSError, ValueError):
                return None
        return None

    def _ensure_reader(self) -> asyncio.Event | None:
        """Register an add_reader wake-up if the transport has an fd."""
        if self._readable is not None:
            return self._readable
        fd = self._fileno()
        if fd is None:
            return None
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        loop.add_reader(fd, event.set)
        self._readable = event
        self._reader_fd = fd
        return event

    def detach(self) -> None:
        """Unregister the add_reader hook (call before closing the fd)."""
        if self._reader_fd is not None:
            try:
                asyncio.get_running_loop().remove_reader(self._reader_fd)
            except RuntimeError:
                pass  # loop already gone
            self._reader_fd = None
            self._readable = None

    async def recv(self) -> list[bytes]:
        """The next bounded batch; [] only when the transport closed."""
        await asyncio.sleep(0)  # always give siblings a turn first
        while True:
            batch = self.receive_packets()
            if batch or self.closed:
                return batch
            event = self._ensure_reader()
            if event is not None:
                event.clear()
                await event.wait()
            else:
                # Simulated paths have no fd to wait on: packets appear
                # when the session clock advances, so poll gently.
                await asyncio.sleep(self._poll_interval)

    async def send(self, packet: bytes) -> bool:
        """Send without blocking the loop (delegates; never waits)."""
        return self.send_packet(packet)
