"""The asyncio multi-session hosting server.

One :class:`SessionServer` process hosts hundreds of independent
sharing sessions: a :class:`~repro.sharing.server.registry.SessionRegistry`
keyed by join codes, one :class:`~repro.sharing.server.session.HostedSession`
per hosted AH with its own task group, and a signalling front door —
:meth:`join` runs the INVITE/answer handshake through the existing
SIP/SDP stack and resolves once media is wired, :meth:`leave` BYEs.

Time: all sessions share the server clock.  In the default virtual-time
mode a dedicated clock-pump task advances a
:class:`~repro.rtp.clock.SimulatedClock` by ``tick`` per scheduling
round, so a 200-session simulation runs as fast as the hardware allows;
pass ``realtime=True`` to pace against the wall clock instead
(``time.monotonic``).

Usage::

    async with SessionServer() as server:
        code = server.host()                 # returns the join code
        viewer = await server.join(code, "alice")
        ...
        await server.leave(code, "alice")    # last leave closes the session
"""

from __future__ import annotations

import asyncio
import random
import time

from ...health.admission import AdmissionControl, AdmissionDecision, OverloadConfig
from ...health.liveness import LivenessConfig
from ...health.supervisor import RestartPolicy, TaskSupervisor
from ...net.channel import ChannelConfig
from ...obs.instrumentation import NULL, resolve_obs
from ...rtp.clock import SimulatedClock
from ..config import SharingConfig
from ..participant import Participant
from .errors import (
    JoinFailed,
    ServerError,
    ServerOverloaded,
    SessionClosed,
    UnknownJoinCode,
)
from .registry import SessionRegistry
from .session import HostedSession, SessionState


class _MonotonicClock:
    """The wall clock, shaped like :class:`SimulatedClock` (read-only)."""

    @staticmethod
    def now() -> float:
        return time.monotonic()

    def __call__(self) -> float:
        return time.monotonic()


class JoinedParticipant:
    """The caller's handle on one joined participant."""

    __slots__ = ("server", "code", "name", "participant", "peer", "binding")

    def __init__(self, server: "SessionServer", code: str, name: str,
                 participant: Participant, peer) -> None:
        self.server = server
        self.code = code
        self.name = name
        self.participant = participant
        self.peer = peer
        self.binding = peer.binding

    async def leave(self) -> None:
        await self.server.leave(self.code, self.name)


class SessionServer:
    """Host many signalled sharing sessions in one asyncio process."""

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        tick: float = 0.02,
        realtime: bool = False,
        channel_config: ChannelConfig | None = None,
        rng: random.Random | None = None,
        obs=None,
        instrumentation=None,
        cooperative_budget: int | None = 256,
        join_timeout: float = 5.0,
        overload: OverloadConfig | None = None,
        restart_policy: RestartPolicy | None = None,
        liveness: LivenessConfig | None = None,
        supervise: bool = True,
    ) -> None:
        self.realtime = realtime
        if clock is not None:
            self.clock = clock
        else:
            self.clock = _MonotonicClock() if realtime else SimulatedClock()
        self.tick = tick
        self.channel_config = channel_config or ChannelConfig(delay=0.01)
        self._rng = rng or random.Random(2007)
        self.obs = resolve_obs(obs, instrumentation, "SessionServer")
        if self.obs is not NULL:
            self.obs.bind_clock(self.clock)
        self.registry = SessionRegistry(
            rng=random.Random(self._rng.randrange(1 << 30)), obs=self.obs
        )
        self.cooperative_budget = cooperative_budget
        #: Wall-clock bound on one join handshake.
        self.join_timeout = join_timeout
        #: Capacity checks + the degrade/shed overload ladder.
        self.admission = AdmissionControl(overload, instrumentation=self.obs)
        #: Crash-restart supervision shared by every hosted task group.
        self.supervisor = (
            TaskSupervisor(restart_policy, instrumentation=self.obs)
            if supervise
            else None
        )
        #: Silence thresholds handed to every hosted AH (None keeps
        #: eviction off, the historical behaviour).
        self.liveness_config = liveness
        self._load_level = "ok"
        self._running = False
        self._clock_task: asyncio.Task | None = None
        self._c_joins = self.obs.counter("server.joins")
        self._c_join_failures = self.obs.counter("server.join_failures")
        self._c_leaves = self.obs.counter("server.leaves")
        self._h_join_wall = self.obs.histogram("server.join_wall_seconds")

    # -- Lifecycle ----------------------------------------------------------

    async def start(self) -> "SessionServer":
        if self._running:
            return self
        self._running = True
        if not self.realtime:
            self._clock_task = asyncio.create_task(
                self._clock_pump(), name="server-clock"
            )
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        leftovers: list[asyncio.Task] = []
        for _code, session in list(self.registry):
            leftovers.extend(session._tasks)
            session.close(reason="server_stop")
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)
        if self._clock_task is not None:
            self._clock_task.cancel()
            try:
                await self._clock_task
            except asyncio.CancelledError:
                pass
            self._clock_task = None
        await asyncio.sleep(0)  # let cancelled session tasks unwind

    async def __aenter__(self) -> "SessionServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _clock_pump(self) -> None:
        """Advance shared virtual time once per scheduling round.

        ``sleep(0)`` parks us at the back of the ready queue, so every
        session task gets one iteration per clock tick — uniform
        progress without per-session timers.
        """
        while self._running:
            self.clock.advance(self.tick)
            await asyncio.sleep(0)

    # -- Overload protection ------------------------------------------------

    def participant_count(self) -> int:
        """Participants across every hosted session and relay."""
        return sum(
            entry.participant_count for _code, entry in self.registry
        )

    def session_count(self) -> int:
        """Hosted entries (sessions + relays) currently registered."""
        return sum(1 for _ in self.registry)

    @property
    def load_level(self) -> str:
        """Where the server sits on the ladder: ok/degraded/overloaded."""
        return self._load_level

    def _admit_session(self) -> None:
        current = self.session_count()
        if self.admission.admit_session(current) is AdmissionDecision.SHED:
            raise ServerOverloaded(
                "session", current, self.admission.config.max_sessions
            )

    def _admit_join(self) -> None:
        current = self.participant_count()
        if self.admission.admit_join(current) is AdmissionDecision.SHED:
            raise ServerOverloaded(
                "participant", current, self.admission.config.max_participants
            )

    def _refresh_load(self) -> str:
        """Re-evaluate the ladder; (un)degrade relay tiers on changes.

        Degradation scales every hosted relay's downstream token-bucket
        tiers by ``degrade_rate_factor`` — viewers get a slower picture
        but stay connected; returning below ``degrade_at`` restores the
        configured tiers.  Idempotent per level, so calling after every
        join/leave is cheap.
        """
        level = self.admission.load_level(self.participant_count())
        if level == self._load_level:
            return level
        previous, self._load_level = self._load_level, level
        factor = (
            1.0 if level == "ok"
            else self.admission.config.degrade_rate_factor
        )
        for _code, entry in self.registry:
            node = getattr(entry, "relay", None)
            if node is not None:
                node.scale_rate_tiers(factor)
        if self.obs.enabled:
            self.obs.event(
                "server.load_level", level=level, previous=previous
            )
        return level

    def _entry_closed(self, code: str) -> None:
        """on_close hook: unregister, then re-evaluate the ladder."""
        self.registry.remove(code)
        self._refresh_load()

    # -- Hosting ------------------------------------------------------------

    def host(
        self,
        code: str | None = None,
        config: SharingConfig | None = None,
        screen_width: int = 1280,
        screen_height: int = 1024,
        channel_config: ChannelConfig | None = None,
        rate_bps: int | None = None,
        close_when_empty: bool = True,
    ) -> str:
        """Create and start a hosted session; returns its join code.

        ``close_when_empty`` unregisters the session after the last
        participant leaves (the default lobby behaviour); pass False
        for long-lived rooms with stable codes.
        """
        if not self._running:
            raise ServerError("server not started (use `async with` or start())")
        self._admit_session()
        # host() runs synchronously on the loop, so issuing the code and
        # registering below cannot interleave with another host().
        issued = (
            self.registry.normalise(code) if code is not None
            else self.registry.issue_code()
        )
        session = HostedSession(
            issued,
            self.clock,
            config=config,
            screen_width=screen_width,
            screen_height=screen_height,
            channel_config=channel_config or self.channel_config,
            rate_bps=rate_bps,
            rng=random.Random(self._rng.randrange(1 << 30)),
            obs=self.obs,
            cooperative_budget=self.cooperative_budget,
            close_when_empty=close_when_empty,
            tick=self.tick,
            liveness=self.liveness_config,
            supervisor=self.supervisor,
        )
        self.registry.register(session, issued)
        session.on_close = self._entry_closed
        session.start(realtime=self.realtime)
        if self.obs.enabled:
            self.obs.event("server.session_hosted", session=issued)
        return issued

    def session(self, code: str) -> HostedSession:
        """The hosted session behind ``code`` (:class:`UnknownJoinCode`)."""
        return self.registry.lookup(code)

    # -- Relay hosting -------------------------------------------------------

    def host_relay(
        self,
        parent_code: str,
        code: str | None = None,
        relay_id: str | None = None,
        channel_config: ChannelConfig | None = None,
        rate_bps: int | None = None,
        relay_config=None,
        close_when_empty: bool = False,
    ) -> str:
        """Hang a relay under ``parent_code``; returns the relay's code.

        ``parent_code`` may name a hosted session (the relay becomes
        one ``is_group`` destination of its AH) or another hosted relay
        (cascading one level deeper).  The relay registers in the same
        join-code namespace and is pumped by its own task; viewers then
        join it with :meth:`join_relay`.  ``rate_bps`` puts the whole
        subtree inside one token-bucket tier at the upstream hop.
        """
        # Imported here: repro.relay imports this package for the
        # HostedSession duck-type contract.
        from ...relay.hosted import attach_hosted_relay

        if not self._running:
            raise ServerError("server not started (use `async with` or start())")
        self._admit_session()
        parent = self.registry.lookup(parent_code)
        issued = (
            self.registry.normalise(code) if code is not None
            else self.registry.issue_code()
        )
        hosted = attach_hosted_relay(
            parent,
            issued,
            self.clock,
            relay_id=relay_id,
            channel_config=channel_config or self.channel_config,
            rate_bps=rate_bps,
            relay_config=relay_config,
            obs=self.obs,
            tick=self.tick,
            close_when_empty=close_when_empty,
            rng=random.Random(self._rng.randrange(1 << 30)),
            supervisor=self.supervisor,
        )
        self.registry.register(hosted, issued)
        hosted.on_close = self._entry_closed
        hosted.start(realtime=self.realtime)
        if self.obs.enabled:
            self.obs.event(
                "server.relay_hosted", relay=issued, parent=parent.code
            )
        return issued

    def relay(self, code: str):
        """The :class:`~repro.relay.hosted.HostedRelay` behind ``code``."""
        from ...relay.hosted import HostedRelay

        entry = self.registry.lookup(code)
        if not isinstance(entry, HostedRelay):
            raise ServerError(f"join code {code!r} names a session, not a relay")
        return entry

    def join_relay(self, code: str, name: str, **kwargs) -> Participant:
        """Wire ``name``'s media through the relay behind ``code``.

        Relays are media-plane endpoints: no SIP handshake runs (the
        root session's front door owns signalling), so this is
        synchronous — the returned participant converges as the
        server's pumps run.  Raises :class:`ServerOverloaded` when the
        participant capacity is exhausted.
        """
        self._admit_join()
        participant = self.relay(code).join(name, **kwargs)
        self._refresh_load()
        return participant

    def leave_relay(self, code: str, name: str) -> None:
        """Drop ``name`` from the relay behind ``code``; idempotent."""
        try:
            hosted = self.relay(code)
        except UnknownJoinCode:
            return
        hosted.leave(name)
        self._refresh_load()

    # -- The signalling front door ------------------------------------------

    async def join(
        self,
        code: str,
        name: str,
        prefer_transport: str = "tcp",
        timeout: float | None = None,
    ) -> JoinedParticipant:
        """Join ``name`` to the session behind ``code``.

        Runs the full INVITE → negotiate → answer → ACK handshake via
        the session's signalling pump and resolves once the media path
        is wired.  Raises :class:`UnknownJoinCode`,
        :class:`DuplicateParticipant`, or :class:`JoinFailed` (covering
        the BYE-during-join race and handshake timeouts).  Raises
        :class:`ServerOverloaded` when the participant capacity is
        exhausted — capacity protects the sessions already admitted.
        """
        self._admit_join()
        session = self.session(code)
        started = time.monotonic()
        peer = session.add_peer(name, prefer_transport)  # may raise
        done: asyncio.Future = asyncio.get_running_loop().create_future()

        def watcher(event: str, call) -> None:
            if not done.done():
                done.set_result(event)

        call = session.core.call_for(name)
        assert call is not None
        call.watchers.append(watcher)
        try:
            event = await asyncio.wait_for(
                self._race_close(session, done),
                timeout if timeout is not None else self.join_timeout,
            )
        except asyncio.TimeoutError:
            self._c_join_failures.inc()
            session.core.abort(name)
            session.drop_peer(name)
            raise JoinFailed(code, name, "handshake timeout") from None
        if event != "established":
            self._c_join_failures.inc()
            session.drop_peer(name)
            reason = (
                "session closed during join"
                if event == "closed" else "terminated during handshake"
            )
            raise JoinFailed(code, name, reason)
        participant = session.core.participant_for(name)
        assert participant is not None
        self._c_joins.inc()
        self._refresh_load()
        self._h_join_wall.observe(time.monotonic() - started)
        if self.obs.enabled:
            self.obs.event("server.join", session=session.code, peer=name)
        return JoinedParticipant(self, session.code, name, participant, peer)

    @staticmethod
    async def _race_close(session: HostedSession, done: asyncio.Future) -> str:
        """Resolve with the call outcome or the session's close."""
        closed = asyncio.ensure_future(session.closed_event.wait())
        try:
            await asyncio.wait(
                [done, closed], return_when=asyncio.FIRST_COMPLETED
            )
            if done.done():
                return done.result()
            return "closed"
        finally:
            closed.cancel()
            done.cancel()

    async def leave(self, code: str, name: str) -> None:
        """BYE ``name`` out of the session (server-initiated hang-up)."""
        try:
            session = self.session(code)
        except UnknownJoinCode:
            return  # already gone: leave is idempotent
        session.core.hang_up(name)
        session.drop_peer(name)
        self._c_leaves.inc()
        self._refresh_load()
        if self.obs.enabled:
            self.obs.event("server.leave", session=session.code, peer=name)
        # Let the session's pumps deliver the BYE and run cleanup.
        await asyncio.sleep(0)
        session._maybe_close_when_empty()

    def close_session(self, code: str) -> None:
        """Tear a whole session down (host hangs up the meeting)."""
        self.session(code).close(reason="host_closed")

    # -- Introspection ------------------------------------------------------

    def codes(self) -> list[str]:
        return self.registry.codes()

    def sessions(self) -> dict[str, dict]:
        """The ``server.sessions`` snapshot: one row per hosted session."""
        return {
            code: session.snapshot()
            for code, session in self.registry
            if isinstance(session, HostedSession)
        }

    def relays(self) -> dict[str, dict]:
        """The ``server.relays`` snapshot: one row per hosted relay."""
        from ...relay.hosted import HostedRelay

        return {
            code: entry.snapshot()
            for code, entry in self.registry
            if isinstance(entry, HostedRelay)
        }

    def health(self) -> dict:
        """The server-tier health snapshot (load, shedding, restarts)."""
        row = {
            "load_level": self._load_level,
            "sessions": self.session_count(),
            "participants": self.participant_count(),
            **self.admission.snapshot(),
        }
        if self.supervisor is not None:
            row["supervisor"] = self.supervisor.snapshot()
        return row

    async def until(self, predicate, timeout: float = 10.0) -> None:
        """Run the server until ``predicate()`` is true.

        The await itself is what lets the session tasks run; tests and
        benchmarks use this instead of hand-rolled pump loops.

        ``timeout`` is measured against the *server clock* — virtual
        seconds in the default mode (however fast the hardware pumps
        them), wall seconds in realtime mode.  A wall-clock backstop of
        ``max(timeout, 60)`` seconds still fires when virtual time is
        parked (server not started, clock pump cancelled) so a wedged
        predicate cannot spin forever.
        """
        deadline = self.clock.now() + timeout
        wall_deadline = time.monotonic() + max(timeout, 60.0)
        while not predicate():
            if self.clock.now() >= deadline:
                raise asyncio.TimeoutError(
                    "predicate not reached within timeout"
                )
            if time.monotonic() > wall_deadline:
                raise asyncio.TimeoutError(
                    "predicate not reached within wall-clock backstop "
                    "(virtual clock parked?)"
                )
            await asyncio.sleep(0)
