"""Error taxonomy for the multi-session hosting server.

All server-level failures derive from :class:`ServerError` so callers
can catch the family; the leaf classes carry the join code / name that
failed, mirroring the strict taxonomy the wire decoders use
(:mod:`repro.core.errors`).
"""

from __future__ import annotations


class ServerError(Exception):
    """Base class for session-server failures."""


class UnknownJoinCode(ServerError):
    """The join code names no hosted session (never issued, or closed)."""

    def __init__(self, code: str) -> None:
        super().__init__(f"unknown join code {code!r}")
        self.code = code


class DuplicateJoinCode(ServerError):
    """An explicitly requested join code is already registered."""

    def __init__(self, code: str) -> None:
        super().__init__(f"join code {code!r} already registered")
        self.code = code


class DuplicateParticipant(ServerError):
    """A participant name is already present (or joining) in a session."""

    def __init__(self, code: str, name: str) -> None:
        super().__init__(
            f"participant {name!r} already in session {code!r}"
        )
        self.code = code
        self.name = name


class SessionClosed(ServerError):
    """The target session closed before (or while) the operation ran."""

    def __init__(self, code: str, detail: str = "") -> None:
        message = f"session {code!r} is closed"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.code = code


class ServerOverloaded(ServerError):
    """Admission control refused new work: a capacity limit is reached.

    Shedding *new* sessions/joins is the overload ladder's last rung —
    it protects every session already admitted.  Existing participants
    are never disconnected by overload; at most their relay rate tiers
    are degraded first.
    """

    def __init__(self, what: str, current: int, limit: int) -> None:
        super().__init__(
            f"server overloaded: {what} capacity reached "
            f"({current}/{limit})"
        )
        self.what = what
        self.current = current
        self.limit = limit


class JoinFailed(ServerError):
    """Signalling toward the session ended without establishing media.

    Raised for BYE-during-join races, rejected INVITEs, and joins that
    outlive their timeout.
    """

    def __init__(self, code: str, name: str, reason: str) -> None:
        super().__init__(
            f"join of {name!r} to session {code!r} failed: {reason}"
        )
        self.code = code
        self.name = name
        self.reason = reason
