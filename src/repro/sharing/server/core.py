"""The per-session engine shared by the sync service and async server.

One :class:`SessionCore` is the signalling-plus-media machinery for a
single hosted Application Host: it owns the SIP endpoints, the
service-side :class:`~repro.sharing.signalling.SignallingBinding`
queues, the negotiated media wiring, and the participant lifecycle.
The synchronous :class:`~repro.sharing.service.SharingService` is a
thin single-session wrapper over this class; the asyncio
:class:`~repro.sharing.server.SessionServer` hosts hundreds of them,
each driven by its own task group.

The split keeps every method here non-blocking and clock-agnostic:

* :meth:`pump_signalling` drains queued SIP both ways (bounded work);
* :meth:`media_round` runs one capture→distribute→receive round
  *without* advancing the clock — the driver owns time (the sync
  wrapper advances its private clock; the server advances one shared
  clock for all sessions);
* :meth:`poll_rtcp` gives reports a chance to go out between media
  rounds (RTCP interval logic lives in the reporters themselves).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from ...obs.instrumentation import NULL, resolve_obs
from ...sdp import build_ah_offer, negotiate, parse_sdp
from ...sip.dialog import DialogState, SipEndpoint
from ..ah import ApplicationHost
from ..participant import Participant
from ..signalling import SignallingBinding
from ..transport import DatagramTransport, StreamTransport
from .aio import CooperativeTransport


@dataclass(slots=True)
class CoreCall:
    """One participant's signalling + media state."""

    sip: SipEndpoint
    binding: SignallingBinding
    participant: Participant | None = None
    invited_at: float = 0.0
    established_at: float | None = None
    transport_kind: str = ""
    #: Observers notified on answer/bye (the server's join futures).
    watchers: list = field(default_factory=list)


class SessionCore:
    """Signalling front door + media wiring for one hosted AH."""

    def __init__(
        self,
        ah: ApplicationHost,
        clock,
        uri: str = "sip:ah@host",
        channel_config: ChannelConfig | None = None,
        rng: random.Random | None = None,
        rate_bps: int | None = None,
        obs=None,
        instrumentation=None,
        cooperative_budget: int | None = None,
    ) -> None:
        if not callable(getattr(clock, "now", None)):
            raise TypeError("SessionCore needs a clock with now()")
        self.ah = ah
        self.clock = clock
        self.uri = uri
        self.channel_config = channel_config or ChannelConfig(delay=0.01)
        self._rng = rng or random.Random(7)
        #: Token-bucket tier attached to UDP participants (section 4.3).
        self.rate_bps = rate_bps
        obs = resolve_obs(obs, instrumentation, type(self).__name__,
                          default=None)
        self.obs = obs if obs is not None else getattr(ah, "obs", None)
        #: Per-drain packet bound applied to negotiated media transports
        #: (None = unbounded, the historical synchronous behaviour).
        self.cooperative_budget = cooperative_budget
        self._calls: dict[str, CoreCall] = {}
        #: Completed joins over the core's lifetime (distinct from the
        #: ``session.joins`` counter, which may be shared/labelled).
        self.joins_completed = 0
        m_obs = self.obs if self.obs is not None else NULL
        self._h_join = m_obs.histogram("session.join_seconds")
        self._c_joins = m_obs.counter("session.joins")
        self._c_leaves = m_obs.counter("session.leaves")

    # -- Inviting -----------------------------------------------------------

    def invite(self, name: str, remote=None,
               binding: SignallingBinding | None = None) -> SignallingBinding:
        """Start signalling toward a remote party; returns the binding.

        ``remote`` may be a :class:`~repro.sip.dialog.SipEndpoint` (it
        is attached to the binding so its answers reach this core), a
        bare SIP URI string (attach an endpoint to the returned binding
        yourself), or None (the URI is derived from ``name``).  The
        core owns the signalling queues either way — callers never
        hand-wire inboxes.
        """
        if name in self._calls:
            raise ValueError(f"call {name!r} already exists")
        if binding is None:
            binding = SignallingBinding(name)
        if isinstance(remote, SipEndpoint):
            remote_uri = remote.uri
            if binding.remote is None:
                binding.attach_remote(remote)
        elif remote is None:
            remote_uri = f"sip:{name}@remote"
        else:
            remote_uri = str(remote)
        endpoint = SipEndpoint(
            self.uri,
            send=binding.send_to_remote,
            rng=self._rng,
            on_established=lambda sdp, n=name: self._on_answer(n, sdp),
            on_terminated=lambda n=name: self._on_bye(n),
        )
        call = CoreCall(endpoint, binding, invited_at=self.clock.now())
        self._calls[name] = call
        endpoint.invite(remote_uri, build_ah_offer().to_string())
        if self.obs is not None and self.obs.enabled:
            self.obs.event("session.invite", peer=name)
        return binding

    def pump_signalling(self) -> None:
        """Deliver queued remote→core SIP messages to our endpoints.

        A delivered BYE tears the call down, which mutates the call
        tables — iterate over a snapshot, and stop a call's drain the
        moment it disappears.
        """
        for name, call in list(self._calls.items()):
            def deliver(text: str, sip=call.sip, n=name) -> bool:
                sip.receive(text)
                return n in self._calls  # torn down mid-drain → stop
            call.binding.drain_to_service(deliver)

    # -- Media wiring -------------------------------------------------------

    def _wrap(self, transport):
        if self.cooperative_budget is None:
            return transport
        return CooperativeTransport(transport, self.cooperative_budget)

    def _on_answer(self, name: str, answer_sdp: str) -> None:
        """Participant answered: build the negotiated media path."""
        agreed = negotiate(parse_sdp(answer_sdp)) if answer_sdp.strip() else None
        transport_kind = agreed.transport if agreed else "tcp"
        link_obs = self.obs.scoped(peer=name) if self.obs is not None else None
        if transport_kind == "udp":
            link = duplex_lossy(
                self.channel_config, self.clock.now, instrumentation=link_obs
            )
            ah_transport = DatagramTransport(link.forward, link.backward)
            p_transport = DatagramTransport(link.backward, link.forward)
            self.ah.add_participant(
                name, self._wrap(ah_transport), rate_bps=self.rate_bps
            )
        else:
            link = duplex_reliable(
                self.channel_config, self.clock.now, instrumentation=link_obs
            )
            ah_transport = StreamTransport(link.forward, link.backward)
            p_transport = StreamTransport(link.backward, link.forward)
            self.ah.add_participant(name, self._wrap(ah_transport))
        participant = Participant(
            name, self._wrap(p_transport), clock=self.clock,
            config=self.ah.config, obs=self.obs,
        )
        participant.join()
        call = self._calls[name]
        call.participant = participant
        call.transport_kind = transport_kind
        call.established_at = self.clock.now()
        self.joins_completed += 1
        self._c_joins.inc()
        self._h_join.observe(call.established_at - call.invited_at)
        if self.obs is not None and self.obs.enabled:
            self.obs.event(
                "session.established", peer=name, transport=transport_kind
            )
        for watcher in call.watchers:
            watcher("established", call)

    def _on_bye(self, name: str) -> None:
        self.ah.remove_participant(name)
        call = self._calls.pop(name, None)
        if call is not None:
            call.participant = None
            self._c_leaves.inc()
            if self.obs is not None and self.obs.enabled:
                self.obs.event("session.bye", peer=name)
            for watcher in call.watchers:
                watcher("terminated", call)

    # -- Session control ----------------------------------------------------

    def hang_up(self, name: str) -> None:
        call = self._calls.get(name)
        if call is not None and call.sip.state is DialogState.ESTABLISHED:
            call.sip.bye()  # on_terminated removes the participant

    def hang_up_all(self) -> None:
        for name in list(self._calls):
            self.hang_up(name)

    def abort(self, name: str) -> None:
        """Drop a call whether or not its handshake ever completed.

        Established calls get a proper BYE; mid-handshake calls are
        simply forgotten (the join-timeout path), notifying watchers.
        """
        call = self._calls.get(name)
        if call is None:
            return
        if call.sip.state is DialogState.ESTABLISHED:
            self.hang_up(name)
            return
        self._calls.pop(name, None)
        self.ah.remove_participant(name)  # no-op when media never wired
        for watcher in call.watchers:
            watcher("aborted", call)

    def participant_for(self, name: str) -> Participant | None:
        call = self._calls.get(name)
        return call.participant if call else None

    def binding_for(self, name: str) -> SignallingBinding | None:
        call = self._calls.get(name)
        return call.binding if call else None

    def call_for(self, name: str) -> CoreCall | None:
        return self._calls.get(name)

    def active_calls(self) -> list[str]:
        return [
            name for name, call in self._calls.items()
            if call.sip.state is DialogState.ESTABLISHED
        ]

    def call_names(self) -> list[str]:
        """Every call, established or still signalling."""
        return list(self._calls)

    # -- Driving ------------------------------------------------------------

    def media_round(self, dt: float) -> None:
        """One capture→distribute→receive round; the caller owns time."""
        self.ah.advance(dt)
        for call in list(self._calls.values()):
            if call.participant is not None:
                call.participant.process_incoming()

    def poll_liveness(self) -> list[str]:
        """Evict dead-silent participants and drop their calls.

        The AH's tracker decides who is dead (no packets past the
        configured threshold); this layer reclaims the signalling
        state.  A dead peer cannot complete a BYE handshake, so the
        call is dropped directly and its watchers see ``"evicted"``.
        No-op when the AH has no liveness tracker configured.
        """
        evicted = self.ah.poll_liveness()
        for name in evicted:
            call = self._calls.pop(name, None)
            if call is not None:
                call.participant = None
                self._c_leaves.inc()
                if self.obs is not None and self.obs.enabled:
                    self.obs.event("session.evicted", peer=name)
                for watcher in call.watchers:
                    watcher("evicted", call)
        return evicted

    def poll_rtcp(self) -> None:
        """Give AH-side RTCP reports a send opportunity.

        The reporters rate-limit themselves (randomised RTCP interval),
        so polling between media rounds is cheap and idempotent.
        """
        for session in self.ah.sessions.values():
            if session.reporter is not None:
                report = session.reporter.poll()
                if report is not None:
                    session.transport.send_packet(report)

    def advance(self, dt: float) -> None:
        """One synchronous service round: signalling, media, participants.

        Preserved verbatim from the historical ``SharingService`` loop
        (pump → AH advance → clock advance → participant receive) so
        single-session callers keep deterministic behaviour.
        """
        self.pump_signalling()
        self.ah.advance(dt)
        self.clock.advance(dt)
        for call in list(self._calls.values()):
            if call.participant is not None:
                call.participant.process_incoming()
        self.poll_liveness()
