"""One hosted sharing session: an AH, its core, and its task group.

A :class:`HostedSession` is what a join code resolves to.  It owns the
:class:`~repro.sharing.ah.ApplicationHost`, the per-session
:class:`~repro.sharing.server.core.SessionCore`, and — once the server
starts it — three asyncio tasks:

* the **signalling pump** drains SIP both ways and auto-answers the
  remote peers the front door created;
* the **media pump** runs capture→distribute→receive rounds, computing
  ``dt`` from the server clock so sessions tolerate uneven scheduling;
* the **RTCP timer** polls the reporters at a coarser cadence so
  reports flow even while media is idle.

Every task iteration ends by yielding to the event loop, so hundreds
of sessions interleave fairly and per-session work never blocks the
process.
"""

from __future__ import annotations

import asyncio
import enum
import random

from ...health.liveness import LivenessConfig
from ...health.supervisor import TaskSupervisor
from ...obs.instrumentation import NULL
from ..ah import ApplicationHost
from ..config import SharingConfig
from ..signalling import RemotePeer, SignallingBinding
from .core import SessionCore
from .errors import DuplicateParticipant, SessionClosed


class SessionState(enum.Enum):
    OPEN = "open"
    CLOSING = "closing"
    CLOSED = "closed"


class HostedSession:
    """AH + core + task group behind one join code."""

    def __init__(
        self,
        code: str,
        clock,
        config: SharingConfig | None = None,
        screen_width: int = 1280,
        screen_height: int = 1024,
        channel_config=None,
        rate_bps: int | None = None,
        rng: random.Random | None = None,
        obs=None,
        cooperative_budget: int | None = 256,
        close_when_empty: bool = True,
        tick: float = 0.02,
        rtcp_interval: float = 0.25,
        liveness: LivenessConfig | None = None,
        supervisor: TaskSupervisor | None = None,
    ) -> None:
        self.code = code
        self.clock = clock
        #: Session-scoped facade: every metric/event below carries
        #: ``session=<code>``.
        self.obs = (obs if obs is not None else NULL).scoped(session=code)
        self._rng = rng or random.Random(hash(code) & 0xFFFF)
        #: Crash-restart supervision for the pump tasks (None = bare
        #: tasks, the historical behaviour).
        self.supervisor = supervisor
        self.ah = ApplicationHost(
            screen_width=screen_width,
            screen_height=screen_height,
            config=config,
            clock=clock,
            rng=self._rng,
            obs=self.obs,
            liveness=liveness,
        )
        self.core = SessionCore(
            self.ah,
            clock,
            uri=f"sip:ah-{code}@server",
            channel_config=channel_config,
            rng=self._rng,
            rate_bps=rate_bps,
            obs=self.obs,
            cooperative_budget=cooperative_budget,
        )
        self.state = SessionState.OPEN
        self.close_when_empty = close_when_empty
        self.tick = tick
        self.rtcp_interval = rtcp_interval
        self.created_at = clock.now()
        #: Remote peers the front door manages, keyed by participant name.
        self.peers: dict[str, RemotePeer] = {}
        self._tasks: list[asyncio.Task] = []
        self.closed_event = asyncio.Event()
        self.on_close = None  # set by the server: callback(code)
        self._last_media = clock.now()
        self._last_rtcp = clock.now()

    # -- Front-door participant lifecycle -----------------------------------

    def add_peer(self, name: str, prefer_transport: str = "tcp") -> RemotePeer:
        """Create the remote side of one join and start its INVITE."""
        if self.state is not SessionState.OPEN:
            raise SessionClosed(self.code)
        if name in self.peers or self.core.call_for(name) is not None:
            raise DuplicateParticipant(self.code, name)
        binding = SignallingBinding(name)
        peer = RemotePeer(
            f"sip:{name}@{self.code.lower()}",
            binding,
            prefer_transport=prefer_transport,
            rng=random.Random(self._rng.randrange(1 << 30)),
        )
        self.peers[name] = peer
        self.core.invite(name, peer.endpoint, binding=binding)
        return peer

    def drop_peer(self, name: str) -> None:
        self.peers.pop(name, None)

    @property
    def participant_count(self) -> int:
        return len(self.core.call_names())

    # -- The task group -----------------------------------------------------

    def start(self, *, realtime: bool = False) -> list[asyncio.Task]:
        """Spawn the session's tasks on the running loop.

        With a supervisor, each pump runs inside a crash-restart loop:
        an uncaught exception restarts the pump with backoff instead of
        silently wedging the session, and exhausting the restart budget
        closes the session cleanly (``reason="supervisor_give_up"``).
        """
        if self._tasks:
            raise RuntimeError(f"session {self.code} already started")
        name = f"session-{self.code}"
        pumps = [
            (f"{name}-signalling", self._signalling_pump),
            (f"{name}-media", lambda: self._media_pump(realtime)),
            (f"{name}-rtcp", lambda: self._rtcp_timer(realtime)),
        ]
        if self.ah.encode_pool is not None:
            # The pool self-heals on use, but the watch loop respawns
            # crashed workers during idle gaps too; it rides the same
            # supervision as the pumps.
            pumps.append((f"{name}-encode-pool", self._pool_watch))
        if self.supervisor is not None:
            give_up = lambda exc: self.close(  # noqa: E731
                reason="supervisor_give_up"
            )
            self._tasks = [
                self.supervisor.supervise(
                    factory, task_name, on_give_up=give_up
                )
                for task_name, factory in pumps
            ]
        else:
            self._tasks = [
                asyncio.create_task(factory(), name=task_name)
                for task_name, factory in pumps
            ]
        return self._tasks

    async def _signalling_pump(self) -> None:
        while self.state is SessionState.OPEN:
            self.core.pump_signalling()
            departed = []
            for name, peer in self.peers.items():
                peer.pump()
                if peer.terminated and self.core.call_for(name) is None:
                    departed.append(name)
            for name in departed:
                self.drop_peer(name)
            self._maybe_close_when_empty()
            await asyncio.sleep(0)

    async def _media_pump(self, realtime: bool) -> None:
        while self.state is SessionState.OPEN:
            now = self.clock.now()
            dt = now - self._last_media
            self._last_media = now
            # dt=0 rounds still run: they drain transports mid-handshake
            # and flush the initial full sync while the clock is parked.
            self.core.media_round(dt)
            # Silence-driven eviction (no-op unless liveness is
            # configured); the signalling pump notices the emptied
            # session and applies close_when_empty.
            self.core.poll_liveness()
            if realtime:
                await asyncio.sleep(self.tick)
            else:
                await asyncio.sleep(0)

    async def _pool_watch(self) -> None:
        pool = self.ah.encode_pool
        while self.state is SessionState.OPEN and not pool.closed:
            pool.ensure_workers()
            await asyncio.sleep(0.5)

    async def _rtcp_timer(self, realtime: bool) -> None:
        while self.state is SessionState.OPEN:
            now = self.clock.now()
            if now - self._last_rtcp >= self.rtcp_interval:
                self._last_rtcp = now
                self.core.poll_rtcp()
            if realtime:
                await asyncio.sleep(self.rtcp_interval)
            else:
                await asyncio.sleep(0)

    def _maybe_close_when_empty(self) -> None:
        if (
            self.close_when_empty
            # Only a session that once had an *established* participant
            # closes on empty; failed handshakes don't count.
            and self.core.joins_completed > 0
            and self.state is SessionState.OPEN
            and not self.core.call_names()
        ):
            self.close(reason="empty")

    # -- Teardown -----------------------------------------------------------

    def close(self, reason: str = "closed") -> None:
        """Stop the session: BYE every call, cancel tasks, unregister.

        Idempotent; safe to call from inside one of the session's own
        tasks (tasks observe the state flip and exit on their next
        iteration; cross-task cancellation happens on the server's
        close path).
        """
        if self.state is not SessionState.OPEN:
            return
        self.state = SessionState.CLOSING
        self.core.hang_up_all()
        # Deliver the BYEs so in-flight joiners learn they were raced.
        for peer in list(self.peers.values()):
            try:
                peer.pump()
            except Exception:
                pass
        self.peers.clear()
        self.ah.close()  # terminates the encode pool's workers + shm
        self.state = SessionState.CLOSED
        if self.obs.enabled:
            self.obs.event("server.session_closed", reason=reason)
        self.closed_event.set()
        for task in self._tasks:
            if task is not asyncio.current_task():
                task.cancel()
        self._tasks = []
        if self.on_close is not None:
            self.on_close(self.code)

    def snapshot(self) -> dict:
        """One JSON-friendly row for ``SessionServer.sessions()``."""
        row = {
            "code": self.code,
            "state": self.state.value,
            "participants": sorted(self.core.call_names()),
            "established": sorted(self.core.active_calls()),
            "uptime": self.clock.now() - self.created_at,
            "bytes_sent": self.ah.total_bytes_sent(),
            "packets_sent": self.ah.total_packets_sent(),
        }
        if self.ah.liveness is not None:
            row["liveness"] = self.ah.liveness.snapshot()
        return row
