"""The sharing system: Application Host, participants, and plumbing."""

from .ah import AhSession, ApplicationHost
from .capture import (
    CapturedFrame,
    CapturePipeline,
    MoveOp,
    PointerOp,
    UpdateOp,
    window_manager_info,
)
from .config import PT_HIP, PT_REMOTING, PointerMode, SharingConfig
from .encoder import FrameEncoder, StampedPacket
from .events import EventInjector, EventStats
from .layout import (
    CompactedLayout,
    GroupedLayout,
    LayoutPolicy,
    OriginalLayout,
    ShiftedLayout,
)
from .participant import LocalWindow, Participant
from .retransmit import RetransmitCache
from .sender import UpdateScheduler
from .service import SharingService
from .transport import (
    DatagramTransport,
    MulticastReceiverTransport,
    MulticastSenderTransport,
    PacketTransport,
    StreamTransport,
    TcpSocketTransport,
    UdpSocketTransport,
    is_rtcp,
)

__all__ = [
    "AhSession",
    "ApplicationHost",
    "CapturePipeline",
    "CapturedFrame",
    "CompactedLayout",
    "DatagramTransport",
    "EventInjector",
    "EventStats",
    "FrameEncoder",
    "GroupedLayout",
    "LayoutPolicy",
    "LocalWindow",
    "MoveOp",
    "MulticastReceiverTransport",
    "MulticastSenderTransport",
    "OriginalLayout",
    "PT_HIP",
    "PT_REMOTING",
    "PacketTransport",
    "Participant",
    "PointerMode",
    "PointerOp",
    "RetransmitCache",
    "SharingConfig",
    "SharingService",
    "ShiftedLayout",
    "StampedPacket",
    "StreamTransport",
    "TcpSocketTransport",
    "UdpSocketTransport",
    "UpdateOp",
    "UpdateScheduler",
    "is_rtcp",
    "window_manager_info",
]
