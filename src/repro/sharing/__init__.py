"""The sharing system: Application Host, participants, and plumbing.

The curated public surface (see ``docs/API.md``):

* :func:`host` / :func:`join` — the convenience factories: build a
  SIP-signalled single-session service and attach participants to it
  without deep-importing ``ah`` / ``participant`` / ``transport``.
* :class:`SharingService` — the synchronous single-session service.
* :class:`~repro.sharing.server.SessionServer` — the asyncio
  multi-session hosting server (``repro.sharing.server``).
* :class:`SignallingBinding` / :class:`RemotePeer` — service-owned
  signalling plumbing.
* The building blocks (:class:`ApplicationHost`, :class:`Participant`,
  transports, layouts, codec config) remain exported for advanced
  composition.
"""

from __future__ import annotations

import random

from ..net.channel import ChannelConfig
from ..rtp.clock import SimulatedClock
from .ah import AhSession, ApplicationHost
from .capture import (
    CapturedFrame,
    CapturePipeline,
    MoveOp,
    PointerOp,
    UpdateOp,
    window_manager_info,
)
from .config import PT_HIP, PT_REMOTING, PointerMode, SharingConfig
from .encoder import FrameEncoder, StampedPacket
from .events import EventInjector, EventStats
from .layout import (
    CompactedLayout,
    GroupedLayout,
    LayoutPolicy,
    OriginalLayout,
    ShiftedLayout,
)
from .participant import LocalWindow, Participant
from .retransmit import RetransmitCache
from .sender import UpdateScheduler
from .server import SessionServer
from .service import SharingService
from .signalling import RemotePeer, SignallingBinding
from .transport import (
    DatagramTransport,
    MulticastReceiverTransport,
    MulticastSenderTransport,
    PacketTransport,
    StreamTransport,
    TcpSocketTransport,
    UdpSocketTransport,
    is_rtcp,
)

__all__ = [
    "AhSession",
    "ApplicationHost",
    "CapturePipeline",
    "CapturedFrame",
    "CompactedLayout",
    "DatagramTransport",
    "EventInjector",
    "EventStats",
    "FrameEncoder",
    "GroupedLayout",
    "LayoutPolicy",
    "LocalWindow",
    "MoveOp",
    "MulticastReceiverTransport",
    "MulticastSenderTransport",
    "OriginalLayout",
    "PT_HIP",
    "PT_REMOTING",
    "PacketTransport",
    "Participant",
    "PointerMode",
    "PointerOp",
    "RemotePeer",
    "RetransmitCache",
    "SessionServer",
    "SharingConfig",
    "SharingService",
    "ShiftedLayout",
    "SignallingBinding",
    "StampedPacket",
    "StreamTransport",
    "TcpSocketTransport",
    "UdpSocketTransport",
    "UpdateOp",
    "UpdateScheduler",
    "host",
    "is_rtcp",
    "join",
    "window_manager_info",
]


def host(
    config: SharingConfig | None = None,
    clock: SimulatedClock | None = None,
    screen_width: int = 1280,
    screen_height: int = 1024,
    channel_config: ChannelConfig | None = None,
    rate_bps: int | None = None,
    uri: str = "sip:ah@host",
    rng: random.Random | None = None,
    obs=None,
) -> SharingService:
    """One SIP-signalled sharing service, batteries included.

    Builds the clock, the :class:`ApplicationHost` and the
    :class:`SharingService` in one call; the pieces stay reachable as
    ``service.ah`` and ``service.clock``.  Pair with :func:`join`::

        service = repro.sharing.host()
        viewer = repro.sharing.join(service, "alice")
        service.advance(0.02)   # drive the session

    For hundreds of concurrent sessions in one process, use the asyncio
    :class:`~repro.sharing.server.SessionServer` instead.
    """
    clock = clock or SimulatedClock()
    if obs is not None:
        obs.bind_clock(clock)
    ah = ApplicationHost(
        screen_width=screen_width,
        screen_height=screen_height,
        config=config,
        clock=clock,
        rng=rng,
        obs=obs,
    )
    return SharingService(
        ah,
        clock,
        uri=uri,
        channel_config=channel_config,
        rng=rng,
        rate_bps=rate_bps,
        obs=obs,
    )


def join(
    service: SharingService,
    name: str,
    prefer_transport: str = "tcp",
    rng: random.Random | None = None,
    max_rounds: int = 50,
) -> Participant:
    """Attach one participant to a :func:`host`-style service.

    Runs the full INVITE → negotiate → answer → ACK handshake through a
    service-owned :class:`SignallingBinding` and an auto-answering
    :class:`RemotePeer`; returns the wired :class:`Participant`.
    ``prefer_transport`` pins the media path (``"tcp"`` or ``"udp"``).
    """
    binding = service.invite(name)
    peer = RemotePeer(
        f"sip:{name}@remote",
        binding,
        prefer_transport=prefer_transport,
        rng=rng or random.Random(hash(name) & 0xFFFF),
    )
    for _ in range(max_rounds):
        peer.pump()
        service.pump_signalling()
        participant = service.participant_for(name)
        if peer.established and participant is not None:
            return participant
    raise RuntimeError(
        f"signalling for {name!r} did not establish in {max_rounds} rounds"
    )
