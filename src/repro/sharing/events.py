"""AH-side HIP event processing: validate, gate, and regenerate.

Three stages per incoming event (sections 4.1, 4.2, 6):

1. **Legitimacy** — "The AH MUST only accept legitimate HIP events by
   checking whether the requested coordinates are inside the shared
   windows."  Mouse events whose screen coordinates hit no shared
   window are rejected.
2. **Floor gating** — an optional hook (wired to BFCP, Appendix A)
   decides whether this participant currently owns the HIDs, and
   whether keyboard/mouse are individually allowed (HID Status).
3. **Regeneration** — accepted events are delivered to the app owning
   the target window, in window-local coordinates, and mouse motion
   drives the AH pointer state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..apps.base import AppHost
from ..core.errors import ProtocolError
from ..core.header import COMMON_HEADER_LEN, CommonHeader
from ..core.hip import (
    HipMessage,
    KeyTypedAssembler,
    KeyPressed,
    KeyReleased,
    KeyTyped,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
    decode_hip,
)
from ..core.registry import MSG_KEY_TYPED
from ..obs.instrumentation import NULL
from ..surface.cursor import PointerState
from ..surface.window import WindowManager

#: (participant_id, kind) -> allowed; kind is "mouse" or "keyboard".
FloorCheck = Callable[[str, str], bool]
#: Hook the AH uses to route malformed HIP input into its quarantine.
MalformedHook = Callable[[str, ProtocolError], None]

#: Sentinel: a KeyTyped fragment was buffered, nothing to inject yet.
_PENDING = object()


@dataclass(slots=True)
class EventStats:
    accepted: int = 0
    rejected_out_of_window: int = 0
    rejected_floor: int = 0
    rejected_unknown_type: int = 0
    rejected_malformed: int = 0
    by_type: dict[str, int] = field(default_factory=dict)


class EventInjector:
    """Routes decoded HIP messages into the simulated applications."""

    def __init__(
        self,
        manager: WindowManager,
        apps: AppHost,
        pointer: PointerState | None = None,
        floor_check: FloorCheck | None = None,
        raise_on_click: bool = True,
        instrumentation=None,
        on_malformed: MalformedHook | None = None,
    ) -> None:
        self.manager = manager
        self.apps = apps
        self.pointer = pointer
        self.floor_check = floor_check or (lambda _participant, _kind: True)
        self.raise_on_click = raise_on_click
        self.stats = EventStats()
        #: windowID that last received a click — keyboard focus.
        self.focus_window_id: int | None = None
        self._obs = instrumentation if instrumentation is not None else NULL
        self._on_malformed = on_malformed
        #: Per-sender UTF-8 reassembly for KeyTyped split mid-sequence
        #: (section 6.8 forbids it, hostile peers do it anyway).
        self._keytyped: dict[str, KeyTypedAssembler] = {}
        self.keytyped_dropped = 0
        self._c_keytyped_dropped = self._obs.counter(
            "hardening.keytyped_dropped"
        )

    # -- Entry points ------------------------------------------------------

    def inject_payload(self, participant_id: str, payload: bytes) -> bool:
        """Decode and inject one HIP RTP payload; False if rejected.

        Network input is untrusted: malformed payloads are counted,
        reported to ``on_malformed``, and dropped — only
        :class:`ProtocolError` is a "malformed packet"; anything else is
        a local bug and propagates.
        """
        try:
            message = self._decode(participant_id, payload)
        except ProtocolError as exc:
            self.stats.rejected_malformed += 1
            if self._on_malformed is not None:
                self._on_malformed(participant_id, exc)
            return False
        if message is None:
            self.stats.rejected_unknown_type += 1
            return False
        if message is _PENDING:
            return True  # KeyTyped continuation buffered, nothing to inject
        return self.inject(participant_id, message)

    def _decode(self, participant_id: str, payload: bytes):
        """decode_hip, with KeyTyped routed through per-sender reassembly."""
        header = CommonHeader.decode(payload)
        if header.message_type != MSG_KEY_TYPED:
            # A completed KeyTyped never spans other messages: any other
            # type aborts a pending partial sequence.
            assembler = self._keytyped.get(participant_id)
            if assembler is not None and assembler.pending:
                assembler.reset()
                self._count_keytyped_drop(participant_id)
            return decode_hip(payload)
        assembler = self._keytyped.setdefault(
            participant_id, KeyTypedAssembler()
        )
        try:
            text = assembler.push(payload[COMMON_HEADER_LEN:])
        except ProtocolError:
            self._count_keytyped_drop(participant_id)
            raise
        if not text and assembler.pending:
            return _PENDING  # no complete code point yet
        return KeyTyped(header.window_id, text)

    def _count_keytyped_drop(self, participant_id: str) -> None:
        self.keytyped_dropped += 1
        self._c_keytyped_dropped.inc()
        if self._obs.enabled:
            self._obs.event("keytyped.dropped", peer=participant_id)

    def inject(self, participant_id: str, message: HipMessage) -> bool:
        """Validate and regenerate one HIP event."""
        kind = (
            "keyboard"
            if isinstance(message, (KeyPressed, KeyReleased, KeyTyped))
            else "mouse"
        )
        if not self.floor_check(participant_id, kind):
            self.stats.rejected_floor += 1
            return False
        handler = {
            MousePressed: self._mouse_pressed,
            MouseReleased: self._mouse_released,
            MouseMoved: self._mouse_moved,
            MouseWheelMoved: self._mouse_wheel,
            KeyPressed: self._key_pressed,
            KeyReleased: self._key_released,
            KeyTyped: self._key_typed,
        }[type(message)]
        accepted = handler(message)
        if accepted:
            self.stats.accepted += 1
            name = type(message).__name__
            self.stats.by_type[name] = self.stats.by_type.get(name, 0) + 1
        return accepted

    # -- Mouse events (absolute screen coordinates) --------------------------

    def _locate(self, x: int, y: int):
        """The topmost shared window containing (x, y), or None."""
        return self.manager.window_at(x, y)

    def _mouse_pressed(self, msg: MousePressed) -> bool:
        window = self._locate(msg.left, msg.top)
        if window is None:
            self.stats.rejected_out_of_window += 1
            return False
        self.focus_window_id = window.window_id
        if self.raise_on_click:
            self.manager.raise_window(window.window_id)
        self._update_pointer(msg.left, msg.top)
        app = self.apps.app_for(window.window_id)
        if app is not None:
            app.on_mouse_pressed(
                msg.left - window.rect.left, msg.top - window.rect.top, msg.button
            )
        return True

    def _mouse_released(self, msg: MouseReleased) -> bool:
        window = self._locate(msg.left, msg.top)
        if window is None:
            self.stats.rejected_out_of_window += 1
            return False
        self._update_pointer(msg.left, msg.top)
        app = self.apps.app_for(window.window_id)
        if app is not None:
            app.on_mouse_released(
                msg.left - window.rect.left, msg.top - window.rect.top, msg.button
            )
        return True

    def _mouse_moved(self, msg: MouseMoved) -> bool:
        window = self._locate(msg.left, msg.top)
        if window is None:
            self.stats.rejected_out_of_window += 1
            return False
        self._update_pointer(msg.left, msg.top)
        app = self.apps.app_for(window.window_id)
        if app is not None:
            app.on_mouse_moved(
                msg.left - window.rect.left, msg.top - window.rect.top
            )
        return True

    def _mouse_wheel(self, msg: MouseWheelMoved) -> bool:
        window = self._locate(msg.left, msg.top)
        if window is None:
            self.stats.rejected_out_of_window += 1
            return False
        app = self.apps.app_for(window.window_id)
        if app is not None:
            app.on_mouse_wheel(
                msg.left - window.rect.left,
                msg.top - window.rect.top,
                msg.distance,
            )
        return True

    def _update_pointer(self, x: int, y: int) -> None:
        if self.pointer is not None:
            self.pointer.move_to(x, y)

    # -- Keyboard events (windowID = focus) ------------------------------------

    def _focused_app(self, window_id: int):
        """Keyboard target: the message's windowID if it is shared,
        falling back to the click-derived focus."""
        if self.manager.has(window_id):
            return self.apps.app_for(window_id)
        if self.focus_window_id is not None and self.manager.has(
            self.focus_window_id
        ):
            return self.apps.app_for(self.focus_window_id)
        return None

    def _key_pressed(self, msg: KeyPressed) -> bool:
        app = self._focused_app(msg.window_id)
        if app is None:
            self.stats.rejected_out_of_window += 1
            return False
        app.on_key_pressed(msg.keycode)
        return True

    def _key_released(self, msg: KeyReleased) -> bool:
        app = self._focused_app(msg.window_id)
        if app is None:
            self.stats.rejected_out_of_window += 1
            return False
        app.on_key_released(msg.keycode)
        return True

    def _key_typed(self, msg: KeyTyped) -> bool:
        app = self._focused_app(msg.window_id)
        if app is None:
            self.stats.rejected_out_of_window += 1
            return False
        app.on_key_typed(msg.text)
        return True
