"""Service-owned signalling plumbing: bindings and auto-answer peers.

Historically ``SharingService.invite`` made the *caller* allocate the
two in-memory message queues standing in for the SIP transport and
thread them back into the service — four arguments of pure plumbing.
A :class:`SignallingBinding` inverts that: the service owns the queues
and hands the caller one object that both ends attach to.

:class:`RemotePeer` wraps the participant-side
:class:`~repro.sip.dialog.SipEndpoint` with the standard answer policy
(negotiate the offer, answer with the chosen transport) so call sites
— the synchronous :func:`repro.sharing.join` factory and the asyncio
:class:`~repro.sharing.server.SessionServer` front door alike — never
touch inboxes or SDP by hand.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from ..sdp import build_ah_offer, negotiate, parse_sdp
from ..sip.dialog import DialogState, SipEndpoint


class SignallingBinding:
    """The two signalling queues for one prospective participant.

    ``to_remote`` carries service→remote SIP messages, ``to_service``
    the replies.  The service drains ``to_service`` in its signalling
    pump; the remote side drains ``to_remote`` via :meth:`pump_remote`
    (or by hand, for callers that run their own endpoint loop).

    The queues default to :class:`collections.deque` but any sequence
    with ``append`` works — the deprecated 4-argument ``invite`` shim
    wraps the caller's legacy lists in a binding unchanged.
    """

    __slots__ = ("name", "to_remote", "to_service", "_remote")

    def __init__(self, name: str, to_remote=None, to_service=None) -> None:
        self.name = name
        self.to_remote = to_remote if to_remote is not None else deque()
        self.to_service = to_service if to_service is not None else deque()
        self._remote: SipEndpoint | None = None

    # -- The two directions, as send callables -----------------------------

    def send_to_remote(self, text: str) -> None:
        """Enqueue one service→remote SIP message (service side)."""
        self.to_remote.append(text)

    def send_to_service(self, text: str) -> None:
        """Enqueue one remote→service SIP message (remote side)."""
        self.to_service.append(text)

    # -- Remote-side convenience -------------------------------------------

    def attach_remote(self, endpoint: SipEndpoint) -> SipEndpoint:
        """Wire ``endpoint`` as the remote party of this binding.

        Its outbound messages flow into ``to_service`` and
        :meth:`pump_remote` delivers queued service messages to it.
        """
        endpoint.attach_transport(self.send_to_service)
        self._remote = endpoint
        return endpoint

    @property
    def remote(self) -> SipEndpoint | None:
        return self._remote

    def pump_remote(self, endpoint: SipEndpoint | None = None) -> int:
        """Deliver queued service→remote messages; returns the count."""
        target = endpoint or self._remote
        if target is None:
            raise ValueError(
                f"binding {self.name!r} has no attached remote endpoint"
            )
        delivered = 0
        pop = _popper(self.to_remote)
        while self.to_remote:
            target.receive(pop())
            delivered += 1
        return delivered

    def drain_to_service(self, receive: Callable[[str], bool]) -> None:
        """Feed queued remote→service messages to ``receive``.

        ``receive`` returns False to stop the drain (the service does
        this when a BYE tears the call down mid-drain).
        """
        pop = _popper(self.to_service)
        while self.to_service:
            if not receive(pop()):
                break


def _popper(queue) -> Callable[[], str]:
    # deque.popleft is O(1); list.pop(0) would make a long drain
    # quadratic, so prefer the former when the queue offers it.
    popleft = getattr(queue, "popleft", None)
    return popleft if popleft is not None else (lambda: queue.pop(0))


class RemotePeer:
    """A participant-side SIP endpoint with the standard answer policy.

    Auto-answers the AH's INVITE by negotiating the offer with
    ``prefer_transport`` and answering with an SDP that carries only
    the chosen remoting transport (which is how a participant pins the
    AH to UDP or TCP).  ``pump()`` is idempotent and cheap; drive it
    until :attr:`established` (or :attr:`terminated`).
    """

    def __init__(
        self,
        uri: str,
        binding: SignallingBinding,
        prefer_transport: str = "tcp",
        rng: random.Random | None = None,
        auto_answer: bool = True,
    ) -> None:
        self.binding = binding
        self.prefer_transport = prefer_transport
        self.auto_answer = auto_answer
        self.endpoint = SipEndpoint(
            uri, send=binding.send_to_service, rng=rng or random.Random()
        )
        binding.attach_remote(self.endpoint)

    @property
    def established(self) -> bool:
        return self.endpoint.state is DialogState.ESTABLISHED

    @property
    def terminated(self) -> bool:
        return self.endpoint.state is DialogState.TERMINATED

    def pump(self) -> bool:
        """Deliver queued messages and apply the answer policy.

        Returns True once the dialog is established.
        """
        self.binding.pump_remote(self.endpoint)
        if self.auto_answer and self.endpoint.state is DialogState.RINGING:
            agreed = negotiate(
                parse_sdp(self.endpoint.remote_sdp),
                prefer_transport=self.prefer_transport,
            )
            answer = build_ah_offer(
                offer_udp=agreed.transport == "udp",
                offer_tcp=agreed.transport == "tcp",
                retransmissions=agreed.retransmissions,
            )
            self.endpoint.accept(answer.to_string())
        return self.established

    def bye(self) -> None:
        """Terminate from the participant side (if established)."""
        if self.established:
            self.endpoint.bye()
