"""Session configuration shared by AH and participants."""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: RTP payload type of the remoting stream (dynamic range; SDP example
#: in section 10.3 uses 99).
PT_REMOTING = 99
#: RTP payload type of the HIP stream (section 10.3 uses 100).
PT_HIP = 100


class PointerMode(enum.Enum):
    """The two mouse pointer models of section 4.2.

    The AH decides which to use; participants must support both.
    """

    #: Pointer image painted into RegionUpdate pixels.
    IN_BAND = "in-band"
    #: Explicit MousePointerInfo messages carrying position (+ icon).
    EXPLICIT = "explicit"


@dataclass(frozen=True, slots=True)
class SharingConfig:
    """Knobs for one sharing session.

    ``max_rtp_payload`` bounds the remoting payload per RTP packet
    (drives Table 2 fragmentation).  ``retransmissions`` mirrors the
    mandatory media-type parameter of section 9.3.1: when False, UDP
    participants fall back to PLI-only recovery.
    """

    max_rtp_payload: int = 1200
    pointer_mode: PointerMode = PointerMode.EXPLICIT
    retransmissions: bool = True
    retransmit_cache_packets: int = 2048
    scroll_detection: bool = True
    backlog_coalescing: bool = True
    adaptive_codec: bool = True
    lossless_codec: str = "png"
    lossy_codec: str = "lossy-dct"
    max_update_rects: int = 16
    clock_rate: int = 90_000
    #: Idle-sender RTP keepalive for UDP paths (RFC 6263 shape): a
    #: no-op packet every this many seconds of send silence keeps the
    #: sequence space moving so receivers detect tail loss and NACK it.
    #: 0 disables.
    keepalive_interval: float = 0.5
    #: Quarantine policy (docs/HARDENING.md): a peer exceeding
    #: ``rejection_budget`` malformed packets inside a sliding
    #: ``rejection_window`` seconds is ignored for
    #: ``quarantine_cooldown`` seconds.
    rejection_budget: int = 16
    rejection_window: float = 5.0
    quarantine_cooldown: float = 30.0
    #: Negotiated desktop bounds used to validate update/move geometry
    #: at decode time (section 8 coordinate legitimacy).
    max_desktop_width: int = 16384
    max_desktop_height: int = 16384
    #: Entries in the session-wide content-addressed encode cache
    #: (identical update pixel blocks reuse one encode across all
    #: destinations; docs/PERFORMANCE.md).  0 disables caching.
    encode_cache_entries: int = 256
    #: Worker processes for the parallel encode pool
    #: (:class:`repro.codecs.parallel.EncodePool`).  0 keeps every
    #: encode in-process (the default — pools are opt-in); -1 sizes the
    #: pool to the machine (cpu_count - 1).
    encode_workers: int = 0
    #: Bands per parallel-encoded update.  0 means one band per worker.
    encode_bands: int = 0

    def __post_init__(self) -> None:
        if self.max_rtp_payload < 64:
            raise ValueError("max_rtp_payload unrealistically small")
        if self.retransmit_cache_packets < 0:
            raise ValueError("retransmit cache cannot be negative")
        if self.max_update_rects < 1:
            raise ValueError("max_update_rects must be >= 1")
        if self.clock_rate <= 0:
            raise ValueError("clock rate must be positive")
        if self.keepalive_interval < 0:
            raise ValueError("keepalive interval cannot be negative")
        if self.rejection_budget < 1:
            raise ValueError("rejection budget must be >= 1")
        if self.rejection_window <= 0 or self.quarantine_cooldown <= 0:
            raise ValueError("rejection window/cooldown must be positive")
        if self.max_desktop_width < 1 or self.max_desktop_height < 1:
            raise ValueError("desktop bounds must be positive")
        if self.encode_cache_entries < 0:
            raise ValueError("encode cache size cannot be negative")
        if self.encode_workers < -1:
            raise ValueError("encode workers must be >= -1")
        if self.encode_bands < 0:
            raise ValueError("encode bands cannot be negative")
