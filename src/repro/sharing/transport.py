"""Transport adaptors: one packet-oriented interface over every path.

The AH "can share an application to TCP participants, UDP participants,
and several multicast addresses in the same sharing session" (section
4.2).  The sharing layer talks to all of them through
:class:`PacketTransport`; adaptors wrap the simulated channels, the
simulated multicast group, and the real sockets.

RTP and RTCP are multiplexed on one path using the RFC 5761 rule:
a packet whose payload-type octet falls in 192..223 (after clearing the
marker bit, 64..95 collide with nothing we use) is RTCP.
"""

from __future__ import annotations

import abc

from ..net.channel import LossyChannel, ReliableChannel
from ..net.multicast import MulticastGroup
from ..rtp.framing import StreamDeframer, frame


def is_rtcp(packet: bytes) -> bool:
    """RFC 5761 demultiplexing: RTCP packet types occupy 192-223."""
    if len(packet) < 2:
        return False
    return 192 <= packet[1] <= 223


class PacketTransport(abc.ABC):
    """A bidirectional packet path between the AH and one destination."""

    #: True for stream (TCP-like) paths: no loss, no reordering.
    reliable: bool = False

    @abc.abstractmethod
    def send_packet(self, packet: bytes) -> bool:
        """Try to send one packet; False means refused/dropped locally."""

    @abc.abstractmethod
    def receive_packets(self) -> list[bytes]:
        """Drain every packet that has arrived."""

    def backlog_bytes(self) -> int:
        """Unsent bytes queued locally (the section 7 signal); 0 if n/a."""
        return 0

    def can_send(self, size: int) -> bool:
        """Whether a packet of ``size`` would be accepted right now."""
        return True

    @property
    def closed(self) -> bool:
        """True once the path is permanently down (peer disconnected)."""
        return False

    def close(self) -> None:
        """Shut this side of the path down; default transports ignore it."""


class DatagramTransport(PacketTransport):
    """One side of a simulated UDP association (a lossy channel pair)."""

    reliable = False

    def __init__(self, outbound: LossyChannel, inbound: LossyChannel) -> None:
        self._out = outbound
        self._in = inbound
        self._closed = False

    def send_packet(self, packet: bytes) -> bool:
        if self._closed:
            return False
        return self._out.send(packet)

    def receive_packets(self) -> list[bytes]:
        if self._closed:
            return []
        return self._in.receive_ready()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Locally close this side (process death / explicit shutdown).

        UDP has no FIN: the *peer's* transport object stays open and
        only notices through silence — which is exactly what the
        liveness tier is for."""
        self._closed = True


class StreamTransport(PacketTransport):
    """One side of a simulated TCP association with RFC 4571 framing."""

    reliable = True

    def __init__(self, outbound: ReliableChannel, inbound: ReliableChannel) -> None:
        self._out = outbound
        self._in = inbound
        self._deframer = StreamDeframer()
        self._closed = False

    def send_packet(self, packet: bytes) -> bool:
        if self._closed:
            return False
        return self._out.send(frame(packet))

    def receive_packets(self) -> list[bytes]:
        if self._closed:
            return []
        data = self._in.receive_ready()
        return self._deframer.feed(data) if data else []

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def backlog_bytes(self) -> int:
        return self._out.backlog_bytes()

    def can_send(self, size: int) -> bool:
        # +2 for the RFC 4571 length prefix.
        return self._out.can_send(size + 2)


class MulticastSenderTransport(PacketTransport):
    """AH-side handle on a multicast group: send fans out, receive is empty.

    Feedback (PLI/NACK) from multicast receivers travels over separate
    unicast return transports, so the group itself is send-only.
    """

    reliable = False

    def __init__(self, group: MulticastGroup) -> None:
        self.group = group

    def send_packet(self, packet: bytes) -> bool:
        self.group.send(packet)
        return True

    def receive_packets(self) -> list[bytes]:
        return []


class MulticastReceiverTransport(PacketTransport):
    """Participant-side multicast handle: receives the fan-out, sends
    feedback on a unicast back-channel."""

    reliable = False

    def __init__(self, inbound: LossyChannel, feedback: LossyChannel) -> None:
        self._in = inbound
        self._feedback = feedback

    def send_packet(self, packet: bytes) -> bool:
        return self._feedback.send(packet)

    def receive_packets(self) -> list[bytes]:
        return self._in.receive_ready()


class UdpSocketTransport(PacketTransport):
    """Real UDP socket path to a fixed peer (loopback integration)."""

    reliable = False

    def __init__(self, endpoint, peer: tuple[str, int]) -> None:
        self.endpoint = endpoint
        self.peer = peer

    def send_packet(self, packet: bytes) -> bool:
        return self.endpoint.send_to(packet, self.peer)

    def receive_packets(self) -> list[bytes]:
        return [data for data, _peer in self.endpoint.receive()]


class TcpSocketTransport(PacketTransport):
    """Real TCP connection path (loopback integration)."""

    reliable = True

    def __init__(self, connection) -> None:
        self.connection = connection

    def send_packet(self, packet: bytes) -> bool:
        if self.connection.closed:
            return False
        try:
            self.connection.send_packet(packet)
        except OSError:
            return False
        return True

    def receive_packets(self) -> list[bytes]:
        if self.connection.closed:
            return []
        try:
            return self.connection.receive_packets()
        except OSError:
            return []

    def backlog_bytes(self) -> int:
        return self.connection.backlog_bytes()

    @property
    def closed(self) -> bool:
        return self.connection.closed
