"""Participant-side loss-recovery state machine (sections 4.5.1, 5.3.2).

The draft's reliability story over UDP is Generic NACK retransmission,
but a single NACK is itself a datagram on a lossy path: without retry
logic a lost NACK (or a lost retransmission) strands the gap until the
jitter buffer times out and a costly full refresh (PLI) is the only way
out.  :class:`RecoveryManager` gives every missing packet a small
deterministic state machine:

    MISSING --nack--> NACKED --timeout--> RETRY (exponential backoff)
       RETRY --timeout x max_attempts--> GAVE_UP
       any state --packet arrives--> RECOVERED

* Losses are keyed by **extended** sequence number (via
  :class:`~repro.rtp.sequence.SequenceExtender`), so state survives
  16-bit wraparound without aliasing a fresh loss onto a stale one.
* Retries back off exponentially (``initial_interval * backoff**n``)
  and stop after ``max_attempts`` NACKs; the caller then degrades
  gracefully — flush the jitter-buffer hole and request a full window
  refresh from the AH.
* Recovery latency (first detection → arrival) feeds a histogram, and
  every transition is counted, so tests and dashboards can assert the
  machine's behaviour from one `repro.obs` snapshot:
  ``recovery.nacks_sent`` / ``.retries`` / ``.recovered`` /
  ``.gave_up`` / ``.cancelled`` / ``.duplicates_suppressed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from ..rtp.sequence import SequenceExtender

#: Default retry schedule: NACK at t=0, retries at +0.2, +0.4, +0.8 …
DEFAULT_INITIAL_INTERVAL = 0.2
DEFAULT_BACKOFF = 2.0
DEFAULT_MAX_ATTEMPTS = 4
#: How long a recovered sequence number is remembered so late duplicate
#: retransmissions are recognised (and suppressed) rather than ignored.
DEFAULT_RECOVERED_MEMORY = 5.0


@dataclass(slots=True)
class _PendingLoss:
    """Retry state for one missing extended sequence number."""

    first_seen: float
    attempts: int
    next_retry: float


@dataclass(slots=True)
class RecoveryActions:
    """What the participant should do after one poll."""

    #: 16-bit sequence numbers to pack into a Generic NACK right now.
    nack_now: list[int] = field(default_factory=list)
    #: 16-bit sequence numbers whose retries are exhausted: flush their
    #: jitter-buffer holes and request a full window refresh.
    gave_up: list[int] = field(default_factory=list)

    @property
    def refresh_needed(self) -> bool:
        return bool(self.gave_up)


class RecoveryManager:
    """Drives NACK → timed retry → capped give-up for missing packets."""

    def __init__(
        self,
        now,
        initial_interval: float = DEFAULT_INITIAL_INTERVAL,
        backoff: float = DEFAULT_BACKOFF,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        recovered_memory: float = DEFAULT_RECOVERED_MEMORY,
        instrumentation=None,
    ) -> None:
        if initial_interval <= 0:
            raise ValueError("initial_interval must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if recovered_memory < 0:
            raise ValueError("recovered_memory cannot be negative")
        self._now = as_now(now)
        self.initial_interval = initial_interval
        self.backoff = backoff
        self.max_attempts = max_attempts
        self.recovered_memory = recovered_memory
        self._extender = SequenceExtender()
        #: extended seq → retry state.
        self._pending: dict[int, _PendingLoss] = {}
        #: extended seq → recovery time, for duplicate suppression.
        self._recovered_at: dict[int, float] = {}
        self.nacks_sent = 0
        self.retries = 0
        self.recovered = 0
        self.gave_up = 0
        self.cancelled = 0
        self.duplicates_suppressed = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_nacks = obs.counter("recovery.nacks_sent")
        self._c_retries = obs.counter("recovery.retries")
        self._c_recovered = obs.counter("recovery.recovered")
        self._c_gave_up = obs.counter("recovery.gave_up")
        self._c_cancelled = obs.counter("recovery.cancelled")
        self._c_duplicates = obs.counter("recovery.duplicates_suppressed")
        self._g_pending = obs.gauge("recovery.pending")
        self._h_latency = obs.histogram("recovery.latency_seconds")

    # -- Inputs ------------------------------------------------------------

    def note_arrival(self, seq: int) -> bool:
        """Record that packet ``seq`` arrived (original or retransmit).

        Returns True when the arrival filled a tracked loss — i.e. this
        packet is a NACK-driven recovery, which span tracing uses for
        the ``recovered=yes`` e2e label."""
        ext = self._extender.extend(seq)
        state = self._pending.pop(ext, None)
        now = self._now()
        if state is not None:
            self._mark_recovered(ext, state, now)
            return True
        if ext in self._recovered_at:
            if now - self._recovered_at[ext] <= self.recovered_memory:
                self.duplicates_suppressed += 1
                self._c_duplicates.inc()
            else:
                del self._recovered_at[ext]
        return False

    def cancel(self, seq: int) -> None:
        """Stop tracking ``seq`` without a give-up (e.g. jitter buffer
        already skipped the hole and a refresh is underway)."""
        ext = self._extender.extend(seq)
        if self._pending.pop(ext, None) is not None:
            self.cancelled += 1
            self._c_cancelled.inc()

    # -- The state machine -------------------------------------------------

    def poll(self, missing: Iterable[int]) -> RecoveryActions:
        """Advance every tracked loss against the current ``missing`` set.

        ``missing`` is the gap detector's view (16-bit sequence
        numbers).  Pending entries absent from it have been recovered;
        entries present transition per the retry schedule.
        """
        now = self._now()
        ext_missing = {self._extender.extend(s): s & 0xFFFF for s in missing}
        for ext in [e for e in self._pending if e not in ext_missing]:
            self._mark_recovered(ext, self._pending.pop(ext), now)
        actions = RecoveryActions()
        for ext, seq in ext_missing.items():
            state = self._pending.get(ext)
            if state is None:
                self._pending[ext] = _PendingLoss(
                    first_seen=now,
                    attempts=1,
                    next_retry=now + self.initial_interval,
                )
                actions.nack_now.append(seq)
                self.nacks_sent += 1
                self._c_nacks.inc()
            elif now >= state.next_retry:
                if state.attempts >= self.max_attempts:
                    del self._pending[ext]
                    actions.gave_up.append(seq)
                    self.gave_up += 1
                    self._c_gave_up.inc()
                else:
                    interval = self.initial_interval * (
                        self.backoff ** state.attempts
                    )
                    state.attempts += 1
                    state.next_retry = now + interval
                    actions.nack_now.append(seq)
                    self.nacks_sent += 1
                    self.retries += 1
                    self._c_nacks.inc()
                    self._c_retries.inc()
        self._g_pending.set(len(self._pending))
        self._prune_recovered(now)
        if actions.gave_up and self._obs.enabled:
            # Flight-recorder sentinel: retries exhausted → PLI degrade.
            self._obs.event(
                "recovery.gave_up",
                count=len(actions.gave_up),
                seqs=list(actions.gave_up),
            )
        return actions

    # -- Internals ---------------------------------------------------------

    def _mark_recovered(self, ext: int, state: _PendingLoss,
                        now: float) -> None:
        self.recovered += 1
        self._c_recovered.inc()
        self._h_latency.observe(now - state.first_seen)
        self._recovered_at[ext] = now

    def _prune_recovered(self, now: float) -> None:
        if len(self._recovered_at) > 4096:
            cutoff = now - self.recovered_memory
            self._recovered_at = {
                e: t for e, t in self._recovered_at.items() if t >= cutoff
            }

    @property
    def pending(self) -> int:
        """Losses currently inside the retry machine."""
        return len(self._pending)

    def pending_attempts(self, seq: int) -> int:
        """NACK attempts so far for ``seq`` (0 when untracked)."""
        ext = self._extender.extend(seq)
        state = self._pending.get(ext)
        return state.attempts if state is not None else 0
