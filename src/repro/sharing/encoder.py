"""Turns captured frames into RTP packets (the AH send path).

One :class:`FrameEncoder` per destination: it owns the destination's
RTP sequence space and applies codec selection, Table 2 fragmentation,
and the shared-timestamp rule for multi-packet updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs.base import CodecRegistry
from ..codecs.cache import EncodeCache
from ..codecs.selector import CodecSelector
from ..core.mouse_pointer import MousePointerInfo
from ..core.move_rectangle import MoveRectangle
from ..core.registry import MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE
from ..core.fragmentation import fragment_update
from ..core.window_info import WindowManagerInfo
from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from ..rtp.packet import RtpPacket
from ..rtp.session import RtpSender
from .capture import CapturedFrame, MoveOp, PointerOp, UpdateOp
from .config import SharingConfig


@dataclass(frozen=True, slots=True)
class StampedPacket:
    """An RTP packet plus the capture time of the content it carries.

    ``update_id`` joins the packet to its causal span (None for
    non-traced packets and with observability off)."""

    packet: RtpPacket
    capture_time: float
    update_id: int | None = None


class FrameEncoder:
    """Encodes capture-pipeline output into this destination's stream."""

    def __init__(
        self,
        sender: RtpSender,
        registry: CodecRegistry,
        config: SharingConfig,
        now,
        instrumentation=None,
        cache: EncodeCache | None = None,
        pool=None,
    ) -> None:
        self.sender = sender
        self.registry = registry
        self.config = config
        self._now = as_now(now)
        self.selector = CodecSelector(
            registry,
            lossless_name=config.lossless_codec,
            lossy_name=config.lossy_codec,
            allow_lossy=config.adaptive_codec,
        )
        #: Session-wide content-addressed cache (shared across the
        #: per-destination encoders; see ApplicationHost).
        self.cache = cache
        #: Session-wide :class:`repro.codecs.parallel.EncodePool`
        #: (shared like the cache); None keeps encodes in-process.
        self.pool = pool
        self._bands = config.encode_bands or None
        # The cache key must cover everything that changes encoded
        # bytes: codec choice inputs and the codecs' own parameters.
        # It is identical for every destination of a session, so the
        # N-destination fan-out still collapses to one encode.
        eligible = [self.selector.lossless]
        if self.selector.lossy is not None:
            eligible.append(self.selector.lossy)
        self._cache_params = repr(
            [(c.name, sorted(vars(c).items())) for c in eligible]
        ).encode()
        self._obs = instrumentation if instrumentation is not None else NULL
        self._spans = self._obs.spans
        self.stats = self._obs.traffic_stats()
        self._c_cache_hit = self._obs.counter("encoder.cache_hit")
        self._c_cache_miss = self._obs.counter("encoder.cache_miss")

    # -- Whole frames -----------------------------------------------------

    def encode_frame(self, frame: CapturedFrame) -> list[StampedPacket]:
        """Encode a frame in protocol order: WMI, moves, updates, pointer.

        WMI must precede updates that reference new windows; moves must
        precede the updates that repaint their exposed bands.
        """
        capture_time = self._now()
        packets: list[StampedPacket] = []
        if frame.window_info is not None:
            packets.extend(self.encode_window_info(frame.window_info, capture_time))
        for move in frame.moves:
            packets.extend(self.encode_move(move, capture_time))
        for update in frame.updates:
            packets.extend(self.encode_update(update, capture_time))
        if frame.pointer is not None:
            packets.extend(self.encode_pointer(frame.pointer, capture_time))
        return packets

    # -- Individual ops -----------------------------------------------------

    def encode_window_info(
        self, info: WindowManagerInfo, capture_time: float
    ) -> list[StampedPacket]:
        payload = info.encode()
        # Single-packet message: Table 2 needs marker=1 + FirstPacket=1
        # to read as Not Fragmented (marker=0 would decode as Start
        # Fragment and strand the receiver's reassembler).
        packet = self.sender.next_packet(payload, marker=True)
        self.stats.window_info.add(len(payload), len(packet))
        return [StampedPacket(packet, capture_time)]

    def encode_move(self, move: MoveOp, capture_time: float) -> list[StampedPacket]:
        message = MoveRectangle(
            window_id=move.window_id,
            source_left=move.source_left,
            source_top=move.source_top,
            width=move.width,
            height=move.height,
            dest_left=move.dest_left,
            dest_top=move.dest_top,
        )
        payload = message.encode()
        # Same Table 2 rule as window info: one packet, marker=1.
        packet = self.sender.next_packet(payload, marker=True)
        self.stats.move_rectangle.add(len(payload), len(packet))
        return [StampedPacket(packet, capture_time)]

    def encode_update(
        self, update: UpdateOp, capture_time: float
    ) -> list[StampedPacket]:
        spans = self._spans
        sid = None
        if spans.enabled:
            sid = spans.begin(window=update.window_id)
            # The schedule stage covers capture/damage until encoding
            # starts, measured against the session clock.
            spans.mark(sid, "schedule", start=capture_time)
        payload_type, data, parallel = self._encode_pixels(update.pixels)
        if sid is not None:
            spans.mark(sid, "encode")
            if parallel:
                # Optional stage: present only on updates the worker
                # pool actually encoded (shares the encode interval).
                spans.mark(sid, "parallel_encode")
        fragments = fragment_update(
            MSG_REGION_UPDATE,
            update.window_id,
            payload_type,
            update.left,
            update.top,
            data,
            self.config.max_rtp_payload,
        )
        if sid is not None:
            spans.mark(sid, "fragment")
        # "the timestamp SHALL be the same for all of those packets"
        timestamp = self.sender.current_timestamp()
        out = []
        for fragment in fragments:
            packet = self.sender.next_packet(
                fragment.payload, marker=fragment.marker, timestamp=timestamp
            )
            self.stats.region_update.add(len(fragment.payload), len(packet))
            out.append(StampedPacket(packet, capture_time, update_id=sid))
        if sid is not None:
            spans.bind_range(
                sid,
                self.sender.ssrc,
                out[0].packet.sequence_number,
                len(out),
                rtp_timestamp=timestamp,
            )
        if self._obs.enabled:
            self._obs.event(
                "update.sent",
                rtp_ts=timestamp,
                window=update.window_id,
                bytes=len(data),
                fragments=len(fragments),
                capture=capture_time,
                update_id=sid,
            )
        return out

    def _encode_pixels(self, pixels: np.ndarray) -> tuple[int, bytes, bool]:
        """Select a codec and encode, going through the shared cache.

        Codec selection is a pure function of the pixels (and session
        config), so identical blocks — repeated damage, or the same
        update fanned out to every destination — reuse one encode.
        Returns ``(payload_type, data, parallel)`` where ``parallel``
        records whether the worker pool carried the encode.
        """
        cache = self.cache
        if cache is None:
            codec = self.selector.select(pixels)
            return (codec.payload_type, *self._codec_encode(codec, pixels))
        key = cache.key(pixels, self._cache_params)
        entry = cache.get(key)
        if entry is not None:
            self._c_cache_hit.inc()
            return (*entry, False)
        codec = self.selector.select(pixels)
        data, parallel = self._codec_encode(codec, pixels)
        cache.put(key, codec.payload_type, data)
        self._c_cache_miss.inc()
        return codec.payload_type, data, parallel

    def _codec_encode(self, codec, pixels: np.ndarray) -> tuple[bytes, bool]:
        """Encode via the worker pool when one is attached and the
        codec has a band-parallel form; otherwise in-process."""
        pool = self.pool
        if pool is not None and not pool.closed:
            from ..codecs.lossy import LossyDctCodec
            from ..codecs.parallel import (
                encode_lossy_parallel,
                encode_png_parallel,
            )
            from ..codecs.png import PngCodec

            if type(codec) is PngCodec:
                if pixels.shape[0] >= pool.min_parallel_rows:
                    return (
                        encode_png_parallel(
                            pixels,
                            pool,
                            compression_level=codec.compression_level,
                            adaptive_filter=codec.adaptive_filter,
                            fixed_filter=codec.fixed_filter,
                            bands=self._bands,
                        ),
                        True,
                    )
            elif type(codec) is LossyDctCodec:
                if pixels.shape[0] >= pool.min_parallel_rows:
                    return (
                        encode_lossy_parallel(
                            pixels,
                            pool,
                            quality=codec.quality,
                            bands=self._bands,
                        ),
                        True,
                    )
        return codec.encode(pixels), False

    def encode_pointer(
        self, pointer: PointerOp, capture_time: float
    ) -> list[StampedPacket]:
        lossless = self.registry.by_name(self.config.lossless_codec)
        if pointer.image is not None:
            image_data = lossless.encode(np.ascontiguousarray(pointer.image))
        else:
            image_data = b""
        message = MousePointerInfo(
            window_id=0,
            left=pointer.left,
            top=pointer.top,
            content_pt=lossless.payload_type,
            image_data=image_data,
        )
        fragments = fragment_update(
            MSG_MOUSE_POINTER_INFO,
            message.window_id,
            message.content_pt,
            message.left,
            message.top,
            message.image_data,
            self.config.max_rtp_payload,
        )
        timestamp = self.sender.current_timestamp()
        out = []
        for fragment in fragments:
            packet = self.sender.next_packet(
                fragment.payload, marker=fragment.marker, timestamp=timestamp
            )
            self.stats.pointer.add(len(fragment.payload), len(packet))
            out.append(StampedPacket(packet, capture_time))
        return out
