"""SIP-managed sharing service: signalling drives the media session.

Glues a :class:`~repro.sip.dialog.SipEndpoint` per prospective
participant to the :class:`~repro.sharing.ah.ApplicationHost`: the AH
INVITEs with its section 10 SDP offer; when the participant answers,
the negotiated transport is built (simulated link) and the participant
joins the media session; BYE from either side removes them.

This is the "integrated into the existing IETF session model" story of
section 2, runnable end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from ..rtp.clock import SimulatedClock
from ..sdp import build_ah_offer, negotiate, parse_sdp
from ..sip.dialog import DialogState, SipEndpoint
from .ah import ApplicationHost
from .participant import Participant
from .transport import DatagramTransport, StreamTransport


@dataclass(slots=True)
class _Call:
    """One participant's signalling + media state."""

    sip: SipEndpoint
    participant: Participant | None = None


class SharingService:
    """An AH with SIP-signalled participant lifecycle (simulated links)."""

    def __init__(
        self,
        ah: ApplicationHost,
        clock: SimulatedClock,
        uri: str = "sip:ah@host",
        channel_config: ChannelConfig | None = None,
        rng: random.Random | None = None,
        rate_bps: int | None = None,
        instrumentation=None,
    ) -> None:
        if not callable(getattr(clock, "now", None)) or not callable(
            getattr(clock, "advance", None)
        ):
            raise TypeError(
                "SharingService needs a clock with now() and advance()"
            )
        self.ah = ah
        self.clock = clock
        self.uri = uri
        self.channel_config = channel_config or ChannelConfig(delay=0.01)
        self._rng = rng or random.Random(7)
        #: Token-bucket tier attached to UDP participants (section 4.3).
        self.rate_bps = rate_bps
        self.obs = (
            instrumentation if instrumentation is not None
            else getattr(ah, "obs", None)
        )
        self._calls: dict[str, _Call] = {}
        #: Signalling wires: name → (to_remote, to_local) message queues.
        #: Any sequence with pop(0) works; ``collections.deque`` keeps
        #: the drain O(1) per message.
        self._signalling: dict[str, tuple[list[str], list[str]]] = {}

    # -- Inviting -------------------------------------------------------------

    def invite(self, name: str, remote: SipEndpoint,
               remote_inbox: list[str], local_inbox: list[str]) -> None:
        """Start signalling toward a remote SIP endpoint.

        The caller supplies the remote endpoint plus the two in-memory
        message queues standing in for the SIP transport.
        """
        if name in self._calls:
            raise ValueError(f"call {name!r} already exists")
        endpoint = SipEndpoint(
            self.uri,
            send=remote_inbox.append,
            rng=self._rng,
            on_established=lambda sdp, n=name: self._on_answer(n, sdp),
            on_terminated=lambda n=name: self._on_bye(n),
        )
        self._calls[name] = _Call(endpoint)
        self._signalling[name] = (remote_inbox, local_inbox)
        endpoint.invite(remote.uri, build_ah_offer().to_string())

    def pump_signalling(self) -> None:
        """Deliver queued SIP messages to our endpoints.

        A delivered BYE tears the call down, which mutates the call
        tables — iterate over a snapshot.
        """
        for name, (_out, inbox) in list(self._signalling.items()):
            call = self._calls.get(name)
            # deque.popleft is O(1); list.pop(0) would make a long drain
            # quadratic, so prefer the former when the queue offers it.
            pop = getattr(inbox, "popleft", None) or (lambda: inbox.pop(0))
            while inbox and call is not None:
                call.sip.receive(pop())
                if name not in self._calls:  # torn down mid-drain
                    break

    # -- Media wiring -------------------------------------------------------------

    def _on_answer(self, name: str, answer_sdp: str) -> None:
        """Participant answered: build the negotiated media path."""
        agreed = negotiate(parse_sdp(answer_sdp)) if answer_sdp.strip() else None
        transport_kind = agreed.transport if agreed else "tcp"
        link_obs = self.obs.scoped(peer=name) if self.obs is not None else None
        if transport_kind == "udp":
            link = duplex_lossy(
                self.channel_config, self.clock.now, instrumentation=link_obs
            )
            ah_transport = DatagramTransport(link.forward, link.backward)
            p_transport = DatagramTransport(link.backward, link.forward)
            self.ah.add_participant(name, ah_transport, rate_bps=self.rate_bps)
        else:
            link = duplex_reliable(
                self.channel_config, self.clock.now, instrumentation=link_obs
            )
            ah_transport = StreamTransport(link.forward, link.backward)
            p_transport = StreamTransport(link.backward, link.forward)
            self.ah.add_participant(name, ah_transport)
        participant = Participant(
            name, p_transport, clock=self.clock, config=self.ah.config,
            instrumentation=self.obs,
        )
        participant.join()
        self._calls[name].participant = participant

    def _on_bye(self, name: str) -> None:
        self.ah.remove_participant(name)
        call = self._calls.pop(name, None)
        self._signalling.pop(name, None)
        if call is not None:
            call.participant = None

    # -- Session control ---------------------------------------------------------

    def hang_up(self, name: str) -> None:
        call = self._calls.get(name)
        if call is not None and call.sip.state is DialogState.ESTABLISHED:
            call.sip.bye()  # on_terminated removes the participant

    def participant_for(self, name: str) -> Participant | None:
        call = self._calls.get(name)
        return call.participant if call else None

    def active_calls(self) -> list[str]:
        return [
            name for name, call in self._calls.items()
            if call.sip.state is DialogState.ESTABLISHED
        ]

    def advance(self, dt: float) -> None:
        """One service round: signalling, media, participants."""
        self.pump_signalling()
        self.ah.advance(dt)
        self.clock.advance(dt)
        for call in self._calls.values():
            if call.participant is not None:
                call.participant.process_incoming()
