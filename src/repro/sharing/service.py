"""SIP-managed sharing service: signalling drives the media session.

:class:`SharingService` is the single-session, synchronous face of the
hosting core: one :class:`~repro.sharing.ah.ApplicationHost` whose
participant lifecycle is driven by SIP (the "integrated into the
existing IETF session model" story of section 2), runnable end to end
on simulated links.  All of the actual machinery — endpoints, bindings,
negotiated media wiring, participant lifecycle — lives in
:class:`~repro.sharing.server.core.SessionCore`, which the asyncio
:class:`~repro.sharing.server.SessionServer` drives at
hundreds-of-sessions scale; this class is a thin wrapper that adds the
synchronous ``advance`` loop and the deprecated call shims.

Public API::

    service = SharingService(ah, clock)
    binding = service.invite("alice", remote_endpoint)  # service owns queues
    ...
    service.advance(0.02)

The historical 4-argument ``invite(name, remote, remote_inbox,
local_inbox)`` form — caller-supplied message queues — keeps working
for one release with a :class:`DeprecationWarning`, as does
``instrumentation=`` for ``obs=``.
"""

from __future__ import annotations

import random
import warnings

from ..net.channel import ChannelConfig
from ..rtp.clock import SimulatedClock
from .server.core import SessionCore
from .signalling import SignallingBinding


class SharingService(SessionCore):
    """An AH with SIP-signalled participant lifecycle (simulated links)."""

    def __init__(
        self,
        ah,
        clock: SimulatedClock,
        uri: str = "sip:ah@host",
        channel_config: ChannelConfig | None = None,
        rng: random.Random | None = None,
        rate_bps: int | None = None,
        obs=None,
        instrumentation=None,
    ) -> None:
        if not callable(getattr(clock, "now", None)) or not callable(
            getattr(clock, "advance", None)
        ):
            raise TypeError(
                "SharingService needs a clock with now() and advance()"
            )
        super().__init__(
            ah,
            clock,
            uri=uri,
            channel_config=channel_config,
            rng=rng,
            rate_bps=rate_bps,
            obs=obs,
            instrumentation=instrumentation,
        )

    # -- Inviting (with the legacy 4-argument shim) -------------------------

    def invite(
        self,
        name: str,
        remote=None,
        remote_inbox=None,
        local_inbox=None,
        binding: SignallingBinding | None = None,
    ) -> SignallingBinding:
        """Start signalling toward a remote party; returns the binding.

        New form: ``invite(name, remote)`` — the service creates and
        owns the signalling queues; drive the remote side through the
        returned :class:`~repro.sharing.signalling.SignallingBinding`.

        Deprecated form: ``invite(name, remote, remote_inbox,
        local_inbox)`` — the caller's two queues are wrapped in a
        binding unchanged (the remote endpoint keeps whatever ``send``
        it was built with).
        """
        if remote_inbox is not None or local_inbox is not None:
            warnings.warn(
                "SharingService.invite(name, remote, remote_inbox, "
                "local_inbox) is deprecated; call invite(name, remote) and "
                "use the returned SignallingBinding",
                DeprecationWarning,
                stacklevel=2,
            )
            if remote_inbox is None or local_inbox is None:
                raise TypeError(
                    "legacy invite needs both remote_inbox and local_inbox"
                )
            if binding is not None:
                raise TypeError("pass either inboxes or a binding, not both")
            binding = SignallingBinding(
                name, to_remote=remote_inbox, to_service=local_inbox
            )
            # Legacy callers wired their endpoint's send themselves;
            # don't re-attach it to the binding.
            remote_uri = getattr(remote, "uri", None) or str(remote)
            return super().invite(name, remote_uri, binding=binding)
        return super().invite(name, remote, binding=binding)
