"""The participant: receives screen state, renders it, sends HIP events.

Responsibilities per the draft:

* join: send PLI over UDP (section 4.3) — TCP participants are synced
  by the AH on connect (section 4.4);
* maintain local windows from WindowManagerInfo — create on new
  windowID, close on disappearance, **keep the image** across
  resize/relocation (section 5.2.1);
* reassemble fragmented updates (Table 2) through a jitter buffer on
  unreliable paths, decode via the negotiated codec registry, apply
  RegionUpdate / MoveRectangle / MousePointerInfo;
* render with a local layout policy (Figures 3-5);
* report missing packets (Generic NACK) when the AH supports
  retransmissions, and request full refreshes (PLI) when reassembly
  loses updates;
* send mouse/keyboard events as HIP messages in absolute AH
  coordinates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..codecs.base import CodecError, CodecRegistry, default_registry
from ..core.errors import ProtocolError
from ..core.header import CommonHeader
from ..core.hip import (
    KeyPressed,
    KeyReleased,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
    split_text_for_key_typed,
)
from ..core.fragmentation import UpdateReassembler
from ..core.move_rectangle import MoveRectangle
from ..core.registry import (
    MSG_MOUSE_POINTER_INFO,
    MSG_MOVE_RECTANGLE,
    MSG_REGION_UPDATE,
    MSG_WINDOW_MANAGER_INFO,
)
from ..core.window_info import WindowManagerInfo, WindowRecord
from ..obs.clockutil import resolve_clock
from ..obs.instrumentation import NULL, resolve_obs
from ..rtp.feedback import PictureLossIndication, nacks_for
from ..rtp.jitter_buffer import JitterBuffer
from ..rtp.packet import RtpPacket
from ..rtp.reports import RtcpReporter, from_ntp
from ..rtp.rtcp import SenderReport, decode_compound
from ..rtp.session import RtpReceiver, RtpSender
from ..surface.framebuffer import BLACK, Framebuffer
from ..surface.geometry import Point, Rect
from .config import PT_HIP, PT_REMOTING, SharingConfig
from .layout import LayoutPolicy, OriginalLayout
from .quarantine import QuarantinePolicy
from .recovery import RecoveryManager
from .transport import PacketTransport, is_rtcp


@dataclass(slots=True)
class LocalWindow:
    """Participant-side state of one shared window."""

    record: WindowRecord  # AH-side geometry (absolute coordinates)
    local_origin: Point  # where this participant draws it
    surface: Framebuffer  # window-sized pixel store

    @property
    def ah_rect(self) -> Rect:
        r = self.record
        return Rect(r.left, r.top, r.width, r.height)


class Participant:
    """One receiver/controller of a shared session."""

    def __init__(
        self,
        participant_id: str,
        transport: PacketTransport,
        clock=None,
        config: SharingConfig | None = None,
        registry: CodecRegistry | None = None,
        layout: LayoutPolicy | None = None,
        screen_width: int = 1280,
        screen_height: int = 1024,
        ah_supports_retransmissions: bool = True,
        reorder_wait: float = 0.25,
        rtcp_interval: float | None = None,
        nack_retry_interval: float = 0.2,
        nack_backoff: float = 2.0,
        nack_max_attempts: int = 4,
        partial_update_deadline: float = 2.0,
        extension_handlers: dict | None = None,
        rng: random.Random | None = None,
        now=None,
        obs=None,
        instrumentation=None,
    ) -> None:
        self.id = participant_id
        self.transport = transport
        self._now = resolve_clock(clock, now, "Participant")
        self._obs = resolve_obs(obs, instrumentation, "Participant").scoped(
            peer=participant_id, side="participant"
        )
        #: Shared with the AH side of the session: arriving sequence
        #: numbers resolve to the update span that sent them.
        self._spans = self._obs.spans
        self.config = config or SharingConfig()
        self.registry = registry or default_registry()
        self.layout = layout or OriginalLayout()
        self.screen = Rect(0, 0, screen_width, screen_height)
        self.ah_supports_retransmissions = ah_supports_retransmissions

        r = rng or random.Random()
        self.hip_sender = RtpSender(
            PT_HIP, now=self._now, rng=r, instrumentation=self._obs
        )
        self.receiver = RtpReceiver(
            clock_rate=self.config.clock_rate, now=self._now,
            instrumentation=self._obs.scoped(stream="remoting"),
        )
        self.ssrc = self.hip_sender.ssrc
        self._media_ssrc = 0  # learned from the first remoting packet
        # Reordering only matters on unreliable paths; the wait must
        # exceed the path RTT for NACK retransmissions to arrive in time.
        self._jitter = (
            None if transport.reliable
            else JitterBuffer(
                now=self._now, max_wait=reorder_wait,
                instrumentation=self._obs,
            )
        )
        #: Message type → handler(payload, packet) for registered
        #: extension types (section 9); unhandled types are ignored.
        self.extension_handlers = dict(extension_handlers or {})
        self.nack_retry_interval = nack_retry_interval
        #: The NACK retry state machine (section 5.3.2 hardening):
        #: each missing extended sequence number walks NACK → backoff
        #: retries → capped give-up + full-refresh degradation.
        self.recovery = RecoveryManager(
            now=self._now,
            initial_interval=nack_retry_interval,
            backoff=nack_backoff,
            max_attempts=nack_max_attempts,
            instrumentation=self._obs,
        )
        self.pli_retry_interval = 1.0
        self._last_pli_time = float("-inf")
        #: Periodic RTCP: RRs on the remoting stream, SRs for HIP.
        #: These double as the liveness heartbeat — when the AH or a
        #: relay runs silence-driven eviction, its ``dead_after`` must
        #: exceed this pacing (``rtcp_interval`` None keeps the RFC
        #: 3550 5 s default).
        self.reporter = RtcpReporter(
            self._now,
            sender=self.hip_sender,
            receiver=self.receiver,
            cname=f"participant/{participant_id}",
            rng=r,
            **({} if rtcp_interval is None else {"interval": rtcp_interval}),
            instrumentation=self._obs,
        )
        #: Decode-time geometry validation against the negotiated
        #: desktop (section 8): update origins outside these bounds are
        #: rejected at ingress, before they reach app dispatch.
        self._desktop_bounds = (
            self.config.max_desktop_width, self.config.max_desktop_height
        )
        self._reassembler = UpdateReassembler(
            MSG_REGION_UPDATE,
            now=self._now,
            max_partial_age=partial_update_deadline,
            instrumentation=self._obs.scoped(stream="remoting"),
            bounds=self._desktop_bounds,
        )
        self._pointer_reassembler = UpdateReassembler(
            MSG_MOUSE_POINTER_INFO,
            now=self._now,
            max_partial_age=partial_update_deadline,
            instrumentation=self._obs.scoped(stream="pointer"),
            bounds=self._desktop_bounds,
        )
        #: Malformed packets count against the upstream sender's
        #: rejection budget; a tripped budget mutes the uplink for the
        #: cool-down (the participant has one remote: the AH).
        self.quarantine = QuarantinePolicy(
            now=self._now,
            budget=self.config.rejection_budget,
            window=self.config.rejection_window,
            cooldown=self.config.quarantine_cooldown,
            instrumentation=self._obs,
        )

        #: windowID → LocalWindow, plus z-order (bottom first).
        self.windows: dict[int, LocalWindow] = {}
        self.z_order: list[int] = []
        self.pointer_position: tuple[int, int] | None = None
        self.pointer_image: np.ndarray | None = None

        self.stats = self._obs.traffic_stats()
        self.update_latency = self._obs.latency_recorder(
            "participant.update_latency_seconds"
        )
        self.updates_applied = 0
        self.moves_applied = 0
        self.wmi_applied = 0
        self.plis_sent = 0
        self.nacks_sent = 0
        self.malformed_dropped = 0
        self._c_updates = self._obs.counter("participant.updates_applied")
        self._c_moves = self._obs.counter("participant.moves_applied")
        self._c_wmi = self._obs.counter("participant.wmi_applied")
        self._c_plis = self._obs.counter("participant.plis_sent")
        self._c_nacks = self._obs.counter("participant.nacks_sent")
        self._c_malformed = self._obs.counter("participant.malformed_dropped")
        #: Last AH SenderReport: (wall seconds, RTP timestamp) — the
        #: NTP↔RTP mapping that lets us turn update timestamps back
        #: into send-side wall time (RFC 3550 section 6.4.1).
        self._last_sr: tuple[float, int] | None = None
        self._dropped_seen = 0
        self._joined = False

    # -- Join -----------------------------------------------------------------

    def join(self) -> None:
        """Announce presence.  UDP participants request the initial full
        state with a PLI (section 4.3); TCP participants just wait for
        the AH's connect-time sync."""
        if not self.transport.reliable:
            self.send_pli()
        self._joined = True

    # -- Receive path ------------------------------------------------------------

    def process_incoming(self) -> int:
        """Drain the transport and apply everything; returns msg count."""
        applied = 0
        for raw in self.transport.receive_packets():
            if self.quarantine.is_quarantined("remote"):
                continue  # hostile upstream: drop unread until cool-down
            if is_rtcp(raw):
                self._handle_rtcp(raw)
                continue
            try:
                packet = RtpPacket.decode(raw)
            except ProtocolError as exc:
                self._reject("rtp", exc)
                continue
            if packet.payload_type != PT_REMOTING:
                continue
            self._media_ssrc = packet.ssrc
            self.receiver.receive(packet)
            sid = None
            if self._spans.enabled:
                sid = self._spans.resolve(
                    packet.ssrc, packet.sequence_number
                )
                if sid is not None:
                    self._spans.mark(sid, "receive")
            if self._jitter is not None:
                if self.recovery.note_arrival(packet.sequence_number):
                    self._spans.recovered(sid)
                self._jitter.insert(packet)
            else:
                applied += self._apply_packet(packet)
        if self._jitter is not None:
            for packet in self._jitter.pop_ready():
                applied += self._apply_packet(packet)
            # A partial update whose END fragment is never coming must
            # not stall reassembly forever (deadline expiry policy).
            self._reassembler.expire()
            self._pointer_reassembler.expire()
        self._maybe_request_recovery()
        report = self.reporter.poll()
        if report is not None:
            self.transport.send_packet(report)
            self.stats.rtcp.add(len(report), len(report))
        return applied

    def _reject(self, surface: str, exc: ProtocolError) -> None:
        """Count one malformed packet against the sender's budget."""
        self.malformed_dropped += 1
        self._c_malformed.inc()
        self.quarantine.record_rejection("remote", surface, exc)

    def _handle_rtcp(self, raw: bytes) -> None:
        """Consume AH-side RTCP (SRs feed our RR's LSR/DLSR fields)."""
        try:
            messages = decode_compound(raw)
        except ProtocolError as exc:
            self._reject("rtcp", exc)
            return
        for message in messages:
            if isinstance(message, SenderReport):
                self.reporter.saw_sender_report(message)
                self._last_sr = (
                    from_ntp(message.ntp_timestamp), message.rtp_timestamp
                )

    def _apply_packet(self, packet: RtpPacket) -> int:
        """Apply one remoting packet.

        Malformed input (:class:`ProtocolError`) is counted against the
        sender's rejection budget and dropped; anything else is a local
        bug and propagates — swallowing it here hid real defects.
        """
        try:
            return self._apply_packet_unchecked(packet)
        except ProtocolError as exc:
            self._reject("remoting", exc)
            return 0

    def _apply_packet_unchecked(self, packet: RtpPacket) -> int:
        payload = packet.payload
        if len(payload) < 4:
            return 0
        header = CommonHeader.decode(payload)
        wire = len(packet)
        if header.message_type == MSG_WINDOW_MANAGER_INFO:
            self.stats.window_info.add(len(payload), wire)
            self._apply_window_info(WindowManagerInfo.decode(payload))
            return 1
        if header.message_type == MSG_MOVE_RECTANGLE:
            self.stats.move_rectangle.add(len(payload), wire)
            self._apply_move(
                MoveRectangle.decode(payload, bounds=self._desktop_bounds)
            )
            return 1
        if header.message_type == MSG_REGION_UPDATE:
            self.stats.region_update.add(len(payload), wire)
            sid = None
            if self._spans.enabled:
                sid = self._spans.resolve(
                    packet.ssrc, packet.sequence_number
                )
                # Widens per fragment: reassemble spans first fragment
                # to the completing one.
                self._spans.mark(sid, "reassemble")
            update = self._reassembler.push(
                payload, packet.marker, packet.timestamp,
                sequence_number=packet.sequence_number,
            )
            if update is not None:
                self._apply_region_update(
                    update.window_id, update.content_pt,
                    update.left, update.top, update.data, packet.timestamp,
                    span_id=sid,
                )
                return 1
            return 0
        if header.message_type == MSG_MOUSE_POINTER_INFO:
            self.stats.pointer.add(len(payload), wire)
            update = self._pointer_reassembler.push(
                payload, packet.marker, packet.timestamp,
                sequence_number=packet.sequence_number,
            )
            if update is not None:
                self._apply_pointer(
                    update.left, update.top, update.content_pt, update.data
                )
                return 1
            return 0
        # Registered extension types get their handler; everything else
        # is an unknown type that participants MAY ignore.
        handler = self.extension_handlers.get(header.message_type)
        if handler is not None and handler(payload, packet):
            return 1
        return 0

    # -- Message application ---------------------------------------------------------

    def _apply_window_info(self, info: WindowManagerInfo) -> None:
        self.wmi_applied += 1
        self._c_wmi.inc()
        placements = self.layout.place(list(info.records), self.screen)
        new_windows: dict[int, LocalWindow] = {}
        for record in info.records:
            existing = self.windows.get(record.window_id)
            origin = placements.get(record.window_id, Point(0, 0))
            if existing is None:
                surface = Framebuffer(record.width, record.height, fill=BLACK)
            else:
                surface = existing.surface
                old = existing.record
                if (old.width, old.height) != (record.width, record.height):
                    # Resize keeps the existing image in the overlap.
                    resized = Framebuffer(record.width, record.height, fill=BLACK)
                    keep_w = min(old.width, record.width)
                    keep_h = min(old.height, record.height)
                    resized.write_rect(
                        0, 0, surface.read_rect(Rect(0, 0, keep_w, keep_h))
                    )
                    surface = resized
            new_windows[record.window_id] = LocalWindow(record, origin, surface)
        # Windows absent from the message MUST be closed.
        self.windows = new_windows
        self.z_order = [r.window_id for r in info.records]

    def _apply_move(self, msg: MoveRectangle) -> None:
        window = self.windows.get(msg.window_id)
        if window is None:
            return
        ah = window.ah_rect
        # Both rectangles must lie inside the target window: an origin
        # above/left of it would turn into a negative surface index and
        # silently wrap, a classic hostile-geometry corruption.
        for left, top in (
            (msg.source_left, msg.source_top),
            (msg.dest_left, msg.dest_top),
        ):
            if (left < ah.left or top < ah.top
                    or left + msg.width > ah.left + ah.width
                    or top + msg.height > ah.top + ah.height):
                raise ProtocolError(
                    f"MoveRectangle geometry outside window {msg.window_id}",
                    reason="semantic",
                )
        self.moves_applied += 1
        self._c_moves.inc()
        src = Rect(
            msg.source_left - ah.left,
            msg.source_top - ah.top,
            msg.width,
            msg.height,
        )
        window.surface.copy_rect(
            src, msg.dest_left - ah.left, msg.dest_top - ah.top
        )

    def _apply_region_update(
        self,
        window_id: int,
        content_pt: int,
        left: int,
        top: int,
        data: bytes,
        rtp_timestamp: int,
        span_id: int | None = None,
    ) -> None:
        window = self.windows.get(window_id)
        if window is None:
            self._spans.abandon(span_id, "no_window")
            return
        if not self.registry.supports(content_pt):
            # Un-negotiated codec: cannot render this update.
            self._spans.abandon(span_id, "codec_unsupported")
            return
        try:
            pixels = self.registry.by_payload_type(content_pt).decode(data)
        except CodecError as exc:
            self._reject("codec", exc)
            self._spans.abandon(span_id, "codec_error")
            return  # corrupt payload survived transport checks: skip
        if span_id is not None:
            self._spans.mark(span_id, "decode")
        ah = window.ah_rect
        if left < ah.left or top < ah.top:
            # Negative surface offsets would wrap numpy indexing.
            raise ProtocolError(
                f"update origin {left},{top} above window {window_id}",
                reason="semantic",
            )
        window.surface.write_rect(left - ah.left, top - ah.top, pixels)
        if span_id is not None:
            self._spans.mark(span_id, "apply")
            self._spans.complete(span_id)
        self.updates_applied += 1
        self._c_updates.inc()
        latency = self._estimate_latency(rtp_timestamp)
        if latency is not None:
            self.update_latency.record(latency)
        if self._obs.enabled:
            self._obs.event(
                "update.applied",
                rtp_ts=rtp_timestamp,
                window=window_id,
                bytes=len(data),
                update_id=span_id,
            )

    def _estimate_latency(self, rtp_timestamp: int) -> float | None:
        """AH-capture → local-apply delay via the last SR's NTP↔RTP map.

        RFC 3550 SRs pair a wall-clock (NTP) instant with the stream's
        RTP timestamp at that instant; with a shared simulation clock
        that is enough to place any update's media timestamp on the
        wall-clock axis.  Returns None before the first SR or when the
        estimate is implausible (clock skew, timestamp wrap mid-gap).
        """
        if self._last_sr is None:
            return None
        sr_wall, sr_rtp = self._last_sr
        diff = (rtp_timestamp - sr_rtp) & 0xFFFF_FFFF
        if diff >= 1 << 31:
            diff -= 1 << 32
        sent_wall = sr_wall + diff / self.config.clock_rate
        latency = self._now() - sent_wall
        if 0.0 <= latency < 60.0:
            return latency
        return None

    def _apply_pointer(
        self, left: int, top: int, content_pt: int, image_data: bytes
    ) -> None:
        self.pointer_position = (left, top)
        if image_data and self.registry.supports(content_pt):
            try:
                self.pointer_image = self.registry.by_payload_type(
                    content_pt
                ).decode(image_data)
            except CodecError as exc:
                # Keep the stored image, per section 5.2.4.
                self._reject("codec", exc)

    # -- Recovery -------------------------------------------------------------------

    def _maybe_request_recovery(self) -> None:
        """NACK fresh gaps; PLI when an update was irrecoverably lost."""
        if self.transport.reliable:
            return
        # A late joiner whose initial PLI was lost retries until the
        # first WindowManagerInfo arrives (section 4.3 join handshake).
        if (
            self._joined
            and self.wmi_applied == 0
            and self._now() - self._last_pli_time >= self.pli_retry_interval
        ):
            self.send_pli()
        # Irrecoverable loss: either the reassembler abandoned a partial
        # update, or the jitter buffer skipped a hole that no NACK
        # retransmission filled in time.  A skipped packet may have been
        # a complete single-packet update, so staleness would otherwise
        # be silent — only a full refresh (PLI) restores correctness.
        dropped = (
            self._reassembler.updates_dropped
            + self._pointer_reassembler.updates_dropped
        )
        if self._jitter is not None:
            dropped += self._jitter.sequences_skipped
        if dropped > self._dropped_seen:
            self._dropped_seen = dropped
            self.send_pli()
        if self._jitter is not None:
            # Holes the jitter buffer already stepped past (timeout or
            # capacity pressure) are beyond saving: a retransmission
            # would arrive as a late drop.  Cancel their retry state and
            # stop reporting them as missing.
            for seq in self._jitter.drain_skipped():
                self.recovery.cancel(seq)
                self.receiver.gaps.acknowledge(seq)
        if self.ah_supports_retransmissions:
            actions = self.recovery.poll(
                self.receiver.missing_sequence_numbers()
            )
            if actions.nack_now:
                self.send_nack(actions.nack_now)
            if actions.gave_up:
                # Retries exhausted: degrade gracefully.  Release the
                # jitter-buffer holes so later packets flow, stop
                # NACKing these sequences, and ask the AH for a full
                # window refresh to repair whatever the lost packets
                # carried.
                if self._spans.enabled:
                    for seq in actions.gave_up:
                        self._spans.abandon(
                            self._spans.resolve(self._media_ssrc, seq),
                            "give_up",
                        )
                for seq in actions.gave_up:
                    self.receiver.gaps.acknowledge(seq)
                self._jitter.abandon(actions.gave_up)
                self.send_pli()

    def send_pli(self) -> None:
        """Request a full refresh of the shared region (section 5.3.1)."""
        pli = PictureLossIndication(self.ssrc, self._media_ssrc)
        encoded = pli.encode()
        self._last_pli_time = self._now()
        self.transport.send_packet(encoded)
        self.plis_sent += 1
        self._c_plis.inc()
        self.stats.rtcp.add(len(encoded), len(encoded))
        if self._obs.enabled:
            self._obs.event("pli.sent")

    def send_nack(self, missing: list[int]) -> None:
        """Report missing RTP packets (section 5.3.2)."""
        nack = nacks_for(self.ssrc, self._media_ssrc, missing)
        if nack is None:
            return
        encoded = nack.encode()
        self.transport.send_packet(encoded)
        self.nacks_sent += 1
        self._c_nacks.inc()
        self.stats.rtcp.add(len(encoded), len(encoded))
        if self._obs.enabled:
            self._obs.event("nack.sent", count=len(missing))

    # -- HIP send path ------------------------------------------------------------------

    def _send_hip(self, payload: bytes) -> None:
        # HIP messages always fit one packet; Table 2 decodes
        # marker=1 + FirstPacket=1 as Not Fragmented.
        packet = self.hip_sender.next_packet(payload, marker=True)
        encoded = packet.encode()
        if self.transport.send_packet(encoded):
            self.stats.hip.add(len(payload), len(encoded))

    def _to_ah_point(self, window_id: int, local_x: int, local_y: int) -> tuple[int, int]:
        """Window-local participant coordinates → AH absolute coordinates."""
        window = self.windows[window_id]
        return (
            window.record.left + local_x,
            window.record.top + local_y,
        )

    def click(self, window_id: int, local_x: int, local_y: int,
              button: int = 1) -> None:
        """Press+release at a window-local point."""
        self.press_mouse(window_id, local_x, local_y, button)
        self.release_mouse(window_id, local_x, local_y, button)

    def press_mouse(self, window_id: int, local_x: int, local_y: int,
                    button: int = 1) -> None:
        x, y = self._to_ah_point(window_id, local_x, local_y)
        self._send_hip(MousePressed(window_id, button, x, y).encode())

    def release_mouse(self, window_id: int, local_x: int, local_y: int,
                      button: int = 1) -> None:
        x, y = self._to_ah_point(window_id, local_x, local_y)
        self._send_hip(MouseReleased(window_id, button, x, y).encode())

    def move_mouse(self, window_id: int, local_x: int, local_y: int) -> None:
        x, y = self._to_ah_point(window_id, local_x, local_y)
        self._send_hip(MouseMoved(window_id, x, y).encode())

    def wheel(self, window_id: int, local_x: int, local_y: int,
              distance: int) -> None:
        x, y = self._to_ah_point(window_id, local_x, local_y)
        self._send_hip(MouseWheelMoved(window_id, x, y, distance).encode())

    def press_key(self, window_id: int, keycode: int) -> None:
        self._send_hip(KeyPressed(window_id, keycode).encode())

    def release_key(self, window_id: int, keycode: int) -> None:
        self._send_hip(KeyReleased(window_id, keycode).encode())

    def type_text(self, window_id: int, text: str) -> None:
        """Send text as KeyTyped messages, split to fit the payload cap."""
        for message in split_text_for_key_typed(
            window_id, text, self.config.max_rtp_payload
        ):
            self._send_hip(message.encode())

    def send_raw_mouse(self, x: int, y: int, button: int = 1,
                       window_id: int = 0) -> None:
        """Press at raw AH coordinates (legitimacy-check testing)."""
        self._send_hip(MousePressed(window_id, button, x, y).encode())

    # -- Rendering & verification --------------------------------------------------------

    def render_screen(self, include_pointer: bool = True) -> Framebuffer:
        """Composite local windows (z-order) onto the local screen."""
        screen = Framebuffer(self.screen.width, self.screen.height, fill=BLACK)
        for window_id in self.z_order:
            window = self.windows.get(window_id)
            if window is None:
                continue
            screen.write_rect(
                window.local_origin.x,
                window.local_origin.y,
                window.surface.array,
            )
        if (include_pointer and self.pointer_position is not None
                and self.pointer_image is not None):
            x, y = self.pointer_position
            img = self.pointer_image
            target = Rect(x, y, img.shape[1], img.shape[0]).intersection(
                screen.bounds
            )
            if not target.is_empty():
                src = img[: target.height, : target.width]
                dst = screen.array[
                    target.top : target.bottom, target.left : target.right
                ]
                opaque = src[:, :, 3] == 255
                dst[opaque] = src[opaque]
        return screen

    def render_scaled_view(self, max_width: int, max_height: int) -> Framebuffer:
        """A shrunken screen view fitting ``max_width`` × ``max_height``.

        The participant-side scaling enhancement of section 4.2: the
        wire still carries full resolution; only the local presentation
        is reduced, with an integer box filter.
        """
        from ..surface.scale import downscale, fit_factor

        full = self.render_screen()
        factor = fit_factor(full.width, full.height, max_width, max_height)
        return Framebuffer.from_array(downscale(full.array, factor))

    def window_matches(self, window_id: int, reference: Framebuffer) -> bool:
        """Pixel-exact comparison of a local window against a reference."""
        window = self.windows.get(window_id)
        if window is None:
            return False
        return window.surface.identical_to(reference)

    def converged_with(self, manager) -> bool:
        """True when every shared window matches the AH pixel-for-pixel.

        Strict full-surface equality: only reachable when every part of
        every window has been visible at some point (the AH does not
        transmit occluded pixels).  For sessions with persistent
        occlusion use :meth:`screen_converged_with`.
        """
        if set(self.windows) != set(manager.window_ids()):
            return False
        for window_id, local in self.windows.items():
            ah_window = manager.get(window_id)
            if not local.surface.identical_to(ah_window.surface):
                return False
        return True

    def screen_converged_with(self, manager) -> bool:
        """True when the *visible composite* matches the AH's screen.

        The user-facing invariant under the original layout: what this
        participant displays equals what the AH's shared region shows,
        ignoring pixels hidden under higher windows (which the protocol
        deliberately never ships).
        """
        if set(self.windows) != set(manager.window_ids()):
            return False
        if self.z_order != manager.window_ids():
            return False
        ah_screen = manager.composite()
        local_screen = self.render_screen(include_pointer=False)
        if (ah_screen.width, ah_screen.height) != (
            local_screen.width, local_screen.height
        ):
            clip = ah_screen.bounds.intersection(local_screen.bounds)
            return not ah_screen.diff_rect(local_screen, clip)
        return ah_screen.identical_to(local_screen)
