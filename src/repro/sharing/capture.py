"""The AH capture pipeline: window state → protocol-ready operations.

Each call to :meth:`CapturePipeline.capture` turns what changed since
the previous call into a :class:`CapturedFrame`:

* a fresh :class:`~repro.core.WindowManagerInfo` when geometry, z-order
  or window set changed (section 5.2.1 triggers),
* :class:`MoveOp` for detected scrolls (section 5.2.3),
* :class:`UpdateOp` pixel rectangles for the remaining damage, and
* pointer state for whichever pointer model is active.

Coordinates in ops are absolute AH screen coordinates (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.window_info import WindowManagerInfo, WindowRecord
from ..surface.cursor import PointerState
from ..surface.framebuffer import Framebuffer
from ..surface.geometry import Rect
from ..surface.region import Region
from ..surface.scroll import ScrollDetector
from ..surface.window import WindowManager, layout_signature


@dataclass(frozen=True, slots=True)
class UpdateOp:
    """Fresh pixels for one absolute-coordinate rectangle of a window."""

    window_id: int
    left: int  # absolute screen coordinate
    top: int
    pixels: np.ndarray  # (h, w, 4) uint8


@dataclass(frozen=True, slots=True)
class MoveOp:
    """A detected scroll: copy source rect to destination (absolute)."""

    window_id: int
    source_left: int
    source_top: int
    width: int
    height: int
    dest_left: int
    dest_top: int


@dataclass(frozen=True, slots=True)
class PointerOp:
    """Pointer moved and/or changed icon (explicit pointer model)."""

    left: int
    top: int
    image: np.ndarray | None  # None = position-only


@dataclass(slots=True)
class CapturedFrame:
    """Everything one capture pass produced."""

    window_info: WindowManagerInfo | None = None
    moves: list[MoveOp] = field(default_factory=list)
    updates: list[UpdateOp] = field(default_factory=list)
    pointer: PointerOp | None = None

    @property
    def is_empty(self) -> bool:
        return (
            self.window_info is None
            and not self.moves
            and not self.updates
            and self.pointer is None
        )

    def damage_area(self) -> int:
        return sum(op.pixels.shape[0] * op.pixels.shape[1] for op in self.updates)


def window_manager_info(manager: WindowManager) -> WindowManagerInfo:
    """Snapshot the manager into the wire message, bottom-first."""
    records = tuple(
        WindowRecord(
            window_id=g.window_id,
            group_id=g.group_id,
            left=g.rect.left,
            top=g.rect.top,
            width=g.rect.width,
            height=g.rect.height,
        )
        for g in manager.geometries()
    )
    return WindowManagerInfo(records)


class CapturePipeline:
    """Stateful change extractor over a :class:`WindowManager`."""

    def __init__(
        self,
        manager: WindowManager,
        pointer: PointerState | None = None,
        scroll_detection: bool = True,
        max_update_rects: int = 16,
        pointer_in_band: bool = False,
    ) -> None:
        self.manager = manager
        self.pointer = pointer
        self.scroll_detection = scroll_detection
        self.max_update_rects = max_update_rects
        #: Section 4.2 first pointer model: the pointer image rides
        #: inside RegionUpdate pixels instead of MousePointerInfo.
        self.pointer_in_band = pointer_in_band
        self._prev_pointer_rect: Rect | None = None
        self._scroll_detector = ScrollDetector()
        self._prev_surfaces: dict[int, Framebuffer] = {}
        #: Per-window visible region (window-local) at the last capture.
        #: Newly exposed area was never shipped while occluded, so it
        #: must be re-sent when an occluder moves away.
        self._prev_visible: dict[int, Region] = {}
        self._prev_layout = None  # forces a WMI on the first capture
        self.frames_captured = 0
        self.scrolls_detected = 0

    # -- Full state (PLI / new participant) --------------------------------

    def full_frame(self) -> CapturedFrame:
        """The complete current state: WMI + full image of every window.

        What the AH sends "after receiving a PLI message" or right
        after a TCP participant connects (sections 4.3/4.4).
        """
        frame = CapturedFrame(window_info=window_manager_info(self.manager))
        for window in self.manager:
            pixels = self.read_window_rect(window, window.local_bounds)
            frame.updates.append(
                UpdateOp(
                    window_id=window.window_id,
                    left=window.rect.left,
                    top=window.rect.top,
                    pixels=pixels,
                )
            )
        if self.pointer is not None and not self.pointer_in_band:
            frame.pointer = PointerOp(
                self.pointer.x, self.pointer.y, np.array(self.pointer.image)
            )
        return frame

    # -- Incremental capture --------------------------------------------------

    def capture(self) -> CapturedFrame:
        """Extract changes since the previous capture."""
        self.frames_captured += 1
        frame = CapturedFrame()

        pointer_moved = pointer_dirty = False
        if self.pointer is not None:
            pointer_moved, pointer_dirty = self.pointer.take_pending()
        if self.pointer_in_band and (pointer_moved or pointer_dirty):
            # The pointer is ordinary pixels in this model: its old and
            # new footprints must be repainted through RegionUpdates.
            self._damage_pointer_footprints()

        layout = layout_signature(self.manager.geometries())
        if layout != self._prev_layout:
            frame.window_info = window_manager_info(self.manager)
            self._prev_layout = layout

        damage_by_window = self.manager.harvest_damage()
        for window in self.manager:
            wid = window.window_id
            damage = damage_by_window.get(wid)
            prev = self._prev_surfaces.get(wid)
            # Occlusion change: pixels that just became visible were
            # clipped out of earlier damage and are stale downstream.
            visible = self.manager.visible_region(wid).translated(
                -window.rect.left, -window.rect.top
            )
            exposed = visible.subtract(
                self._prev_visible.get(wid, Region())
            )
            self._prev_visible[wid] = visible
            if not exposed.is_empty():
                damage = exposed if damage is None else damage.union(exposed)
            if damage is not None and not damage.is_empty():
                remaining = damage
                if self.scroll_detection and prev is not None:
                    remaining = self._extract_scroll(window, prev, damage, frame)
                remaining = remaining.simplified(self.max_update_rects)
                for rect in remaining:
                    frame.updates.append(
                        UpdateOp(
                            window_id=wid,
                            left=window.rect.left + rect.left,
                            top=window.rect.top + rect.top,
                            pixels=self.read_window_rect(window, rect),
                        )
                    )
            # Refresh the snapshot for the next scroll detection pass.
            if damage is not None or prev is None or (
                prev.width, prev.height
            ) != (window.rect.width, window.rect.height):
                self._prev_surfaces[wid] = window.surface.copy()
        # Drop state of closed windows.
        live = set(self.manager.window_ids())
        for wid in list(self._prev_surfaces):
            if wid not in live:
                del self._prev_surfaces[wid]
        for wid in list(self._prev_visible):
            if wid not in live:
                del self._prev_visible[wid]

        if (self.pointer is not None and not self.pointer_in_band
                and (pointer_moved or pointer_dirty)):
            frame.pointer = PointerOp(
                self.pointer.x,
                self.pointer.y,
                np.array(self.pointer.image) if pointer_dirty else None,
            )
        return frame

    def read_window_rect(self, window, rect: Rect) -> np.ndarray:
        """Read update pixels for a window-local rect, pointer-aware.

        The single pixel source for every send path (incremental,
        full refresh, coalesced re-read) so the in-band pointer model
        stays consistent everywhere.
        """
        pixels = window.surface.read_rect(rect)
        if self.pointer_in_band and self.pointer is not None:
            pixels = self._overlay_pointer(
                pixels, window.rect.left + rect.left, window.rect.top + rect.top
            )
        return pixels

    # -- In-band pointer support ------------------------------------------

    def _pointer_rect(self) -> Rect:
        assert self.pointer is not None
        image = self.pointer.image
        return Rect(
            self.pointer.x, self.pointer.y, image.shape[1], image.shape[0]
        )

    def _damage_pointer_footprints(self) -> None:
        """Mark old and new pointer positions as window damage."""
        current = self._pointer_rect()
        footprints = [current]
        if self._prev_pointer_rect is not None:
            footprints.append(self._prev_pointer_rect)
        self._prev_pointer_rect = current
        for rect in footprints:
            for window in self.manager:
                # Clip the absolute footprint to the window, then
                # translate into window-local damage coordinates.
                clipped = rect.intersection(window.rect)
                if clipped.is_empty():
                    continue
                window.add_damage(
                    clipped.translated(-window.rect.left, -window.rect.top)
                )

    def _overlay_pointer(self, pixels: np.ndarray, abs_left: int,
                         abs_top: int) -> np.ndarray:
        """Paint the pointer into an update block where it overlaps."""
        assert self.pointer is not None
        footprint = self._pointer_rect()
        block = Rect(abs_left, abs_top, pixels.shape[1], pixels.shape[0])
        overlap = block.intersection(footprint)
        if overlap.is_empty():
            return pixels
        out = np.array(pixels, copy=True)
        image = self.pointer.image
        src = image[
            overlap.top - footprint.top : overlap.bottom - footprint.top,
            overlap.left - footprint.left : overlap.right - footprint.left,
        ]
        dst = out[
            overlap.top - abs_top : overlap.bottom - abs_top,
            overlap.left - abs_left : overlap.right - abs_left,
        ]
        opaque = src[:, :, 3] == 255
        dst[opaque] = src[opaque]
        return out

    def _extract_scroll(
        self,
        window,
        prev: Framebuffer,
        damage: Region,
        frame: CapturedFrame,
    ) -> Region:
        """Try to explain the damage as a scroll; return leftover damage."""
        area = damage.bounds()
        op = self._scroll_detector.detect(prev, window.surface, area)
        if op is None:
            return damage
        self.scrolls_detected += 1
        base_left = window.rect.left
        base_top = window.rect.top
        frame.moves.append(
            MoveOp(
                window_id=window.window_id,
                source_left=base_left + op.source.left,
                source_top=base_top + op.source.top,
                width=op.source.width,
                height=op.source.height,
                dest_left=base_left + op.source.left,
                dest_top=base_top + op.dest_top,
            )
        )
        # The moved area is *mostly* explained — detection tolerates a
        # small mismatch (cursor, highlight) that must still be
        # repainted, along with the exposed band and any damage outside
        # the scrolled area.
        moved_dest = op.destination
        leftover = damage.subtract_rect(moved_dest)
        leftover = leftover.union_rect(op.exposed)
        leftover = leftover.union(op.mismatch_region(prev, window.surface))
        return leftover
