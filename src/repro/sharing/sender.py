"""Per-destination update scheduling with backlog-aware coalescing.

The section 7 implementation note is the heart of this module:

    "Application hosts shouldn't blindly send every screen update they
    observed to the participants.  Instead, they should monitor the
    state of their TCP transmission buffers ... and only send the most
    recent screen data when there is no backlog.  This will prevent
    screen latency for rapidly-changing images."

With coalescing on, a frame that cannot be sent immediately is folded
into a pending damage set; when the path clears, the scheduler re-reads
the *current* pixels for that damage — intermediate states are never
transmitted.  With coalescing off (the E4 baseline) every frame queues.
For UDP destinations the same logic runs against a token bucket instead
of a TCP backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.ratecontrol import TokenBucket
from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from ..surface.geometry import Rect
from ..surface.region import Region
from ..surface.window import WindowManager
from .capture import CapturedFrame, PointerOp, UpdateOp, window_manager_info
from .config import SharingConfig
from .encoder import FrameEncoder, StampedPacket
from .retransmit import RetransmitCache
from .transport import PacketTransport


@dataclass(slots=True)
class _Pending:
    """Coalesced state waiting for the path to clear."""

    needs_window_info: bool = False
    #: window_id → damage Region in window-local coordinates.
    damage: dict[int, Region] = field(default_factory=dict)
    pointer: PointerOp | None = None
    #: When the oldest still-unsent damage was captured.
    oldest_capture: float | None = None

    @property
    def is_empty(self) -> bool:
        return (
            not self.needs_window_info
            and not self.damage
            and self.pointer is None
        )


class UpdateScheduler:
    """Owns one destination's send queue, pacing, and retransmissions."""

    def __init__(
        self,
        transport: PacketTransport,
        encoder: FrameEncoder,
        manager: WindowManager,
        config: SharingConfig,
        now,
        rate_limiter: TokenBucket | None = None,
        pixel_reader=None,
        instrumentation=None,
    ) -> None:
        self.transport = transport
        self.encoder = encoder
        self.manager = manager
        self.config = config
        self._now = as_now(now)
        self.rate_limiter = rate_limiter
        #: (window, local_rect) → pixels; overridden by the AH so the
        #: in-band pointer model covers re-reads and full refreshes.
        self._read_pixels = pixel_reader or (
            lambda window, rect: window.surface.read_rect(rect)
        )
        obs = instrumentation if instrumentation is not None else NULL
        self._spans = obs.spans
        self.retransmit_cache = RetransmitCache(
            config.retransmit_cache_packets if config.retransmissions else 0,
            instrumentation=obs,
        )
        self._queue: list[StampedPacket] = []  # encoded, awaiting path
        self._pending = _Pending()
        self.frames_coalesced = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.keepalives_sent = 0
        self._last_send_time = self._now()
        self.updates_sent_stale_after: list[float] = []
        self._c_packets = obs.counter("scheduler.packets_sent")
        self._c_bytes = obs.counter("scheduler.bytes_sent")
        self._c_keepalives = obs.counter("scheduler.keepalives_sent")
        self._c_coalesced = obs.counter("scheduler.frames_coalesced")
        self._c_retransmits = obs.counter("scheduler.retransmit_packets")
        self._g_queue = obs.gauge("scheduler.queue_depth")
        self._h_staleness = obs.histogram("scheduler.update_staleness_seconds")

    # -- Submission ------------------------------------------------------------

    def submit(self, frame: CapturedFrame) -> None:
        """Offer a captured frame; send now or coalesce for later."""
        if frame.is_empty:
            return
        if not self.config.backlog_coalescing:
            self._queue.extend(self.encoder.encode_frame(frame))
            self.flush()
            return
        if self._path_clear() and not self._queue and self._pending.is_empty:
            self._queue.extend(self.encoder.encode_frame(frame))
            self.flush()
            return
        self._coalesce(frame)
        self.flush()

    def submit_full_refresh(self) -> None:
        """Queue the full current state (PLI response / new participant)."""
        self._pending = _Pending()  # full refresh supersedes everything
        frame = CapturedFrame(window_info=window_manager_info(self.manager))
        for window in self.manager:
            frame.updates.append(
                UpdateOp(
                    window_id=window.window_id,
                    left=window.rect.left,
                    top=window.rect.top,
                    pixels=self._read_pixels(window, window.local_bounds),
                )
            )
        self._queue.extend(self.encoder.encode_frame(frame))
        self.flush()

    def _coalesce(self, frame: CapturedFrame) -> None:
        """Fold a frame into pending state: keep damage, drop stale data."""
        self.frames_coalesced += 1
        self._c_coalesced.inc()
        pending = self._pending
        if frame.window_info is not None:
            pending.needs_window_info = True
        for move in frame.moves:
            # A move cannot be replayed later against fresher pixels —
            # record its destination as plain damage instead.
            self._add_damage(
                move.window_id,
                Rect(move.dest_left, move.dest_top, move.width, move.height),
            )
        for update in frame.updates:
            h, w = update.pixels.shape[:2]
            self._add_damage(update.window_id, Rect(update.left, update.top, w, h))
        if frame.pointer is not None:
            prior = pending.pointer
            image = frame.pointer.image
            if image is None and prior is not None and prior.image is not None:
                image = prior.image  # do not lose an unsent icon change
            pending.pointer = PointerOp(frame.pointer.left, frame.pointer.top, image)
        if pending.oldest_capture is None:
            pending.oldest_capture = self._now()

    def _add_damage(self, window_id: int, absolute_rect: Rect) -> None:
        if not self.manager.has(window_id):
            return  # window closed while we were backed up
        window = self.manager.get(window_id)
        local = absolute_rect.translated(
            -window.rect.left, -window.rect.top
        ).intersection(window.local_bounds)
        if local.is_empty():
            return
        region = self._pending.damage.get(window_id, Region())
        self._pending.damage[window_id] = region.union_rect(local)

    # -- Draining ----------------------------------------------------------------

    def flush(self) -> int:
        """Push queued packets down the path; returns packets sent."""
        sent = 0
        while self._queue:
            stamped = self._queue[0]
            encoded = stamped.packet.encode()
            if not self._admit(len(encoded)):
                break
            if not self.transport.send_packet(encoded):
                if self.transport.reliable:
                    break  # stream backpressure: retry after drain
                # Datagram path: losses are the network's business.
            self.retransmit_cache.store(
                stamped.packet.sequence_number, encoded
            )
            self._queue.pop(0)
            sent += 1
            self.packets_sent += 1
            self.bytes_sent += len(encoded)
            now = self._now()
            self._last_send_time = now
            stale = now - stamped.capture_time
            self.updates_sent_stale_after.append(stale)
            self._c_packets.inc()
            self._c_bytes.inc(len(encoded))
            self._h_staleness.observe(stale)
            if stamped.update_id is not None:
                # Widens per fragment: send spans first to last packet.
                self._spans.mark(stamped.update_id, "send")
        if sent:
            self._g_queue.set(len(self._queue))
        return sent

    def pump(self) -> int:
        """Periodic service: flush the queue, then materialise pending.

        Pending damage is encoded from the windows' *current* pixels —
        the "most recent screen data" rule.
        """
        sent = self.flush()
        self._maybe_keepalive()
        if not self._queue and not self._pending.is_empty and self._path_clear():
            frame = self._materialise_pending()
            self._queue.extend(self.encoder.encode_frame(frame))
            sent += self.flush()
        self._g_queue.set(len(self._queue))
        return sent

    def _materialise_pending(self) -> CapturedFrame:
        pending = self._pending
        self._pending = _Pending()
        frame = CapturedFrame()
        if pending.needs_window_info:
            frame.window_info = window_manager_info(self.manager)
        for window_id, region in pending.damage.items():
            if not self.manager.has(window_id):
                continue
            window = self.manager.get(window_id)
            for rect in region.simplified(self.config.max_update_rects):
                clipped = rect.intersection(window.local_bounds)
                if clipped.is_empty():
                    continue
                frame.updates.append(
                    UpdateOp(
                        window_id=window_id,
                        left=window.rect.left + clipped.left,
                        top=window.rect.top + clipped.top,
                        pixels=self._read_pixels(window, clipped),
                    )
                )
        frame.pointer = pending.pointer
        return frame

    def _maybe_keepalive(self) -> None:
        """Keep the RTP sequence space moving on idle unreliable paths.

        Without this, a datagram lost at the *tail* of a burst leaves
        no later packet to reveal the gap, and the receiver stays
        silently stale (RFC 6263 motivates exactly this keepalive).
        The payload is message type 0 — unassigned in the registry, so
        participants ignore it while their gap detectors account for
        the sequence number.
        """
        interval = self.config.keepalive_interval
        if interval <= 0 or self.transport.reliable:
            return
        if self._queue:
            # Not idle — just starved.  A keepalive here would consume
            # a sequence number *between* fragments of one update and
            # trip the reassembler's continuity check downstream.
            return
        now = self._now()
        if now - self._last_send_time < interval:
            return
        packet = self.encoder.sender.next_packet(b"\x00\x00\x00\x00")
        encoded = packet.encode()
        if self._admit(len(encoded)):
            self.transport.send_packet(encoded)
            self.retransmit_cache.store(packet.sequence_number, encoded)
            self.keepalives_sent += 1
            self._c_keepalives.inc()
            self._last_send_time = now

    # -- Path state -----------------------------------------------------------------

    def _path_clear(self) -> bool:
        if self.transport.reliable:
            return self.transport.backlog_bytes() == 0
        if self.rate_limiter is not None:
            return self.rate_limiter.available() >= self.config.max_rtp_payload
        return True

    def _admit(self, size: int) -> bool:
        if self.transport.reliable:
            return self.transport.can_send(size)
        if self.rate_limiter is not None:
            return self.rate_limiter.try_consume(size)
        return True

    # -- Feedback handling -----------------------------------------------------------

    def retransmit(self, sequence_numbers: list[int]) -> int:
        """Replay cached packets named by a Generic NACK."""
        count = 0
        for encoded in self.retransmit_cache.lookup_many(sequence_numbers):
            if self.transport.send_packet(encoded):
                count += 1
                self.bytes_sent += len(encoded)
                self.encoder.stats.retransmit.add(0, len(encoded))
        if count:
            self._c_retransmits.inc(count)
        return count

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def has_pending(self) -> bool:
        return not self._pending.is_empty
