"""Packet quarantine: degrade hostile senders instead of wedging.

Section 8 of the draft warns that sharing "inherently exposes the
shared applications to risks by malicious participants".  Strict
decoders (``repro.core.errors``) turn hostile bytes into
:class:`~repro.core.errors.ProtocolError`; this module decides what the
ingress does next:

* every rejected packet increments
  ``hardening.packets_rejected{surface=,reason=}``;
* a peer exceeding ``budget`` rejections inside a ``window``-second
  sliding window is quarantined (``hardening.peers_quarantined``) and
  its packets are dropped unread for ``cooldown`` seconds.

The budget tolerates the occasional corrupt packet a lossy network
produces; only a sustained stream of garbage — a fuzzer, a hostile
peer, a badly broken implementation — trips the quarantine.
"""

from __future__ import annotations

from collections import deque

from ..core.errors import classify
from ..obs.instrumentation import NULL


class QuarantinePolicy:
    """Sliding-window rejection budget with per-peer cool-down.

    One instance guards one ingress (a Participant's uplink, the AH's
    participant set, the BFCP server's connections); peers are named by
    whatever identifier that ingress has — participant id, "remote",
    an SSRC.
    """

    def __init__(
        self,
        now,
        budget: int = 16,
        window: float = 5.0,
        cooldown: float = 30.0,
        instrumentation=None,
    ) -> None:
        if budget < 1:
            raise ValueError("rejection budget must be >= 1")
        if window <= 0 or cooldown <= 0:
            raise ValueError("window and cooldown must be positive")
        self._now = now
        self.budget = budget
        self.window = window
        self.cooldown = cooldown
        self._rejections: dict[str, deque[float]] = {}
        self._quarantined_until: dict[str, float] = {}
        self.packets_rejected = 0
        self.peers_quarantined = 0
        self._obs = instrumentation if instrumentation is not None else NULL
        self._c_quarantined = self._obs.counter("hardening.peers_quarantined")

    def record_rejection(self, peer: str, surface: str,
                         exc: BaseException | None = None) -> bool:
        """Count one rejected packet; True when ``peer`` just got
        quarantined by it."""
        reason = classify(exc) if exc is not None else "malformed"
        self.packets_rejected += 1
        self._obs.counter(
            "hardening.packets_rejected", surface=surface, reason=reason
        ).inc()
        now = self._now()
        history = self._rejections.setdefault(peer, deque())
        history.append(now)
        while history and history[0] <= now - self.window:
            history.popleft()
        if len(history) >= self.budget and not self.is_quarantined(peer):
            self._quarantined_until[peer] = now + self.cooldown
            history.clear()
            self.peers_quarantined += 1
            self._c_quarantined.inc()
            if self._obs.enabled:
                self._obs.event("peer.quarantined", peer=peer,
                                surface=surface, cooldown=self.cooldown)
            return True
        return False

    def is_quarantined(self, peer: str) -> bool:
        """True while ``peer``'s cool-down has not elapsed."""
        until = self._quarantined_until.get(peer)
        if until is None:
            return False
        if self._now() >= until:
            del self._quarantined_until[peer]
            return False
        return True

    def forget(self, peer: str) -> None:
        """Drop all state for a departed peer."""
        self._rejections.pop(peer, None)
        self._quarantined_until.pop(peer, None)

    @property
    def quarantined_peers(self) -> list[str]:
        now = self._now()
        return sorted(
            peer for peer, until in self._quarantined_until.items()
            if until > now
        )
