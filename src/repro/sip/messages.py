"""SIP message subset (RFC 3261) for sharing-session setup.

Section 4.2: "The Session Initiation Protocol (SIP) can be used to
intiate and control remote access."  This module implements the textual
message format for the methods a sharing session needs — INVITE, ACK,
BYE and their responses — carrying SDP bodies.  Transport is assumed
reliable (SIP-over-TCP semantics), so the RFC's UDP retransmission
timers are out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ProtocolError

SIP_VERSION = "SIP/2.0"
METHODS = ("INVITE", "ACK", "BYE", "OPTIONS", "CANCEL")

#: Hard cap on one SIP message (head + body); session-setup messages are
#: well under 4 KiB in practice.
MAX_SIP_BYTES = 65536
#: Hard cap on header lines per message.
MAX_HEADERS = 128


class SipError(ProtocolError):
    """Raised on malformed SIP messages or protocol violations."""


def _fold_header_name(name: str) -> str:
    """Canonical Header-Name capitalisation."""
    return "-".join(part.capitalize() for part in name.split("-"))


@dataclass(slots=True)
class SipMessage:
    """One SIP request or response with headers and an optional body."""

    # Request fields (None for responses).
    method: str | None = None
    uri: str | None = None
    # Response fields (None for requests).
    status_code: int | None = None
    reason: str | None = None
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""

    # -- Constructors ------------------------------------------------------

    @classmethod
    def request(cls, method: str, uri: str, headers: dict[str, str],
                body: str = "") -> "SipMessage":
        if method not in METHODS:
            raise SipError(f"unsupported method: {method}")
        return cls(method=method, uri=uri, headers=dict(headers), body=body)

    @classmethod
    def response(cls, status_code: int, reason: str, headers: dict[str, str],
                 body: str = "") -> "SipMessage":
        if not 100 <= status_code <= 699:
            raise SipError(f"status code out of range: {status_code}")
        return cls(status_code=status_code, reason=reason,
                   headers=dict(headers), body=body)

    # -- Introspection --------------------------------------------------------

    @property
    def is_request(self) -> bool:
        return self.method is not None

    def header(self, name: str) -> str | None:
        return self.headers.get(_fold_header_name(name))

    def require_header(self, name: str) -> str:
        value = self.header(name)
        if value is None:
            raise SipError(f"missing required header: {name}")
        return value

    def cseq(self) -> tuple[int, str]:
        """(sequence number, method) from the CSeq header."""
        raw = self.require_header("CSeq")
        parts = raw.split()
        if len(parts) != 2:
            raise SipError(f"malformed CSeq: {raw!r}")
        try:
            return int(parts[0]), parts[1]
        except ValueError as exc:
            raise SipError(f"malformed CSeq number: {raw!r}") from exc

    # -- Wire format --------------------------------------------------------------

    def serialize(self) -> str:
        if self.is_request:
            start = f"{self.method} {self.uri} {SIP_VERSION}"
        else:
            start = f"{SIP_VERSION} {self.status_code} {self.reason}"
        headers = dict(self.headers)
        body_bytes = self.body.encode("utf-8")
        headers["Content-Length"] = str(len(body_bytes))
        if self.body and "Content-Type" not in headers:
            headers["Content-Type"] = "application/sdp"
        lines = [start]
        for name, value in headers.items():
            lines.append(f"{_fold_header_name(name)}: {value}")
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    @classmethod
    def parse(cls, text: str) -> "SipMessage":
        if len(text) > MAX_SIP_BYTES:
            raise SipError(f"SIP message exceeds {MAX_SIP_BYTES} bytes",
                           reason="overflow")
        head, _, body = text.partition("\r\n\r\n")
        if not _:
            head, _, body = text.partition("\n\n")
        lines = head.replace("\r\n", "\n").split("\n")
        if not lines or not lines[0].strip():
            raise SipError("empty SIP message", reason="truncated")
        start = lines[0].strip()
        message = cls._parse_start_line(start)
        for line in lines[1:]:
            if not line.strip():
                continue
            if len(message.headers) >= MAX_HEADERS:
                raise SipError(f"more than {MAX_HEADERS} header lines",
                               reason="overflow")
            if ":" not in line:
                raise SipError(f"malformed header line: {line!r}")
            name, _, value = line.partition(":")
            message.headers[_fold_header_name(name.strip())] = value.strip()
        declared = message.headers.get("Content-Length")
        if declared is not None:
            try:
                length = int(declared)
            except ValueError as exc:
                raise SipError(f"bad Content-Length: {declared!r}") from exc
            body = body[:length] if length <= len(body.encode("utf-8")) else body
        message.body = body
        return message

    @classmethod
    def _parse_start_line(cls, start: str) -> "SipMessage":
        if start.startswith(SIP_VERSION):
            parts = start.split(" ", 2)
            if len(parts) < 3:
                raise SipError(f"malformed status line: {start!r}")
            try:
                code = int(parts[1])
            except ValueError as exc:
                raise SipError(f"bad status code: {parts[1]!r}") from exc
            if not 100 <= code <= 699:
                raise SipError(f"status code out of range: {code}",
                               reason="semantic")
            return cls(status_code=code, reason=parts[2])
        parts = start.split(" ")
        if len(parts) != 3 or parts[2] != SIP_VERSION:
            raise SipError(f"malformed request line: {start!r}",
                           reason="bad_magic")
        if parts[0] not in METHODS:
            raise SipError(f"unsupported method: {parts[0]}",
                           reason="bad_magic")
        return cls(method=parts[0], uri=parts[1])
