"""SIP session setup subset (RFC 3261) for sharing sessions."""

from .dialog import DialogState, SipEndpoint
from .messages import METHODS, SipError, SipMessage

__all__ = ["DialogState", "METHODS", "SipEndpoint", "SipError", "SipMessage"]
