"""SIP dialog state machines for session setup.

One INVITE dialog establishes one sharing session: the AH (caller)
sends INVITE carrying its SDP offer (section 10); the participant
answers 200 OK with the negotiated SDP; ACK completes the three-way
handshake; BYE from either side tears the session down.  Transport is
an abstract ``send(text)`` callable over a reliable channel.
"""

from __future__ import annotations

import enum
import random
from typing import Callable

from .messages import SipError, SipMessage


class DialogState(enum.Enum):
    IDLE = "idle"
    INVITING = "inviting"  # UAC: INVITE sent, awaiting final response
    RINGING = "ringing"  # UAS: INVITE received, awaiting local answer
    ESTABLISHED = "established"
    TERMINATED = "terminated"


def _tag(rng: random.Random) -> str:
    return f"{rng.randrange(1 << 32):08x}"


class SipEndpoint:
    """One user agent able to originate and accept sharing dialogs."""

    def __init__(
        self,
        uri: str,
        send: Callable[[str], None],
        rng: random.Random | None = None,
        on_established: Callable[[str], None] | None = None,
        on_terminated: Callable[[], None] | None = None,
    ) -> None:
        self.uri = uri
        self._send = send
        self._rng = rng or random.Random()
        self.state = DialogState.IDLE
        self.call_id: str | None = None
        self.local_tag: str | None = None
        self.remote_tag: str | None = None
        self.remote_uri: str | None = None
        self._cseq = 0
        self.local_sdp: str = ""
        self.remote_sdp: str = ""
        self.on_established = on_established or (lambda _sdp: None)
        self.on_terminated = on_terminated or (lambda: None)
        #: Pending inbound INVITE awaiting accept()/reject().
        self._pending_invite: SipMessage | None = None

    def attach_transport(self, send: Callable[[str], None]) -> None:
        """Re-point this endpoint's outbound signalling path.

        Service-owned signalling (a
        :class:`~repro.sharing.signalling.SignallingBinding`) creates
        the message queues *after* the caller built their endpoint, so
        the binding attaches itself here rather than requiring the
        ``send`` callable at construction time.
        """
        self._send = send

    # -- Identity helpers ------------------------------------------------------

    def _from_header(self) -> str:
        return f"<{self.uri}>;tag={self.local_tag}"

    def _to_header(self) -> str:
        if self.remote_tag:
            return f"<{self.remote_uri}>;tag={self.remote_tag}"
        return f"<{self.remote_uri}>"

    def _base_headers(self, cseq_method: str) -> dict[str, str]:
        self._cseq += 1
        return {
            "Via": f"SIP/2.0/TCP {self.uri.split('@')[-1]}",
            "From": self._from_header(),
            "To": self._to_header(),
            "Call-Id": self.call_id or "",
            "Cseq": f"{self._cseq} {cseq_method}",
            "Contact": f"<{self.uri}>",
        }

    @staticmethod
    def _extract_tag(header_value: str) -> str | None:
        for part in header_value.split(";")[1:]:
            key, _, value = part.strip().partition("=")
            if key == "tag":
                return value
        return None

    # -- UAC: originate ----------------------------------------------------------

    def invite(self, remote_uri: str, sdp_offer: str) -> None:
        """Send INVITE with our SDP offer (the AH's role)."""
        if self.state is not DialogState.IDLE:
            raise SipError(f"cannot INVITE in state {self.state}")
        self.remote_uri = remote_uri
        self.call_id = f"{_tag(self._rng)}@{self.uri.split('@')[-1]}"
        self.local_tag = _tag(self._rng)
        self.local_sdp = sdp_offer
        headers = self._base_headers("INVITE")
        self.state = DialogState.INVITING
        self._send(
            SipMessage.request("INVITE", remote_uri, headers, sdp_offer)
            .serialize()
        )

    def bye(self) -> None:
        """Terminate an established dialog."""
        if self.state is not DialogState.ESTABLISHED:
            raise SipError(f"cannot BYE in state {self.state}")
        headers = self._base_headers("BYE")
        self.state = DialogState.TERMINATED
        self._send(
            SipMessage.request("BYE", self.remote_uri or "", headers)
            .serialize()
        )
        self.on_terminated()

    # -- UAS: answer ----------------------------------------------------------------

    def accept(self, sdp_answer: str) -> None:
        """Answer the pending INVITE with 200 OK + SDP (participant role)."""
        invite = self._pending_invite
        if self.state is not DialogState.RINGING or invite is None:
            raise SipError(f"no INVITE to accept in state {self.state}")
        self.local_sdp = sdp_answer
        headers = {
            "Via": invite.require_header("Via"),
            "From": invite.require_header("From"),
            "To": f"{invite.require_header('To')};tag={self.local_tag}",
            "Call-Id": invite.require_header("Call-Id"),
            "Cseq": invite.require_header("Cseq"),
            "Contact": f"<{self.uri}>",
        }
        self._pending_invite = None
        self._send(SipMessage.response(200, "OK", headers, sdp_answer).serialize())

    def reject(self, status_code: int = 603, reason: str = "Decline") -> None:
        invite = self._pending_invite
        if self.state is not DialogState.RINGING or invite is None:
            raise SipError(f"no INVITE to reject in state {self.state}")
        headers = {
            "Via": invite.require_header("Via"),
            "From": invite.require_header("From"),
            "To": invite.require_header("To"),
            "Call-Id": invite.require_header("Call-Id"),
            "Cseq": invite.require_header("Cseq"),
        }
        self._pending_invite = None
        self.state = DialogState.TERMINATED
        self._send(SipMessage.response(status_code, reason, headers).serialize())

    # -- Inbound dispatch -----------------------------------------------------------------

    def receive(self, text: str) -> None:
        """Feed one inbound SIP message."""
        message = SipMessage.parse(text)
        if message.is_request:
            self._receive_request(message)
        else:
            self._receive_response(message)

    def _receive_request(self, message: SipMessage) -> None:
        if message.method == "INVITE":
            if self.state is not DialogState.IDLE:
                return  # busy: a fuller stack would 486
            self.call_id = message.require_header("Call-Id")
            self.local_tag = _tag(self._rng)
            self.remote_tag = self._extract_tag(message.require_header("From"))
            self.remote_uri = message.require_header("Contact").strip("<>")
            self.remote_sdp = message.body
            self._pending_invite = message
            self.state = DialogState.RINGING
        elif message.method == "ACK":
            if self.state is DialogState.RINGING and self._pending_invite is None:
                self.state = DialogState.ESTABLISHED
                self.on_established(self.remote_sdp)
        elif message.method == "BYE":
            if self.state in (DialogState.ESTABLISHED, DialogState.RINGING):
                headers = {
                    "Via": message.require_header("Via"),
                    "From": message.require_header("From"),
                    "To": message.require_header("To"),
                    "Call-Id": message.require_header("Call-Id"),
                    "Cseq": message.require_header("Cseq"),
                }
                self.state = DialogState.TERMINATED
                self._send(SipMessage.response(200, "OK", headers).serialize())
                self.on_terminated()

    def _receive_response(self, message: SipMessage) -> None:
        _num, cseq_method = message.cseq()
        if cseq_method == "INVITE" and self.state is DialogState.INVITING:
            if message.status_code == 200:
                self.remote_tag = self._extract_tag(
                    message.require_header("To") or ""
                )
                self.remote_sdp = message.body
                self._send_ack(message)
                self.state = DialogState.ESTABLISHED
                self.on_established(self.remote_sdp)
            elif message.status_code and message.status_code >= 300:
                self.state = DialogState.TERMINATED
                self.on_terminated()
        elif cseq_method == "BYE":
            pass  # already TERMINATED locally

    def _send_ack(self, ok: SipMessage) -> None:
        headers = {
            "Via": f"SIP/2.0/TCP {self.uri.split('@')[-1]}",
            "From": self._from_header(),
            "To": ok.require_header("To"),
            "Call-Id": self.call_id or "",
            "Cseq": f"{self._cseq} ACK",
        }
        self._send(
            SipMessage.request("ACK", self.remote_uri or "", headers).serialize()
        )
