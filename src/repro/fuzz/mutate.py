"""Deterministic structure-aware mutators.

Each mutator takes a seeded ``random.Random`` plus the packet bytes and
returns a hostile variant.  The four families target the failure modes
strict decoders must survive:

* **truncate** — every length check must fire before the read;
* **bit_flip** — corrupted magic/type/flag fields;
* **length_inflate** — a declared size larger than the data behind it
  (the classic heap-overread shape);
* **splice** — two valid packets cut and joined, producing plausible
  headers over the wrong body.
"""

from __future__ import annotations

import random
import struct


def truncate(rng: random.Random, data: bytes, corpus) -> bytes:
    if not data:
        return data
    return data[: rng.randrange(len(data))]


def bit_flip(rng: random.Random, data: bytes, corpus) -> bytes:
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        position = rng.randrange(len(out))
        out[position] ^= 1 << rng.randrange(8)
    return bytes(out)


def length_inflate(rng: random.Random, data: bytes, corpus) -> bytes:
    """Overwrite a random aligned field with a huge value.

    Hits whatever integer happens to live there — a declared length, a
    count, a dimension — which is exactly the point: any field a decoder
    multiplies or allocates by must be capped.
    """
    width = rng.choice((1, 2, 4))
    if len(data) < width:
        return data
    out = bytearray(data)
    offset = rng.randrange(len(out) - width + 1)
    huge = {
        1: rng.choice((0x7F, 0xFF)),
        2: rng.choice((0x7FFF, 0xFFFF)),
        4: rng.choice((0x7FFF_FFFF, 0xFFFF_FFFF, 0x0100_0000)),
    }[width]
    struct.pack_into({1: "!B", 2: "!H", 4: "!I"}[width], out, offset, huge)
    return bytes(out)


def splice(rng: random.Random, data: bytes, corpus) -> bytes:
    other = corpus[rng.randrange(len(corpus))]
    if not data or not other:
        return data + other
    return data[: rng.randrange(1, len(data) + 1)] + other[
        rng.randrange(len(other)) :
    ]


MUTATORS = (truncate, bit_flip, length_inflate, splice)


def mutate(rng: random.Random, corpus: list[bytes]) -> tuple[str, bytes]:
    """Pick a corpus packet and one mutator; ~5% pass through unmutated
    (a valid packet must of course also survive the drivers)."""
    data = corpus[rng.randrange(len(corpus))]
    if rng.random() < 0.05:
        return "identity", data
    mutator = MUTATORS[rng.randrange(len(MUTATORS))]
    return mutator.__name__, mutator(rng, data, corpus)
