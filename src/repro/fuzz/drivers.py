"""Per-surface decode drivers.

A driver feeds hostile bytes to one decoder surface and lets every
exception escape: the runner treats :class:`ProtocolError` (and
subclasses — every domain error) as the decoder doing its job, and
anything else as a hardening bug.  Drivers therefore contain **no**
``try`` blocks of their own.
"""

from __future__ import annotations

from ..bfcp.messages import BfcpMessage
from ..codecs.lossy import LossyDctCodec
from ..codecs.png.decoder import decode_png
from ..core.header import COMMON_HEADER_LEN, CommonHeader
from ..core.hip import KeyTypedAssembler, decode_hip
from ..core.move_rectangle import MoveRectangle
from ..core.region_update import parse_update_payload
from ..core.registry import (
    MSG_KEY_TYPED,
    MSG_MOUSE_POINTER_INFO,
    MSG_MOVE_RECTANGLE,
    MSG_REGION_UPDATE,
    MSG_WINDOW_MANAGER_INFO,
)
from ..core.window_info import WindowManagerInfo
from ..rtp.packet import RtpPacket
from ..rtp.rtcp import decode_compound
from ..sdp.parser import parse_sdp
from ..sip.messages import SipMessage
from .corpus import DESKTOP_BOUNDS


def drive_remoting(data: bytes) -> None:
    header = CommonHeader.decode(data)
    kind = header.message_type
    if kind in (MSG_REGION_UPDATE, MSG_MOUSE_POINTER_INFO):
        # The reassembler's wire-parse path: handles first fragments
        # and continuations alike.
        parse_update_payload(data, kind, bounds=DESKTOP_BOUNDS)
    elif kind == MSG_MOVE_RECTANGLE:
        MoveRectangle.decode(data, bounds=DESKTOP_BOUNDS)
    elif kind == MSG_WINDOW_MANAGER_INFO:
        WindowManagerInfo.decode(data)
    # Unknown types are the receiver's "MAY ignore" case.


def drive_hip(data: bytes) -> None:
    decode_hip(data)
    header = CommonHeader.decode(data)
    if header.message_type == MSG_KEY_TYPED:
        # Same body through the reassembly path the AH ingress uses.
        KeyTypedAssembler().push(data[COMMON_HEADER_LEN:])


def drive_rtp(data: bytes) -> None:
    RtpPacket.decode(data)


def drive_rtcp(data: bytes) -> None:
    decode_compound(data)


def drive_sdp(data: bytes) -> None:
    # latin-1 maps every byte 1:1, so byte-level mutations reach the
    # text parser undistorted.
    parse_sdp(data.decode("latin-1"))


def drive_sip(data: bytes) -> None:
    SipMessage.parse(data.decode("latin-1"))


def drive_bfcp(data: bytes) -> None:
    BfcpMessage.decode(data)


def drive_png(data: bytes) -> None:
    decode_png(data)


def drive_lossy(data: bytes) -> None:
    LossyDctCodec().decode(data)


#: Surface name → (corpus key, driver).
SURFACE_DRIVERS = {
    "remoting": ("remoting", drive_remoting),
    "hip": ("hip", drive_hip),
    "rtp": ("rtp", drive_rtp),
    "rtcp": ("rtcp", drive_rtcp),
    "sdp": ("sdp", drive_sdp),
    "sip": ("sip", drive_sip),
    "bfcp": ("bfcp", drive_bfcp),
    "png": ("png", drive_png),
    "lossy": ("lossy", drive_lossy),
}
