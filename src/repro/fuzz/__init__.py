"""Deterministic structure-aware fuzzing for every wire decoder.

``python -m repro.fuzz --selftest`` is the CI entry point; see
``docs/HARDENING.md`` for the contract and replay workflow.
"""

from .corpus import build_corpus
from .drivers import SURFACE_DRIVERS
from .mutate import MUTATORS, mutate
from .runner import MEMORY_BUDGET_BYTES, FuzzReport, SurfaceReport, run_fuzz

__all__ = [
    "MEMORY_BUDGET_BYTES",
    "MUTATORS",
    "SURFACE_DRIVERS",
    "FuzzReport",
    "SurfaceReport",
    "build_corpus",
    "mutate",
    "run_fuzz",
]
