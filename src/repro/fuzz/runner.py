"""The deterministic fuzz loop.

``run_fuzz(seed, iterations)`` drives every decoder surface plus the
full Participant ingress with seeded mutations of valid corpus packets
and reports what happened.  The contract it enforces:

* **zero uncaught exceptions** — only :class:`ProtocolError` (which
  every domain error subclasses) may escape a decoder;
* **bounded memory** — a tracemalloc peak cap catches decompression
  bombs and unbounded reassembly buffers.

Same seed ⇒ byte-identical mutation sequence ⇒ reproducible failures:
a crash report's (surface, seed, iteration) triple replays exactly.
"""

from __future__ import annotations

import random
import tracemalloc
import traceback
from dataclasses import dataclass, field

from ..core.errors import ProtocolError
from ..sharing.config import SharingConfig
from ..sharing.participant import Participant
from ..sharing.transport import PacketTransport
from .corpus import build_corpus
from .drivers import SURFACE_DRIVERS
from .mutate import mutate

#: Peak traced allocation allowed for a full run.  Generous for the
#: legitimate decode work; far below what one inflated length field
#: would allocate if a cap were missing.
MEMORY_BUDGET_BYTES = 128 * 1024 * 1024


@dataclass(slots=True)
class SurfaceReport:
    surface: str
    iterations: int = 0
    accepted: int = 0
    rejected: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(slots=True)
class FuzzReport:
    seed: int
    surfaces: list[SurfaceReport]
    memory_peak: int = 0

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.surfaces)

    @property
    def ok(self) -> bool:
        return (
            all(s.ok for s in self.surfaces)
            and self.memory_peak <= MEMORY_BUDGET_BYTES
        )


class _InjectTransport(PacketTransport):
    """In-memory transport the e2e stage pushes hostile packets through."""

    reliable = True

    def __init__(self) -> None:
        self._pending: list[bytes] = []

    def feed(self, packet: bytes) -> None:
        self._pending.append(packet)

    def send_packet(self, packet: bytes) -> bool:
        return True  # participant egress is discarded

    def receive_packets(self) -> list[bytes]:
        out, self._pending = self._pending, []
        return out


def _fuzz_surface(surface: str, rng: random.Random,
                  iterations: int) -> SurfaceReport:
    corpus_key, driver = SURFACE_DRIVERS[surface]
    corpus = build_corpus()[corpus_key]
    report = SurfaceReport(surface)
    for index in range(iterations):
        name, data = mutate(rng, corpus)
        report.iterations += 1
        try:
            driver(data)
        except ProtocolError:
            report.rejected += 1
        except Exception:
            report.failures.append(
                f"{surface}[{index}] mutator={name} "
                f"input={data[:64].hex()}...\n{traceback.format_exc()}"
            )
            if len(report.failures) >= 5:
                break
        else:
            report.accepted += 1
    return report


def _fuzz_participant(rng: random.Random, iterations: int) -> SurfaceReport:
    """End-to-end: mutated packets through the full Participant ingress.

    The ingress catches ProtocolError itself (counting and
    quarantining), so *any* exception out of ``process_incoming`` is a
    failure.  The rejection budget is raised so the quarantine does not
    mute the decode path mid-run.
    """
    report = SurfaceReport("participant-e2e")
    transport = _InjectTransport()
    clock = [0.0]
    participant = Participant(
        "fuzz",
        transport,
        clock=lambda: clock[0],
        config=SharingConfig(rejection_budget=1_000_000),
    )
    participant.join()
    corpus = build_corpus()
    pool = corpus["remoting"] + corpus["hip"] + corpus["rtp"] + corpus["rtcp"]
    for index in range(iterations):
        name, data = mutate(rng, pool)
        report.iterations += 1
        transport.feed(data)
        clock[0] += 0.01
        try:
            participant.process_incoming()
        except Exception:
            report.failures.append(
                f"participant-e2e[{index}] mutator={name} "
                f"input={data[:64].hex()}...\n{traceback.format_exc()}"
            )
            if len(report.failures) >= 5:
                break
        else:
            report.accepted += 1
    return report


def run_fuzz(
    seed: int = 0,
    iterations: int = 300,
    surfaces: list[str] | None = None,
    e2e: bool = True,
) -> FuzzReport:
    """Run ``iterations`` mutations per surface; deterministic in ``seed``."""
    names = list(surfaces) if surfaces else list(SURFACE_DRIVERS)
    unknown = [n for n in names if n not in SURFACE_DRIVERS]
    if unknown:
        raise ValueError(f"unknown surfaces: {unknown}")
    tracemalloc.start()
    try:
        reports = []
        for surface in names:
            # A str seed hashes deterministically (unlike tuples, whose
            # hash varies with PYTHONHASHSEED).
            rng = random.Random(f"{seed}:{surface}")
            reports.append(_fuzz_surface(surface, rng, iterations))
        if e2e:
            rng = random.Random(f"{seed}:participant-e2e")
            reports.append(_fuzz_participant(rng, iterations))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return FuzzReport(seed=seed, surfaces=reports, memory_peak=peak)
