"""CLI: ``python -m repro.fuzz [--selftest] [--seed N] [--iterations N]``.

Exit status 0 when every surface survived (and memory stayed inside the
budget), 1 otherwise — failures print the (surface, seed, iteration,
mutator, input-prefix) needed to replay them.
"""

from __future__ import annotations

import argparse
import sys

from .drivers import SURFACE_DRIVERS
from .runner import MEMORY_BUDGET_BYTES, run_fuzz

#: ``--selftest`` iteration count per surface: 8 decoder surfaces plus
#: the e2e stage at 300 each ⇒ 2700 mutations, comfortably over the
#: 2000-mutation acceptance floor while staying fast enough for CI.
SELFTEST_ITERATIONS = 300


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Deterministic fuzzing of every wire decoder.",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the fixed CI plan (all surfaces + e2e ingress)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--iterations", type=int, default=None,
        help=f"mutations per surface (default {SELFTEST_ITERATIONS})",
    )
    parser.add_argument(
        "--surface", action="append", choices=sorted(SURFACE_DRIVERS),
        help="restrict to one surface (repeatable); disables the e2e stage",
    )
    args = parser.parse_args(argv)

    iterations = args.iterations or SELFTEST_ITERATIONS
    report = run_fuzz(
        seed=args.seed,
        iterations=iterations,
        surfaces=args.surface,
        e2e=args.surface is None,
    )

    for surface in report.surfaces:
        status = "ok" if surface.ok else "FAIL"
        print(
            f"{surface.surface:16s} {status:4s} "
            f"iterations={surface.iterations} accepted={surface.accepted} "
            f"rejected={surface.rejected}"
        )
        for failure in surface.failures:
            print(f"--- failure ---\n{failure}", file=sys.stderr)
    print(
        f"total={report.total_iterations} seed={report.seed} "
        f"memory_peak={report.memory_peak / 1024 / 1024:.1f}MiB "
        f"(budget {MEMORY_BUDGET_BYTES / 1024 / 1024:.0f}MiB)"
    )
    if not report.ok:
        if report.memory_peak > MEMORY_BUDGET_BYTES:
            print("memory budget exceeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
