"""Valid seed packets for every fuzzed surface.

Structure-aware fuzzing starts from encodings the repo's own encoders
produce — mutations of a valid packet explore the decoder far deeper
than pure random bytes, which usually die on the first magic/length
check.  Everything here is deterministic: the corpus is part of the
reproducibility contract (same seed ⇒ same run).
"""

from __future__ import annotations

import numpy as np

from ..bfcp.messages import floor_release, floor_request, floor_request_status
from ..codecs.lossy import LossyDctCodec
from ..codecs.png.encoder import encode_png
from ..core.fragmentation import fragment_update
from ..core.hip import (
    KeyPressed,
    KeyReleased,
    KeyTyped,
    MouseMoved,
    MousePressed,
    MouseReleased,
    MouseWheelMoved,
)
from ..core.move_rectangle import MoveRectangle
from ..core.mouse_pointer import MousePointerInfo
from ..core.region_update import RegionUpdate
from ..core.registry import MSG_REGION_UPDATE
from ..core.window_info import WindowManagerInfo, WindowRecord
from ..rtp.feedback import PictureLossIndication, nacks_for
from ..rtp.packet import RtpPacket
from ..rtp.rtcp import (
    Bye,
    ReceiverReport,
    ReportBlock,
    SdesChunk,
    SenderReport,
    SourceDescription,
    encode_compound,
)
from ..sdp.negotiation import build_ah_offer
from ..sip.messages import SipMessage

#: Desktop bounds the geometry-validating decoders are driven with.
DESKTOP_BOUNDS = (1280, 1024)


def _pixels(width: int = 8, height: int = 6) -> np.ndarray:
    """A small deterministic RGBA gradient."""
    base = np.arange(width * height * 4, dtype=np.uint32) * 37 % 251
    return base.astype(np.uint8).reshape(height, width, 4)


def _remoting() -> list[bytes]:
    update = RegionUpdate(1, 10, 20, 3, bytes(range(64)) * 4)
    fragments = fragment_update(
        MSG_REGION_UPDATE, 1, 3, 10, 20, update.data, max_payload=96
    )
    packets = [
        update.encode_single(),
        MoveRectangle(1, 4, 4, 32, 16, 100, 80).encode(),
        WindowManagerInfo(
            (
                WindowRecord(1, 0, 0, 0, 640, 480),
                WindowRecord(2, 1, 100, 120, 320, 200),
            )
        ).encode(),
        MousePointerInfo(1, 320, 240).encode_single(),
        MousePointerInfo(1, 15, 25, 3, bytes(range(32))).encode_single(),
    ]
    packets.extend(f.payload for f in fragments)
    return packets


def _hip() -> list[bytes]:
    return [
        MousePressed(1, 1, 100, 200).encode(),
        MouseReleased(1, 1, 100, 200).encode(),
        MouseMoved(1, 101, 201).encode(),
        MouseWheelMoved(1, 101, 201, -240).encode(),
        KeyPressed(1, 65).encode(),
        KeyReleased(1, 65).encode(),
        KeyTyped(1, "héllo, wörld ✓").encode(),
    ]


def _rtp() -> list[bytes]:
    return [
        RtpPacket(99, 1000, 90_000, 0xDEADBEEF, b"payload").encode(),
        RtpPacket(
            100, 65_535, 0xFFFF_FFFF, 1, b"x" * 48, marker=True,
            csrcs=(7, 8, 9),
        ).encode(),
        RtpPacket(99, 0, 0, 2, b"").encode(),
    ]


def _rtcp() -> list[bytes]:
    block = ReportBlock(0xDEADBEEF, 3, 1000, 2000, 45, 1234, 5678)
    sdes = SourceDescription(
        (SdesChunk(0xCAFE, ((1, "ah/p1@example"), (6, "répro"))),)
    )
    nack = nacks_for(1, 2, [100, 101, 119])
    return [
        encode_compound(
            [SenderReport(0xCAFE, 1 << 32, 90_000, 10, 1400, (block,)), sdes]
        ),
        encode_compound([ReceiverReport(0xCAFE, (block,)), sdes]),
        encode_compound([Bye((0xCAFE,), "goodbye")]),
        PictureLossIndication(1, 2).encode(),
        nack.encode(),
    ]


def _sdp() -> list[bytes]:
    offer = build_ah_offer().to_string()
    return [offer.encode("utf-8")]


def _sip() -> list[bytes]:
    sdp = build_ah_offer().to_string()
    invite = SipMessage.request(
        "INVITE",
        "sip:participant@example.com",
        {
            "Via": "SIP/2.0/TCP ah.example.com:5060",
            "From": "<sip:ah@example.com>;tag=1",
            "To": "<sip:participant@example.com>",
            "Call-ID": "fuzz-corpus-1",
            "CSeq": "1 INVITE",
        },
        body=sdp,
    )
    ok = SipMessage.response(
        200,
        "OK",
        {
            "Via": "SIP/2.0/TCP ah.example.com:5060",
            "From": "<sip:ah@example.com>;tag=1",
            "To": "<sip:participant@example.com>;tag=2",
            "Call-ID": "fuzz-corpus-1",
            "CSeq": "1 INVITE",
        },
    )
    return [invite.serialize().encode("utf-8"), ok.serialize().encode("utf-8")]


def _bfcp() -> list[bytes]:
    return [
        floor_request(1, 1, 2, 0).encode(),
        floor_release(1, 2, 2, 1).encode(),
        floor_request_status(1, 3, 2, 1, 3, queue_position=1,
                             hid_status=2).encode(),
    ]


def _png() -> list[bytes]:
    return [
        encode_png(_pixels()),
        encode_png(_pixels(3, 2), adaptive_filter=False),
    ]


def _lossy() -> list[bytes]:
    # Block-aligned and ragged dims: mutations of the header's declared
    # geometry must trip the dims-vs-payload validation, not numpy.
    return [
        LossyDctCodec(75).encode(_pixels(16, 16)),
        LossyDctCodec(30).encode(_pixels(9, 5)),
    ]


def build_corpus() -> dict[str, list[bytes]]:
    """Surface name → list of valid encoded packets."""
    return {
        "remoting": _remoting(),
        "hip": _hip(),
        "rtp": _rtp(),
        "rtcp": _rtcp(),
        "sdp": _sdp(),
        "sip": _sip(),
        "bfcp": _bfcp(),
        "png": _png(),
        "lossy": _lossy(),
    }
