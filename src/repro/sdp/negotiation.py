"""Building and negotiating sharing-session SDP (section 10).

:func:`build_ah_offer` produces the draft's offer shape — a BFCP floor
stream, the remoting stream over RTP/AVP (UDP) and/or TCP/RTP/AVP with
matching ports, and the HIP return stream — including the mandatory
``retransmissions`` fmtp parameter (section 9.3.1) and the RFC 4583
label/floorid association.  :func:`negotiate` resolves an offer against
participant capabilities into the transport/feature set both ends run.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import MediaDescription, RtpMap, SdpError, SessionDescription

REMOTING_ENCODING = "remoting"
HIP_ENCODING = "hip"
DEFAULT_RATE = 90_000


def build_ah_offer(
    remoting_port: int = 6000,
    hip_port: int = 6006,
    bfcp_port: int = 50_000,
    remoting_pt: int = 99,
    hip_pt: int = 100,
    offer_udp: bool = True,
    offer_tcp: bool = True,
    retransmissions: bool = True,
    clock_rate: int = DEFAULT_RATE,
    floor_id: int = 0,
    hip_label: int = 10,
    codecs: list[str] | None = None,
) -> SessionDescription:
    """The AH's offer, shaped like the section 10.3 example.

    ``codecs`` names the image codecs the AH can encode RegionUpdate
    payloads with (section 5.2.2: "they should negotiate supported
    media types during the session establishment").  The draft leaves
    the carriage unspecified; we use an fmtp ``codecs=`` parameter on
    the remoting stream.
    """
    if not offer_udp and not offer_tcp:
        raise SdpError("offer must include at least one remoting transport")
    session = SessionDescription()

    bfcp = MediaDescription("application", bfcp_port, "TCP/BFCP", ["*"])
    bfcp.formats = []
    bfcp.add_attribute("floorid", f"{floor_id} m-stream:{hip_label}")
    session.add_media(bfcp)

    codec_param = f";codecs={','.join(codecs)}" if codecs else ""
    if offer_udp:
        udp = MediaDescription(
            "application", remoting_port, "RTP/AVP", [str(remoting_pt)]
        )
        udp.rtpmaps.append(RtpMap(remoting_pt, REMOTING_ENCODING, clock_rate))
        # The mandated parameter MUST be included (section 10.1).
        udp.fmtp[remoting_pt] = (
            f"retransmissions={'yes' if retransmissions else 'no'}"
            f"{codec_param}"
        )
        session.add_media(udp)

    if offer_tcp:
        # "The port numbers MUST be same if AH is remoting the same
        # content over both TCP and UDP."
        tcp = MediaDescription(
            "application", remoting_port, "TCP/RTP/AVP", [str(remoting_pt)]
        )
        tcp.rtpmaps.append(RtpMap(remoting_pt, REMOTING_ENCODING, clock_rate))
        if codecs:
            tcp.fmtp[remoting_pt] = f"codecs={','.join(codecs)}"
        session.add_media(tcp)

    hip = MediaDescription("application", hip_port, "TCP/RTP/AVP", [str(hip_pt)])
    hip.rtpmaps.append(RtpMap(hip_pt, HIP_ENCODING, clock_rate))
    hip.add_attribute("label", str(hip_label))
    session.add_media(hip)
    return session


@dataclass(frozen=True, slots=True)
class NegotiatedSession:
    """The agreement a participant derives from an AH offer."""

    transport: str  # "udp" or "tcp"
    remoting_port: int
    remoting_pt: int
    hip_port: int
    hip_pt: int
    clock_rate: int
    retransmissions: bool
    bfcp_port: int | None
    floor_id: int | None
    hip_label: int | None
    #: Image codecs offered by the AH; () when the offer names none
    #: (PNG support is mandatory regardless, section 5.2.2).
    offered_codecs: tuple[str, ...] = ()


def negotiate(
    offer: SessionDescription,
    prefer_transport: str = "tcp",
) -> NegotiatedSession:
    """Resolve an AH offer into a concrete participant configuration.

    ``prefer_transport`` picks between offered remoting transports; the
    other transport remains available as a fallback.
    """
    if prefer_transport not in ("tcp", "udp"):
        raise SdpError(f"unknown transport preference: {prefer_transport}")

    remoting_media = offer.media_with_encoding(REMOTING_ENCODING)
    if not remoting_media:
        raise SdpError("offer contains no remoting stream")
    udp = next((m for m in remoting_media if m.proto == "RTP/AVP"), None)
    tcp = next((m for m in remoting_media if m.proto == "TCP/RTP/AVP"), None)
    chosen = None
    transport = prefer_transport
    if prefer_transport == "tcp":
        chosen = tcp or udp
        transport = "tcp" if tcp is not None else "udp"
    else:
        chosen = udp or tcp
        transport = "udp" if udp is not None else "tcp"
    if chosen is None:
        raise SdpError("no usable remoting transport in offer")
    remoting_map = chosen.rtpmap_for(REMOTING_ENCODING)
    assert remoting_map is not None

    retransmissions = False
    if udp is not None:
        for params in udp.fmtp.values():
            if "retransmissions=yes" in params.replace(" ", ""):
                retransmissions = True

    offered_codecs: tuple[str, ...] = ()
    for media in remoting_media:
        for params in media.fmtp.values():
            for piece in params.replace(" ", "").split(";"):
                if piece.startswith("codecs="):
                    offered_codecs = tuple(
                        name for name in piece[len("codecs="):].split(",")
                        if name
                    )

    hip_media = offer.media_with_encoding(HIP_ENCODING)
    if not hip_media:
        raise SdpError("offer contains no hip stream")
    hip = hip_media[0]
    hip_map = hip.rtpmap_for(HIP_ENCODING)
    assert hip_map is not None

    bfcp_port: int | None = None
    floor_id: int | None = None
    hip_label: int | None = None
    for media in offer.media_by_proto("TCP/BFCP"):
        bfcp_port = media.port
        floorid_attr = media.attribute("floorid")
        if floorid_attr:
            parts = floorid_attr.split()
            try:
                floor_id = int(parts[0])
            except (ValueError, IndexError):
                floor_id = None
            for part in parts[1:]:
                if part.startswith("m-stream:"):
                    try:
                        hip_label = int(part.split(":", 1)[1])
                    except ValueError:
                        pass

    label_attr = hip.attribute("label")
    if hip_label is not None and label_attr is not None:
        if label_attr != str(hip_label):
            raise SdpError(
                "BFCP m-stream does not match the hip stream label "
                f"({hip_label} vs {label_attr})"
            )

    return NegotiatedSession(
        transport=transport,
        remoting_port=chosen.port,
        remoting_pt=remoting_map.payload_type,
        hip_port=hip.port,
        hip_pt=hip_map.payload_type,
        clock_rate=remoting_map.clock_rate,
        retransmissions=retransmissions,
        bfcp_port=bfcp_port,
        floor_id=floor_id,
        hip_label=hip_label,
        offered_codecs=offered_codecs,
    )
