"""SDP object model (RFC 4566 subset) for sharing-session descriptions.

Covers what section 10 needs: session-level lines, ``m=`` blocks with
``proto`` variants (RTP/AVP, TCP/RTP/AVP, TCP/BFCP), ``a=rtpmap``,
``a=fmtp``, and the BFCP association attributes ``a=floorid`` /
``a=label`` / ``m-stream`` of RFC 4583.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ProtocolError


class SdpError(ProtocolError):
    """Raised on malformed SDP input or invalid construction."""


@dataclass(frozen=True, slots=True)
class RtpMap:
    """One ``a=rtpmap:<pt> <encoding>/<rate>`` entry."""

    payload_type: int
    encoding: str
    clock_rate: int

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= 127:
            raise SdpError(f"payload type out of range: {self.payload_type}")
        if self.clock_rate <= 0:
            raise SdpError("clock rate must be positive")
        if "/" in self.encoding or " " in self.encoding:
            raise SdpError(f"bad encoding name: {self.encoding!r}")

    def to_line(self) -> str:
        return f"a=rtpmap:{self.payload_type} {self.encoding}/{self.clock_rate}"


@dataclass(slots=True)
class MediaDescription:
    """One ``m=`` block with its attribute lines."""

    media: str  # "application"
    port: int
    proto: str  # "RTP/AVP", "TCP/RTP/AVP", "TCP/BFCP"
    formats: list[str] = field(default_factory=list)
    rtpmaps: list[RtpMap] = field(default_factory=list)
    fmtp: dict[int, str] = field(default_factory=dict)
    attributes: list[tuple[str, str | None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 0xFFFF:
            raise SdpError(f"port out of range: {self.port}")

    def add_attribute(self, name: str, value: str | None = None) -> None:
        self.attributes.append((name, value))

    def attribute(self, name: str) -> str | None:
        for attr_name, value in self.attributes:
            if attr_name == name:
                return value
        return None

    def has_attribute(self, name: str) -> bool:
        return any(attr_name == name for attr_name, _value in self.attributes)

    def rtpmap_for(self, encoding: str) -> RtpMap | None:
        for entry in self.rtpmaps:
            if entry.encoding == encoding:
                return entry
        return None

    def to_lines(self) -> list[str]:
        fmt = " ".join(self.formats) if self.formats else "*"
        lines = [f"m={self.media} {self.port} {self.proto} {fmt}"]
        for name, value in self.attributes:
            lines.append(f"a={name}:{value}" if value is not None else f"a={name}")
        for entry in self.rtpmaps:
            lines.append(entry.to_line())
        for pt, params in sorted(self.fmtp.items()):
            lines.append(f"a=fmtp:{pt} {params}")
        return lines


@dataclass(slots=True)
class SessionDescription:
    """A full SDP document (subset)."""

    origin_user: str = "-"
    session_id: int = 0
    session_version: int = 0
    origin_address: str = "127.0.0.1"
    session_name: str = "Application Sharing"
    connection_address: str = "127.0.0.1"
    media: list[MediaDescription] = field(default_factory=list)

    def add_media(self, description: MediaDescription) -> None:
        self.media.append(description)

    def media_by_proto(self, proto: str) -> list[MediaDescription]:
        return [m for m in self.media if m.proto == proto]

    def media_with_encoding(self, encoding: str) -> list[MediaDescription]:
        return [m for m in self.media if m.rtpmap_for(encoding) is not None]

    def to_string(self) -> str:
        lines = [
            "v=0",
            f"o={self.origin_user} {self.session_id} {self.session_version} "
            f"IN IP4 {self.origin_address}",
            f"s={self.session_name}",
            f"c=IN IP4 {self.connection_address}",
            "t=0 0",
        ]
        for media in self.media:
            lines.extend(media.to_lines())
        return "\r\n".join(lines) + "\r\n"
