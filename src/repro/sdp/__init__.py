"""SDP mapping (section 10): model, parser, offer building, negotiation."""

from .model import MediaDescription, RtpMap, SdpError, SessionDescription
from .negotiation import (
    DEFAULT_RATE,
    HIP_ENCODING,
    NegotiatedSession,
    REMOTING_ENCODING,
    build_ah_offer,
    negotiate,
)
from .parser import parse_sdp

__all__ = [
    "DEFAULT_RATE",
    "HIP_ENCODING",
    "MediaDescription",
    "NegotiatedSession",
    "REMOTING_ENCODING",
    "RtpMap",
    "SdpError",
    "SessionDescription",
    "build_ah_offer",
    "negotiate",
    "parse_sdp",
]
