"""SDP parser for the subset the sharing session uses."""

from __future__ import annotations

from .model import MediaDescription, RtpMap, SdpError, SessionDescription

#: Hard cap on SDP document size; session descriptions are a few hundred
#: bytes in practice, so 64 KiB rejects only hostile input.
MAX_SDP_BYTES = 65536
#: Hard cap on m= sections per document.
MAX_MEDIA_SECTIONS = 32
#: Hard cap on attribute lines per m= section.
MAX_ATTRIBUTES = 256


def parse_sdp(text: str) -> SessionDescription:
    """Parse an SDP document; tolerant of \\n or \\r\\n line endings."""
    if len(text) > MAX_SDP_BYTES:
        raise SdpError(
            f"SDP document exceeds {MAX_SDP_BYTES} bytes", reason="overflow"
        )
    session = SessionDescription()
    session.media = []
    current: MediaDescription | None = None
    saw_version = False

    for raw_line in text.replace("\r\n", "\n").split("\n"):
        line = raw_line.strip()
        if not line:
            continue
        if len(line) < 2 or line[1] != "=":
            raise SdpError(f"malformed SDP line: {line!r}")
        key, value = line[0], line[2:]
        if key == "v":
            if value != "0":
                raise SdpError(f"unsupported SDP version: {value}")
            saw_version = True
        elif key == "o":
            parts = value.split()
            if len(parts) != 6:
                raise SdpError(f"malformed o= line: {value!r}")
            session.origin_user = parts[0]
            try:
                session.session_id = int(parts[1])
                session.session_version = int(parts[2])
            except ValueError:
                raise SdpError(f"non-numeric o= field: {value!r}") from None
            session.origin_address = parts[5]
        elif key == "s":
            session.session_name = value
        elif key == "c":
            parts = value.split()
            if len(parts) == 3:
                session.connection_address = parts[2]
        elif key == "t":
            pass  # timing ignored in this subset
        elif key == "m":
            if len(session.media) >= MAX_MEDIA_SECTIONS:
                raise SdpError(
                    f"more than {MAX_MEDIA_SECTIONS} m= sections",
                    reason="overflow",
                )
            current = _parse_media_line(value)
            session.media.append(current)
        elif key == "a":
            if current is None:
                continue  # session-level attributes ignored in subset
            if (len(current.attributes) + len(current.rtpmaps)
                    + len(current.fmtp)) >= MAX_ATTRIBUTES:
                raise SdpError(
                    f"more than {MAX_ATTRIBUTES} attributes in one m= section",
                    reason="overflow",
                )
            _parse_attribute(current, value)
        # Unknown keys are ignored per SDP's extension philosophy.
    if not saw_version:
        raise SdpError("missing v= line")
    return session


def _parse_media_line(value: str) -> MediaDescription:
    parts = value.split()
    if len(parts) < 3:
        raise SdpError(f"malformed m= line: {value!r}")
    media, port_str, proto = parts[0], parts[1], parts[2]
    try:
        port = int(port_str)
    except ValueError:
        raise SdpError(f"bad port in m= line: {port_str!r}") from None
    formats = [f for f in parts[3:] if f != "*"]
    return MediaDescription(media=media, port=port, proto=proto, formats=formats)


def _parse_attribute(media: MediaDescription, value: str) -> None:
    if ":" in value:
        name, payload = value.split(":", 1)
    else:
        name, payload = value, None
    if name == "rtpmap" and payload:
        pt_str, _, encoding_rate = payload.partition(" ")
        encoding, _, rate_str = encoding_rate.partition("/")
        try:
            media.rtpmaps.append(
                RtpMap(int(pt_str), encoding.strip(), int(rate_str or "0"))
            )
        except (ValueError, SdpError) as exc:
            raise SdpError(f"bad rtpmap: {payload!r}") from exc
    elif name == "fmtp" and payload:
        pt_str, _, params = payload.partition(" ")
        pt_str = pt_str.strip()
        # Tolerate the draft's own "a=fmtp: retransmissions=yes" (no PT).
        # isascii() matters: isdigit() alone accepts Unicode digits
        # ('¹') that int() rejects.
        if pt_str and pt_str.isascii() and pt_str.isdigit():
            media.fmtp[int(pt_str)] = params.strip()
        else:
            media.fmtp[-1] = (pt_str + " " + params).strip()
    else:
        media.add_attribute(name, payload)
