"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``  — run a short self-contained sharing session and report
  convergence (the quickstart, without needing the examples/ tree);
* ``offer`` — print the AH's SDP offer (section 10.3 shape);
* ``info``  — version, registered message types, and available codecs.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import quick_session
    from .apps import TextEditorApp
    from .surface import Rect

    ah, participant, clock = quick_session()
    window = ah.windows.create_window(Rect(220, 150, 350, 450), group_id=1)
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    editor.type_text("demo: screen flows AH -> participant")

    def run(rounds: int) -> None:
        for _ in range(rounds):
            ah.advance(0.02)
            clock.advance(0.02)
            participant.process_incoming()

    run(60)
    print(f"window {window.window_id} shared at {window.rect.as_tuple()}")
    print(f"converged pixel-exact: {participant.converged_with(ah.windows)}")
    participant.type_text(window.window_id, " / HIP flows back")
    run(60)
    print(f"editor text at AH: {editor.text()!r}")
    ok = participant.converged_with(ah.windows)
    print(f"final convergence: {ok}")
    return 0 if ok else 1


def _cmd_offer(args: argparse.Namespace) -> int:
    from .sdp import build_ah_offer

    offer = build_ah_offer(
        remoting_port=args.port,
        hip_port=args.port + 6,
        retransmissions=not args.no_retransmissions,
        codecs=args.codecs.split(",") if args.codecs else None,
    )
    sys.stdout.write(offer.to_string())
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .codecs import default_registry
    from .core.registry import hip_registry, remoting_registry

    print(f"repro {__version__} — RTP payload format for application "
          "and desktop sharing")
    print("\nRemoting message types (Table 1):")
    for entry in remoting_registry().entries():
        print(f"  {entry.value:>3}  {entry.name}")
    print("\nHIP message types (Table 3):")
    for entry in hip_registry().entries():
        print(f"  {entry.value:>3}  {entry.name}")
    print("\nImage codecs (RegionUpdate payload types):")
    registry = default_registry()
    for pt in registry.payload_types():
        codec = registry.by_payload_type(pt)
        kind = "lossless" if codec.lossless else "lossy"
        print(f"  PT {pt:>3}  {codec.name} ({kind})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Application and desktop sharing over RTP "
        "(Boyaci & Schulzrinne reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a short self-test session")
    demo.set_defaults(func=_cmd_demo)

    offer = sub.add_parser("offer", help="print the AH's SDP offer")
    offer.add_argument("--port", type=int, default=6000,
                       help="remoting port (default 6000)")
    offer.add_argument("--no-retransmissions", action="store_true",
                       help="advertise retransmissions=no")
    offer.add_argument("--codecs", default="",
                       help="comma-separated codec list for the fmtp line")
    offer.set_defaults(func=_cmd_offer)

    info = sub.add_parser("info", help="show registries and codecs")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
