"""Virtual window system substrate.

Substitutes for the OS capture layer the paper's AH uses: geometry and
region algebra, RGBA framebuffers, a z-ordered window manager with
process groups, tile-based damage detection, scroll detection, pointer
icons, and a bitmap font used by the synthetic workload applications.
"""

from .cursor import PointerState, arrow_cursor, ibeam_cursor
from .damage import TileDiffer, shrink_to_changed_rows
from .framebuffer import BLACK, CHANNELS, TRANSPARENT, WHITE, Color, Framebuffer
from .geometry import EMPTY_RECT, MAX_COORD, Point, Rect, Size
from .region import Region
from .scroll import ScrollDetector, ScrollOp
from .text import char_cell_size, draw_text, render_char
from .window import (
    MAX_GROUP_ID,
    MAX_WINDOW_ID,
    NO_GROUP,
    Window,
    WindowError,
    WindowEvent,
    WindowGeometry,
    WindowManager,
    layout_signature,
)

__all__ = [
    "BLACK",
    "CHANNELS",
    "Color",
    "EMPTY_RECT",
    "Framebuffer",
    "MAX_COORD",
    "MAX_GROUP_ID",
    "MAX_WINDOW_ID",
    "NO_GROUP",
    "Point",
    "PointerState",
    "Rect",
    "Region",
    "ScrollDetector",
    "ScrollOp",
    "Size",
    "TileDiffer",
    "TRANSPARENT",
    "WHITE",
    "Window",
    "WindowError",
    "WindowEvent",
    "WindowGeometry",
    "WindowManager",
    "arrow_cursor",
    "char_cell_size",
    "draw_text",
    "ibeam_cursor",
    "layout_signature",
    "render_char",
    "shrink_to_changed_rows",
]
