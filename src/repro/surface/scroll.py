"""Scroll detection: turn vertical content shifts into copy operations.

Section 5.2.3 motivates MoveRectangle: "instructs the participant to
move a region from one place to another, which is efficient for some
drawing operations like scrolls."  An AH capturing raw pixels has to
*infer* that a scroll happened.  :class:`ScrollDetector` checks a small
set of candidate vertical offsets against the previous frame: if a large
rectangle matches the prior frame shifted by ``dy``, the AH can emit one
MoveRectangle plus a RegionUpdate for the newly exposed band instead of
re-encoding the full area.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .framebuffer import Framebuffer
from .geometry import Rect


@dataclass(frozen=True, slots=True)
class ScrollOp:
    """A detected scroll inside ``area``: contents moved by ``dy`` pixels.

    ``source`` is the rectangle (in the pre-scroll frame) that can be
    copied; ``dest_top`` is where its top edge lands; ``exposed`` is the
    band that holds new content and still needs a RegionUpdate.
    """

    area: Rect
    dy: int
    source: Rect
    dest_top: int
    exposed: Rect

    @property
    def destination(self) -> Rect:
        return Rect(self.source.left, self.dest_top,
                    self.source.width, self.source.height)

    def mismatch_region(self, before, after, tile: int = 16):
        """Pixels in the moved area the copy does NOT explain.

        Detection tolerates a small mismatch fraction (a cursor, a
        highlight).  Those pixels would go stale if only the
        MoveRectangle were sent, so the caller must repaint them.
        Returned as a tile-granular :class:`~repro.surface.region.Region`
        in the same coordinates as ``area``.
        """
        from .region import Region  # local import to avoid a cycle

        dest = self.destination
        curr = after.array[dest.top : dest.bottom, dest.left : dest.right]
        prev = before.array[
            self.source.top : self.source.bottom,
            self.source.left : self.source.right,
        ]
        diff = np.any(curr != prev, axis=2)
        if not diff.any():
            return Region()
        tiles = []
        for tile_rect in Rect(0, 0, dest.width, dest.height).tiles(tile):
            block = diff[
                tile_rect.top : tile_rect.bottom,
                tile_rect.left : tile_rect.right,
            ]
            if block.any():
                tiles.append(tile_rect.translated(dest.left, dest.top))
        return Region(tiles)


class ScrollDetector:
    """Detects pure vertical scrolls within a fixed surface area."""

    def __init__(
        self,
        candidate_offsets: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64),
        min_match_fraction: float = 0.995,
        min_area_rows: int = 16,
    ) -> None:
        if not candidate_offsets:
            raise ValueError("need at least one candidate offset")
        if not 0.0 < min_match_fraction <= 1.0:
            raise ValueError("min_match_fraction must be in (0, 1]")
        #: Offsets tried in both directions, in order.
        self.candidate_offsets = tuple(sorted(set(abs(o) for o in candidate_offsets)))
        self.min_match_fraction = min_match_fraction
        self.min_area_rows = min_area_rows

    def detect(
        self, before: Framebuffer, after: Framebuffer, area: Rect
    ) -> ScrollOp | None:
        """Find a vertical scroll of ``area`` between two frames.

        Returns ``None`` when no candidate offset explains (at least
        ``min_match_fraction`` of) the change, in which case the caller
        falls back to plain RegionUpdate encoding.
        """
        clip = area.intersection(before.bounds).intersection(after.bounds)
        if clip.is_empty() or clip.height < self.min_area_rows:
            return None
        prev = before.array[clip.top : clip.bottom, clip.left : clip.right]
        curr = after.array[clip.top : clip.bottom, clip.left : clip.right]
        if np.array_equal(prev, curr):
            return None

        best: ScrollOp | None = None
        best_score = self.min_match_fraction
        for offset in self.candidate_offsets:
            if offset >= clip.height:
                break
            for dy in (-offset, offset):
                score = self._match_fraction(prev, curr, dy)
                if score >= best_score:
                    best_score = score
                    best = self._build_op(clip, dy)
        return best

    @staticmethod
    def _match_fraction(prev: np.ndarray, curr: np.ndarray, dy: int) -> float:
        """Fraction of overlapping pixels where curr == prev shifted by dy."""
        h = prev.shape[0]
        if dy > 0:  # content moved down: curr[dy:] should equal prev[:-dy]
            a = curr[dy:]
            b = prev[: h - dy]
        else:  # content moved up
            a = curr[: h + dy]
            b = prev[-dy:]
        if a.size == 0:
            return 0.0
        pixel_match = np.all(a == b, axis=2)
        return float(pixel_match.mean())

    @staticmethod
    def _build_op(clip: Rect, dy: int) -> ScrollOp:
        h = clip.height
        if dy > 0:  # moved down: copy top part down, new content at top
            source = Rect(clip.left, clip.top, clip.width, h - dy)
            dest_top = clip.top + dy
            exposed = Rect(clip.left, clip.top, clip.width, dy)
        else:  # moved up: copy lower part up, new content at bottom
            source = Rect(clip.left, clip.top - dy, clip.width, h + dy)
            dest_top = clip.top
            exposed = Rect(clip.left, clip.bottom + dy, clip.width, -dy)
        return ScrollOp(
            area=clip, dy=dy, source=source, dest_top=dest_top, exposed=exposed
        )
