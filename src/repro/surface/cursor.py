"""Mouse pointer state and icons.

Section 4.2 defines two pointer models: the AH may paint the pointer
into RegionUpdate pixels, or ship position/icon explicitly via
MousePointerInfo messages.  This module provides the pointer bitmaps and
the AH-side state used by both models; "The participants MUST support
both mouse models."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .framebuffer import Framebuffer
from .geometry import Rect

#: Classic 12x19 left-pointing arrow mask. '#' = black, '.' = white
#: outline, ' ' = transparent.
_ARROW_ROWS = (
    "#           ",
    "##          ",
    "#.#         ",
    "#..#        ",
    "#...#       ",
    "#....#      ",
    "#.....#     ",
    "#......#    ",
    "#.......#   ",
    "#........#  ",
    "#.........# ",
    "#......#####",
    "#...#..#    ",
    "#..# #..#   ",
    "#.#  #..#   ",
    "##    #..#  ",
    "#     #..#  ",
    "       ##   ",
    "            ",
)

_IBEAM_ROWS = (
    "### ###",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "   #   ",
    "### ###",
)


def _mask_to_rgba(rows: tuple[str, ...]) -> np.ndarray:
    height = len(rows)
    width = max(len(r) for r in rows)
    pixels = np.zeros((height, width, 4), dtype=np.uint8)
    for y, row in enumerate(rows):
        for x, ch in enumerate(row):
            if ch == "#":
                pixels[y, x] = (0, 0, 0, 255)
            elif ch == ".":
                pixels[y, x] = (255, 255, 255, 255)
    return pixels


def arrow_cursor() -> np.ndarray:
    """The default arrow pointer image, RGBA with transparency."""
    return _mask_to_rgba(_ARROW_ROWS)


def ibeam_cursor() -> np.ndarray:
    """The text-insertion (I-beam) pointer image."""
    return _mask_to_rgba(_IBEAM_ROWS)


@dataclass(slots=True)
class PointerState:
    """AH-side mouse pointer: position and current icon.

    ``image_dirty`` flips when the icon changes, telling the AH that the
    next MousePointerInfo must carry the new image (section 5.2.4:
    "The participant MUST store and use this image until a new image
    arrives").
    """

    x: int = 0
    y: int = 0
    image: np.ndarray = field(default_factory=arrow_cursor)
    image_dirty: bool = True
    _moved: bool = field(default=False, repr=False)

    def move_to(self, x: int, y: int) -> None:
        if (x, y) != (self.x, self.y):
            self.x, self.y = x, y
            self._moved = True

    def set_image(self, image: np.ndarray) -> None:
        if image.ndim != 3 or image.shape[2] != 4:
            raise ValueError("pointer image must be (h, w, 4) RGBA")
        self.image = np.array(image, dtype=np.uint8, copy=True)
        self.image_dirty = True

    def take_pending(self) -> tuple[bool, bool]:
        """Return ``(moved, image_changed)`` since last call and clear."""
        moved, self._moved = self._moved, False
        dirty, self.image_dirty = self.image_dirty, False
        return moved, dirty

    def paint_onto(self, frame: Framebuffer) -> Rect:
        """Composite the pointer into ``frame`` (in-RegionUpdate model).

        Alpha is treated as a 1-bit mask (the draft's icons are cursor
        masks, not smooth alpha).  Returns the affected screen rect.
        """
        img = self.image
        h, w = img.shape[:2]
        target = Rect(self.x, self.y, w, h).intersection(frame.bounds)
        if target.is_empty():
            return target
        src = img[: target.height, : target.width]
        dst = frame.array[
            target.top : target.bottom, target.left : target.right
        ]
        opaque = src[:, :, 3] == 255
        dst[opaque] = src[opaque]
        return target
