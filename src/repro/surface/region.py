"""Region algebra: sets of pixels stored as disjoint rectangles.

The damage tracker, compositor, and update scheduler all manipulate
irregular screen areas ("everything the editor repainted this frame,
minus what the overlapping dialog hides").  A :class:`Region` keeps a
band-normalised list of disjoint rectangles and supports union,
intersection, subtraction and translation with exact pixel semantics.

Normalisation uses the classic y-x banding from the X server: pixels are
grouped into maximal horizontal bands, and runs within a band are merged.
Banding makes equality, area, and iteration deterministic regardless of
the construction order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .geometry import EMPTY_RECT, Rect


def _band_edges(rects: list[Rect]) -> list[int]:
    """All distinct horizontal band boundaries across ``rects``."""
    edges: set[int] = set()
    for r in rects:
        edges.add(r.top)
        edges.add(r.bottom)
    return sorted(edges)


def _normalise(rects: Iterable[Rect]) -> tuple[Rect, ...]:
    """Canonical y-x banded decomposition of the union of ``rects``."""
    src = [r for r in rects if not r.is_empty()]
    if not src:
        return ()
    edges = _band_edges(src)
    out: list[Rect] = []
    pending: Rect | None = None  # band-merge candidate from prior band
    for top, bottom in zip(edges, edges[1:]):
        # Collect x-spans of rects overlapping this band.
        spans: list[tuple[int, int]] = []
        for r in src:
            if r.top < bottom and top < r.bottom:
                spans.append((r.left, r.right))
        if not spans:
            continue
        spans.sort()
        merged: list[tuple[int, int]] = [spans[0]]
        for left, right in spans[1:]:
            last_left, last_right = merged[-1]
            if left <= last_right:  # touching or overlapping → merge
                merged[-1] = (last_left, max(last_right, right))
            else:
                merged.append((left, right))
        for left, right in merged:
            out.append(Rect.from_edges(left, top, right, bottom))
    # Vertical coalescing: merge bands whose x-structure is identical.
    out = _coalesce_bands(out)
    if pending is not None:  # pragma: no cover - defensive
        out.append(pending)
    return tuple(out)


def _coalesce_bands(rects: list[Rect]) -> list[Rect]:
    """Merge vertically adjacent bands that share identical x-spans."""
    if not rects:
        return rects
    # Group by band (top, bottom).
    bands: dict[tuple[int, int], list[Rect]] = {}
    for r in rects:
        bands.setdefault((r.top, r.bottom), []).append(r)
    ordered = sorted(bands.items())
    result: list[Rect] = []
    current_key, current_rects = ordered[0]
    current_rects = sorted(current_rects, key=lambda r: r.left)
    for key, group in ordered[1:]:
        group = sorted(group, key=lambda r: r.left)
        same_x = [(r.left, r.right) for r in group] == [
            (r.left, r.right) for r in current_rects
        ]
        if key[0] == current_key[1] and same_x:
            # Extend current band downward.
            current_key = (current_key[0], key[1])
            current_rects = [
                Rect.from_edges(r.left, current_key[0], r.right, current_key[1])
                for r in group
            ]
        else:
            result.extend(current_rects)
            current_key, current_rects = key, group
    result.extend(current_rects)
    return result


class Region:
    """An immutable set of pixels represented by disjoint rectangles."""

    __slots__ = ("_rects",)

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        self._rects: tuple[Rect, ...] = _normalise(rects)

    # -- Constructors -------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Region":
        region = cls.__new__(cls)
        region._rects = () if rect.is_empty() else (rect,)
        return region

    @classmethod
    def empty(cls) -> "Region":
        return _EMPTY_REGION

    # -- Introspection ------------------------------------------------

    @property
    def rects(self) -> tuple[Rect, ...]:
        """The disjoint rectangles, banded top-to-bottom, left-to-right."""
        return self._rects

    @property
    def area(self) -> int:
        return sum(r.area for r in self._rects)

    def is_empty(self) -> bool:
        return not self._rects

    def bounds(self) -> Rect:
        """Bounding box; the empty rect for an empty region."""
        if not self._rects:
            return EMPTY_RECT
        left = min(r.left for r in self._rects)
        top = min(r.top for r in self._rects)
        right = max(r.right for r in self._rects)
        bottom = max(r.bottom for r in self._rects)
        return Rect.from_edges(left, top, right, bottom)

    def contains_point(self, x: int, y: int) -> bool:
        return any(r.contains_point(x, y) for r in self._rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self._rects == other._rects

    def __hash__(self) -> int:
        return hash(self._rects)

    def __repr__(self) -> str:
        return f"Region({list(self._rects)!r})"

    def __bool__(self) -> bool:
        return bool(self._rects)

    # -- Algebra ------------------------------------------------------

    def union(self, other: "Region") -> "Region":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Region(self._rects + other._rects)

    def union_rect(self, rect: Rect) -> "Region":
        if rect.is_empty():
            return self
        return Region(self._rects + (rect,))

    def intersect(self, other: "Region") -> "Region":
        pieces: list[Rect] = []
        for a in self._rects:
            for b in other._rects:
                clip = a.intersection(b)
                if not clip.is_empty():
                    pieces.append(clip)
        return Region(pieces)

    def intersect_rect(self, rect: Rect) -> "Region":
        pieces = [r.intersection(rect) for r in self._rects]
        return Region(p for p in pieces if not p.is_empty())

    def subtract(self, other: "Region") -> "Region":
        remaining = list(self._rects)
        for hole in other._rects:
            next_remaining: list[Rect] = []
            for r in remaining:
                next_remaining.extend(r.subtract(hole))
            remaining = next_remaining
            if not remaining:
                break
        return Region(remaining)

    def subtract_rect(self, rect: Rect) -> "Region":
        return self.subtract(Region.from_rect(rect))

    def translated(self, dx: int, dy: int) -> "Region":
        return Region(r.translated(dx, dy) for r in self._rects)

    def simplified(self, max_rects: int) -> "Region":
        """Coarsen to at most ``max_rects`` rectangles.

        The update scheduler caps per-frame rectangle counts so a
        heavily fragmented damage region does not explode into hundreds
        of tiny RegionUpdate messages; beyond the cap we fall back to
        the bounding box, trading some redundant pixels for fewer
        messages.
        """
        if max_rects < 1:
            raise ValueError("max_rects must be >= 1")
        if len(self._rects) <= max_rects:
            return self
        return Region.from_rect(self.bounds())


_EMPTY_REGION = Region()
