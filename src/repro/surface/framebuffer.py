"""RGBA pixel buffers backed by numpy arrays.

A :class:`Framebuffer` is the pixel store for windows, the composited
screen at the AH, and the reconstructed canvases at participants.  All
pixel data is ``uint8`` RGBA in row-major ``(height, width, 4)`` layout.
"""

from __future__ import annotations

import numpy as np

from .geometry import Rect

#: Number of channels (RGBA).
CHANNELS = 4

Color = tuple[int, int, int, int]

#: Opaque black, the draft-mandated blanking colour for non-shared areas.
BLACK: Color = (0, 0, 0, 255)
WHITE: Color = (255, 255, 255, 255)
TRANSPARENT: Color = (0, 0, 0, 0)


class Framebuffer:
    """A mutable RGBA pixel rectangle with copy/fill/blit primitives."""

    __slots__ = ("_pixels",)

    def __init__(self, width: int, height: int, fill: Color = BLACK) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"framebuffer must be non-empty: {width}x{height}")
        self._pixels = np.empty((height, width, CHANNELS), dtype=np.uint8)
        self._pixels[:, :] = fill

    # -- Constructors -------------------------------------------------

    @classmethod
    def from_array(cls, pixels: np.ndarray) -> "Framebuffer":
        """Wrap an existing ``(h, w, 4) uint8`` array (copied)."""
        if pixels.ndim != 3 or pixels.shape[2] != CHANNELS:
            raise ValueError(f"expected (h, w, 4) array, got {pixels.shape}")
        if pixels.dtype != np.uint8:
            raise ValueError(f"expected uint8 pixels, got {pixels.dtype}")
        fb = cls.__new__(cls)
        fb._pixels = np.array(pixels, dtype=np.uint8, copy=True)
        return fb

    def copy(self) -> "Framebuffer":
        return Framebuffer.from_array(self._pixels)

    # -- Introspection ------------------------------------------------

    @property
    def width(self) -> int:
        return self._pixels.shape[1]

    @property
    def height(self) -> int:
        return self._pixels.shape[0]

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    @property
    def array(self) -> np.ndarray:
        """The underlying array (mutable view — callers share pixels)."""
        return self._pixels

    def get_pixel(self, x: int, y: int) -> Color:
        r, g, b, a = self._pixels[y, x]
        return (int(r), int(g), int(b), int(a))

    # -- Mutation -----------------------------------------------------

    def fill(self, color: Color, rect: Rect | None = None) -> None:
        """Fill ``rect`` (or the whole buffer) with a solid colour."""
        target = self.bounds if rect is None else rect.intersection(self.bounds)
        if target.is_empty():
            return
        self._pixels[target.top : target.bottom, target.left : target.right] = color

    def put_pixel(self, x: int, y: int, color: Color) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self._pixels[y, x] = color

    def read_rect(self, rect: Rect) -> np.ndarray:
        """Copy out the pixels of ``rect`` (clipped to the buffer)."""
        clip = rect.intersection(self.bounds)
        if clip.is_empty():
            return np.zeros((0, 0, CHANNELS), dtype=np.uint8)
        return np.array(
            self._pixels[clip.top : clip.bottom, clip.left : clip.right],
            copy=True,
        )

    def write_rect(self, left: int, top: int, pixels: np.ndarray) -> Rect:
        """Blit ``pixels`` with its top-left at ``(left, top)``.

        Pixels falling outside the buffer are clipped.  Returns the
        rectangle actually written (empty rect when fully clipped).
        """
        if pixels.ndim != 3 or pixels.shape[2] != CHANNELS:
            raise ValueError(f"expected (h, w, 4) pixels, got {pixels.shape}")
        h, w = pixels.shape[:2]
        if h == 0 or w == 0:
            return Rect(0, 0, 0, 0)
        # Clip manually: left/top may be negative (partially off-buffer).
        x0 = max(left, 0)
        y0 = max(top, 0)
        x1 = min(left + w, self.width)
        y1 = min(top + h, self.height)
        if x1 <= x0 or y1 <= y0:
            return Rect(0, 0, 0, 0)
        clip = Rect.from_edges(x0, y0, x1, y1)
        src_x = clip.left - left
        src_y = clip.top - top
        self._pixels[clip.top : clip.bottom, clip.left : clip.right] = pixels[
            src_y : src_y + clip.height, src_x : src_x + clip.width
        ]
        return clip

    def copy_rect(self, src: Rect, dest_left: int, dest_top: int) -> Rect:
        """Move pixels of ``src`` to ``(dest_left, dest_top)`` in-place.

        This is the participant-side primitive for MoveRectangle
        (section 5.2.3): "Source and destination rectangles may
        overlap", so the copy is staged through a temporary.
        """
        data = self.read_rect(src)
        if data.size == 0:
            return Rect(0, 0, 0, 0)
        return self.write_rect(dest_left, dest_top, data)

    def scroll(self, rect: Rect, dy: int) -> None:
        """Shift the contents of ``rect`` vertically by ``dy`` pixels.

        Positive ``dy`` moves content down.  Vacated rows are left
        untouched (the caller repaints them) — matching how a terminal
        scroll damages only the fresh line.
        """
        clip = rect.intersection(self.bounds)
        if clip.is_empty() or dy == 0:
            return
        if abs(dy) >= clip.height:
            return
        data = self.read_rect(clip)
        if dy > 0:
            self.write_rect(clip.left, clip.top + dy, data[: clip.height - dy])
        else:
            self.write_rect(clip.left, clip.top, data[-dy:])

    # -- Comparison ---------------------------------------------------

    def identical_to(self, other: "Framebuffer") -> bool:
        return (
            self.width == other.width
            and self.height == other.height
            and bool(np.array_equal(self._pixels, other._pixels))
        )

    def diff_rect(self, other: "Framebuffer", rect: Rect) -> bool:
        """True when the two buffers differ anywhere inside ``rect``."""
        clip = rect.intersection(self.bounds)
        if clip.is_empty():
            return False
        a = self._pixels[clip.top : clip.bottom, clip.left : clip.right]
        b = other._pixels[clip.top : clip.bottom, clip.left : clip.right]
        return not bool(np.array_equal(a, b))

    def mean_abs_error(self, other: "Framebuffer") -> float:
        """Mean absolute per-channel error against ``other`` (0 = equal)."""
        if self.width != other.width or self.height != other.height:
            raise ValueError("size mismatch")
        a = self._pixels.astype(np.int16)
        b = other._pixels.astype(np.int16)
        return float(np.abs(a - b).mean())
