"""Integer pixel geometry primitives.

The draft's coordinate system (section 4.1) places the origin ``(0, 0)``
at the upper-left corner, with all coordinates absolute and measured in
pixels.  Protocol fields for left/top/width/height are unsigned 32-bit
integers, so every shape here works in non-negative integer space and
validates its bounds eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Maximum value for the unsigned 32-bit coordinate fields on the wire.
MAX_COORD = 0xFFFF_FFFF


@dataclass(frozen=True, slots=True)
class Point:
    """An absolute pixel position, origin at the upper-left corner."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not (0 <= self.x <= MAX_COORD and 0 <= self.y <= MAX_COORD):
            raise ValueError(f"point out of u32 range: ({self.x}, {self.y})")

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point moved by ``(dx, dy)``; result must stay valid."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Size:
    """A width/height pair in pixels.  Zero-sized is allowed (empty)."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if not (0 <= self.width <= MAX_COORD and 0 <= self.height <= MAX_COORD):
            raise ValueError(
                f"size out of u32 range: {self.width}x{self.height}"
            )

    @property
    def area(self) -> int:
        return self.width * self.height

    def is_empty(self) -> bool:
        return self.width == 0 or self.height == 0


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned pixel rectangle: ``[left, right) x [top, bottom)``.

    Uses half-open intervals so adjacent rectangles tile without overlap
    and area arithmetic stays exact.  ``left``/``top`` match the wire
    fields of WindowManagerInfo records and RegionUpdate headers.
    """

    left: int
    top: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(f"negative rect size: {self.width}x{self.height}")
        if not (0 <= self.left <= MAX_COORD and 0 <= self.top <= MAX_COORD):
            raise ValueError(f"rect origin out of range: {self.left},{self.top}")
        if self.right > MAX_COORD + 1 or self.bottom > MAX_COORD + 1:
            raise ValueError("rect extends past u32 coordinate space")

    # -- Constructors -------------------------------------------------

    @classmethod
    def from_points(cls, p1: Point, p2: Point) -> "Rect":
        """Bounding rect of two corner points (order-independent)."""
        left, right = sorted((p1.x, p2.x))
        top, bottom = sorted((p1.y, p2.y))
        return cls(left, top, right - left, bottom - top)

    @classmethod
    def from_edges(cls, left: int, top: int, right: int, bottom: int) -> "Rect":
        if right < left or bottom < top:
            raise ValueError("edges out of order")
        return cls(left, top, right - left, bottom - top)

    # -- Accessors ----------------------------------------------------

    @property
    def right(self) -> int:
        return self.left + self.width

    @property
    def bottom(self) -> int:
        return self.top + self.height

    @property
    def origin(self) -> Point:
        return Point(self.left, self.top)

    @property
    def size(self) -> Size:
        return Size(self.width, self.height)

    @property
    def area(self) -> int:
        return self.width * self.height

    def is_empty(self) -> bool:
        return self.width == 0 or self.height == 0

    # -- Predicates ---------------------------------------------------

    def contains_point(self, x: int, y: int) -> bool:
        """True when ``(x, y)`` lies inside the half-open rectangle.

        This is the predicate behind the AH-side legitimacy check: "The
        AH MUST only accept legitimate HIP events by checking whether
        the requested coordinates are inside the shared windows."
        """
        return self.left <= x < self.right and self.top <= y < self.bottom

    def contains_rect(self, other: "Rect") -> bool:
        if other.is_empty():
            return True
        return (
            self.left <= other.left
            and self.top <= other.top
            and other.right <= self.right
            and other.bottom <= self.bottom
        )

    def intersects(self, other: "Rect") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return (
            self.left < other.right
            and other.left < self.right
            and self.top < other.bottom
            and other.top < self.bottom
        )

    # -- Combinators --------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect":
        """Largest rect inside both; empty rect at (0,0) if disjoint."""
        left = max(self.left, other.left)
        top = max(self.top, other.top)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        if right <= left or bottom <= top:
            return EMPTY_RECT
        return Rect(left, top, right - left, bottom - top)

    def union_bounds(self, other: "Rect") -> "Rect":
        """Bounding box of both rects (not a set union)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        left = min(self.left, other.left)
        top = min(self.top, other.top)
        right = max(self.right, other.right)
        bottom = max(self.bottom, other.bottom)
        return Rect(left, top, right - left, bottom - top)

    def subtract(self, other: "Rect") -> list["Rect"]:
        """Set difference ``self - other`` as up to four disjoint rects.

        Decomposes into horizontal bands (top band, bottom band, then
        left/right slivers of the middle band), the classic window-
        system damage representation.
        """
        clip = self.intersection(other)
        if clip.is_empty():
            return [] if self.is_empty() else [self]
        out: list[Rect] = []
        if clip.top > self.top:  # band above the hole
            out.append(Rect.from_edges(self.left, self.top, self.right, clip.top))
        if clip.bottom < self.bottom:  # band below the hole
            out.append(
                Rect.from_edges(self.left, clip.bottom, self.right, self.bottom)
            )
        if clip.left > self.left:  # left sliver
            out.append(
                Rect.from_edges(self.left, clip.top, clip.left, clip.bottom)
            )
        if clip.right < self.right:  # right sliver
            out.append(
                Rect.from_edges(clip.right, clip.top, self.right, clip.bottom)
            )
        return out

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.left + dx, self.top + dy, self.width, self.height)

    def clamped_to(self, bounds: "Rect") -> "Rect":
        return self.intersection(bounds)

    def tiles(self, tile: int) -> Iterator["Rect"]:
        """Yield the grid tiles of size ``tile`` covering this rect.

        Edge tiles are clipped to the rect.  Used by the tile-based
        change detector.
        """
        if tile <= 0:
            raise ValueError("tile size must be positive")
        y = self.top
        while y < self.bottom:
            h = min(tile, self.bottom - y)
            x = self.left
            while x < self.right:
                w = min(tile, self.right - x)
                yield Rect(x, y, w, h)
                x += tile
            y += tile

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.left, self.top, self.width, self.height)


#: Canonical empty rectangle.
EMPTY_RECT = Rect(0, 0, 0, 0)
