"""Pixel scaling for participant-side view zoom.

Section 4.2 lists "participant-side scaling ... to optimize
transmission of data to participants with a small screen" among the
optional enhancements.  Here the *view* is scaled at the participant
(the wire still carries full-resolution updates): box-filter downscale
for shrinking, nearest-neighbour for integer zoom-in.
"""

from __future__ import annotations

import numpy as np


def downscale(pixels: np.ndarray, factor: int) -> np.ndarray:
    """Box-filter ``pixels`` down by an integer ``factor``.

    Edges that do not divide evenly are cropped (at most ``factor - 1``
    pixels), matching how thumbnail views treat ragged edges.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise ValueError(f"expected (h, w, 4) pixels, got {pixels.shape}")
    if factor == 1:
        return np.array(pixels, copy=True)
    h, w = pixels.shape[:2]
    out_h, out_w = h // factor, w // factor
    if out_h == 0 or out_w == 0:
        raise ValueError(
            f"image {w}x{h} too small to downscale by {factor}"
        )
    cropped = pixels[: out_h * factor, : out_w * factor].astype(np.uint32)
    blocks = cropped.reshape(out_h, factor, out_w, factor, 4)
    return (blocks.mean(axis=(1, 3)) + 0.5).astype(np.uint8)


def upscale(pixels: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour zoom by an integer ``factor``."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise ValueError(f"expected (h, w, 4) pixels, got {pixels.shape}")
    if factor == 1:
        return np.array(pixels, copy=True)
    return np.repeat(np.repeat(pixels, factor, axis=0), factor, axis=1)


def fit_factor(width: int, height: int, max_width: int,
               max_height: int) -> int:
    """Smallest integer downscale factor fitting a bounding box."""
    if width <= 0 or height <= 0 or max_width <= 0 or max_height <= 0:
        raise ValueError("dimensions must be positive")
    factor = 1
    while width // factor > max_width or height // factor > max_height:
        factor += 1
        if factor > max(width, height):
            raise ValueError("cannot fit even a 1-pixel view")
    return factor
