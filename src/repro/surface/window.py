"""Virtual window system: windows, z-order, groups, and the manager.

This package substitutes for the OS window system the paper captures
from.  A :class:`Window` owns an RGBA backing store and a geometry on
the virtual desktop; the :class:`WindowManager` maintains the stacking
order (bottom-first, exactly the implicit z-order of WindowManagerInfo
records, section 5.2.1) and process grouping (the GroupID field).

Everything a real capture layer would report — geometry changes, damage,
stacking changes — is surfaced through an observer callback so the AH
can translate it into protocol messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from .framebuffer import BLACK, Color, Framebuffer
from .geometry import Rect
from .region import Region

#: windowID is a 16-bit unsigned wire field (section 5.1.2).
MAX_WINDOW_ID = 0xFFFF
#: GroupID is an 8-bit field; 0 is reserved for "no grouping" (section 5.2.1).
MAX_GROUP_ID = 0xFF
NO_GROUP = 0


class WindowError(Exception):
    """Raised for invalid window-manager operations."""


@dataclass(frozen=True, slots=True)
class WindowGeometry:
    """A snapshot of one window's placement, as carried on the wire."""

    window_id: int
    group_id: int
    rect: Rect

    def __post_init__(self) -> None:
        if not 0 <= self.window_id <= MAX_WINDOW_ID:
            raise WindowError(f"windowID out of range: {self.window_id}")
        if not 0 <= self.group_id <= MAX_GROUP_ID:
            raise WindowError(f"groupID out of range: {self.group_id}")


class Window:
    """One shared window: geometry plus an RGBA backing store.

    The backing store always matches the window's size; resizing
    preserves the existing image in the overlapping area, as the draft
    requires of participants ("The participant MUST keep the existing
    window image after a resize and relocation").
    """

    def __init__(
        self,
        window_id: int,
        rect: Rect,
        group_id: int = NO_GROUP,
        fill: Color = BLACK,
        title: str = "",
    ) -> None:
        if rect.is_empty():
            raise WindowError("window must have non-zero size")
        self.geometry = WindowGeometry(window_id, group_id, rect)
        self.title = title
        self.surface = Framebuffer(rect.width, rect.height, fill=fill)
        #: Window-local damage accumulated since last harvest.
        self._damage = Region()

    # -- Accessors ----------------------------------------------------

    @property
    def window_id(self) -> int:
        return self.geometry.window_id

    @property
    def group_id(self) -> int:
        return self.geometry.group_id

    @property
    def rect(self) -> Rect:
        return self.geometry.rect

    @property
    def local_bounds(self) -> Rect:
        return Rect(0, 0, self.rect.width, self.rect.height)

    # -- Drawing (window-local coordinates) ---------------------------

    def fill(self, color: Color, rect: Rect | None = None) -> None:
        target = self.local_bounds if rect is None else rect
        self.surface.fill(color, target)
        self.add_damage(target)

    def draw_pixels(self, left: int, top: int, pixels: np.ndarray) -> None:
        written = self.surface.write_rect(left, top, pixels)
        if not written.is_empty():
            self.add_damage(written)

    def scroll(self, rect: Rect, dy: int) -> None:
        self.surface.scroll(rect, dy)
        self.add_damage(rect)

    def add_damage(self, rect: Rect) -> None:
        clip = rect.intersection(self.local_bounds)
        if not clip.is_empty():
            self._damage = self._damage.union_rect(clip)

    def take_damage(self) -> Region:
        """Return and clear accumulated window-local damage."""
        damage, self._damage = self._damage, Region()
        return damage

    def peek_damage(self) -> Region:
        return self._damage

    # -- Geometry mutation (through the manager) ----------------------

    def _apply_geometry(self, rect: Rect) -> None:
        old = self.geometry.rect
        if rect.size != old.size:
            fresh = Framebuffer(rect.width, rect.height, fill=BLACK)
            keep_w = min(old.width, rect.width)
            keep_h = min(old.height, rect.height)
            fresh.write_rect(
                0, 0, self.surface.read_rect(Rect(0, 0, keep_w, keep_h))
            )
            self.surface = fresh
            # Newly exposed area must be repainted and shipped.
            exposed = Region.from_rect(Rect(0, 0, rect.width, rect.height))
            exposed = exposed.subtract_rect(Rect(0, 0, keep_w, keep_h))
            self._damage = self._damage.union(exposed)
        self.geometry = WindowGeometry(
            self.geometry.window_id, self.geometry.group_id, rect
        )


@dataclass(frozen=True, slots=True)
class WindowEvent:
    """What changed in the window manager, for AH consumption.

    ``kind`` is one of ``created``, ``closed``, ``moved``, ``resized``,
    ``restacked`` — every kind except pure damage triggers a
    WindowManagerInfo message per section 5.2.1.
    """

    kind: str
    window_id: int


class WindowManager:
    """Owns the stacking order and identity of shared windows."""

    def __init__(self, screen_width: int = 1280, screen_height: int = 1024):
        if screen_width <= 0 or screen_height <= 0:
            raise WindowError("screen must be non-empty")
        self.screen = Rect(0, 0, screen_width, screen_height)
        self._stack: list[Window] = []  # bottom-first, wire order
        self._by_id: dict[int, Window] = {}
        self._next_id = 1
        self._observers: list[Callable[[WindowEvent], None]] = []

    # -- Observation ---------------------------------------------------

    def add_observer(self, callback: Callable[[WindowEvent], None]) -> None:
        self._observers.append(callback)

    def _notify(self, kind: str, window_id: int) -> None:
        event = WindowEvent(kind, window_id)
        for callback in self._observers:
            callback(event)

    # -- Lookup --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterator[Window]:
        """Iterate bottom-first (the WindowManagerInfo record order)."""
        return iter(self._stack)

    def get(self, window_id: int) -> Window:
        try:
            return self._by_id[window_id]
        except KeyError:
            raise WindowError(f"no window with id {window_id}") from None

    def has(self, window_id: int) -> bool:
        return window_id in self._by_id

    def top_window(self) -> Window | None:
        return self._stack[-1] if self._stack else None

    def geometries(self) -> list[WindowGeometry]:
        """Bottom-first geometry snapshots — a WindowManagerInfo payload."""
        return [w.geometry for w in self._stack]

    def window_ids(self) -> list[int]:
        return [w.window_id for w in self._stack]

    # -- Lifecycle ------------------------------------------------------

    def create_window(
        self,
        rect: Rect,
        group_id: int = NO_GROUP,
        title: str = "",
        fill: Color = BLACK,
        window_id: int | None = None,
    ) -> Window:
        if window_id is None:
            window_id = self._allocate_id()
        elif window_id in self._by_id:
            raise WindowError(f"windowID {window_id} already in use")
        elif not 0 <= window_id <= MAX_WINDOW_ID:
            raise WindowError(f"windowID out of range: {window_id}")
        window = Window(window_id, rect, group_id=group_id, title=title, fill=fill)
        self._stack.append(window)  # new windows map on top
        self._by_id[window_id] = window
        window.add_damage(window.local_bounds)
        self._notify("created", window_id)
        return window

    def close_window(self, window_id: int) -> None:
        window = self.get(window_id)
        self._stack.remove(window)
        del self._by_id[window_id]
        self._notify("closed", window_id)

    def _allocate_id(self) -> int:
        for _ in range(MAX_WINDOW_ID + 1):
            candidate = self._next_id
            self._next_id = (self._next_id % MAX_WINDOW_ID) + 1
            if candidate not in self._by_id:
                return candidate
        raise WindowError("windowID space exhausted")

    # -- Geometry / stacking --------------------------------------------

    def move_window(self, window_id: int, left: int, top: int) -> None:
        window = self.get(window_id)
        rect = window.rect
        if (left, top) == (rect.left, rect.top):
            return
        window._apply_geometry(Rect(left, top, rect.width, rect.height))
        self._notify("moved", window_id)

    def resize_window(self, window_id: int, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise WindowError("window must keep non-zero size")
        window = self.get(window_id)
        rect = window.rect
        if (width, height) == (rect.width, rect.height):
            return
        window._apply_geometry(Rect(rect.left, rect.top, width, height))
        self._notify("resized", window_id)

    def raise_window(self, window_id: int) -> None:
        window = self.get(window_id)
        if self._stack[-1] is window:
            return
        self._stack.remove(window)
        self._stack.append(window)
        self._notify("restacked", window_id)

    def lower_window(self, window_id: int) -> None:
        window = self.get(window_id)
        if self._stack[0] is window:
            return
        self._stack.remove(window)
        self._stack.insert(0, window)
        self._notify("restacked", window_id)

    # -- Hit testing & visibility ----------------------------------------

    def window_at(self, x: int, y: int) -> Window | None:
        """Topmost window containing the screen point, if any.

        This implements the AH legitimacy rule of section 4.1: a HIP
        event is only acceptable when its coordinates fall inside a
        shared window.
        """
        for window in reversed(self._stack):
            if window.rect.contains_point(x, y):
                return window
        return None

    def visible_region(self, window_id: int) -> Region:
        """Screen-space region of ``window_id`` not hidden by windows above."""
        window = self.get(window_id)
        region = Region.from_rect(window.rect.intersection(self.screen))
        above = False
        for other in self._stack:
            if other is window:
                above = True
                continue
            if above:
                region = region.subtract_rect(other.rect)
        return region

    def shared_region(self) -> Region:
        """Union of all shared windows clipped to the screen."""
        region = Region()
        for window in self._stack:
            region = region.union_rect(window.rect.intersection(self.screen))
        return region

    # -- Damage harvest ---------------------------------------------------

    def harvest_damage(self) -> dict[int, Region]:
        """Collect and clear per-window damage in window-local coordinates.

        Only damage inside the *visible* part of each window is
        reported — pixels hidden under higher windows need not be (and,
        for true application sharing, must not be) shipped.
        """
        harvested: dict[int, Region] = {}
        for window in self._stack:
            damage = window.take_damage()
            if damage.is_empty():
                continue
            visible = self.visible_region(window.window_id).translated(
                -window.rect.left, -window.rect.top
            )
            clipped = damage.intersect(visible)
            if not clipped.is_empty():
                harvested[window.window_id] = clipped
        return harvested

    def composite(self, blank: Color = BLACK) -> Framebuffer:
        """Render the shared desktop: windows over a blanked background.

        Section 2: "A true application sharing system must blank all
        the nonshared windows" — everything that is not a shared window
        composites as ``blank``.
        """
        screen = Framebuffer(self.screen.width, self.screen.height, fill=blank)
        for window in self._stack:  # bottom-first: later windows overdraw
            screen.write_rect(
                window.rect.left,
                window.rect.top,
                window.surface.array,
            )
        return screen


def layout_signature(geometries: Iterable[WindowGeometry]) -> tuple:
    """Hashable snapshot of a full window layout for change detection."""
    return tuple(
        (g.window_id, g.group_id, g.rect.as_tuple()) for g in geometries
    )
