"""Tile-based change detection between framebuffer generations.

The draft observes (section 2) that screen content "is characterized by
large areas of the screen that remain unchanged for long periods of
time, while others change rapidly."  A capture layer that cannot get
damage events from applications must *discover* the changed pixels by
diffing successive captures.  :class:`TileDiffer` does this with a fixed
grid: each tile is compared wholesale (a vectorised numpy comparison)
and changed tiles are merged into a compact :class:`Region`.

Tile size trades detection granularity against comparison overhead; the
ablation benchmark ``bench_damage.py`` sweeps it.
"""

from __future__ import annotations

import numpy as np

from .framebuffer import Framebuffer
from .geometry import Rect
from .region import Region

DEFAULT_TILE = 32


class TileDiffer:
    """Detects changed regions between consecutive frames of one surface."""

    def __init__(self, width: int, height: int, tile: int = DEFAULT_TILE):
        if tile <= 0:
            raise ValueError("tile size must be positive")
        if width <= 0 or height <= 0:
            raise ValueError("surface must be non-empty")
        self.tile = tile
        self.bounds = Rect(0, 0, width, height)
        self._previous: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the reference frame; next diff reports full damage."""
        self._previous = None

    def diff(self, frame: Framebuffer) -> Region:
        """Damage of ``frame`` relative to the previously seen frame.

        The first call (or the first after :meth:`reset`) reports the
        whole surface as damaged — exactly the "full screen update"
        semantics of a PLI response.

        All tiles are compared in one whole-array pass: a single
        byte-inequality reduction over the channel axis, padded to the
        tile grid and reduced over the intra-tile block axes.  The
        reference snapshot is refreshed by copying only the changed
        tiles — an unchanged frame costs one comparison and zero copies.
        """
        if frame.width != self.bounds.width or frame.height != self.bounds.height:
            raise ValueError(
                f"frame size {frame.width}x{frame.height} does not match "
                f"differ size {self.bounds.width}x{self.bounds.height}"
            )
        current = frame.array
        if self._previous is None:
            self._previous = np.array(current, copy=True)
            return Region.from_rect(self.bounds)

        prev = self._previous
        # One RGBA pixel is one uint32 lane: a single 32-bit compare per
        # pixel beats a byte compare + channel-axis reduction by ~60x.
        if not current.flags.c_contiguous:
            current = np.ascontiguousarray(current)
        neq = current.view(np.uint32)[:, :, 0] != prev.view(np.uint32)[:, :, 0]
        if not neq.any():
            return Region.empty()

        tile = self.tile
        height, width = neq.shape
        tiles_y = -(-height // tile)
        tiles_x = -(-width // tile)
        if height % tile or width % tile:
            padded = np.zeros((tiles_y * tile, tiles_x * tile), dtype=bool)
            padded[:height, :width] = neq
            neq = padded
        tile_changed = neq.reshape(tiles_y, tile, tiles_x, tile).any(axis=(1, 3))

        if tile_changed.all():
            np.copyto(prev, current)
            return Region.from_rect(self.bounds)
        changed: list[Rect] = []
        for ty, tx in np.argwhere(tile_changed):
            left = int(tx) * tile
            top = int(ty) * tile
            rect = Rect(
                left, top, min(tile, width - left), min(tile, height - top)
            )
            changed.append(rect)
            prev[rect.top : rect.bottom, rect.left : rect.right] = current[
                rect.top : rect.bottom, rect.left : rect.right
            ]
        return Region(changed)


def shrink_to_changed_rows(
    before: Framebuffer, after: Framebuffer, rect: Rect
) -> Rect:
    """Tighten ``rect`` to the minimal row span that actually changed.

    Applied after tile detection to avoid re-encoding identical rows at
    the top/bottom of a changed tile.  Returns the empty rect when the
    area is identical.
    """
    clip = rect.intersection(before.bounds).intersection(after.bounds)
    if clip.is_empty():
        return Rect(0, 0, 0, 0)
    a = before.array[clip.top : clip.bottom, clip.left : clip.right]
    b = after.array[clip.top : clip.bottom, clip.left : clip.right]
    row_changed = np.any(a != b, axis=(1, 2))
    indices = np.flatnonzero(row_changed)
    if indices.size == 0:
        return Rect(0, 0, 0, 0)
    first = int(indices[0])
    last = int(indices[-1])
    return Rect(clip.left, clip.top + first, clip.width, last - first + 1)
