"""Tile-based change detection between framebuffer generations.

The draft observes (section 2) that screen content "is characterized by
large areas of the screen that remain unchanged for long periods of
time, while others change rapidly."  A capture layer that cannot get
damage events from applications must *discover* the changed pixels by
diffing successive captures.  :class:`TileDiffer` does this with a fixed
grid: each tile is compared wholesale (a vectorised numpy comparison)
and changed tiles are merged into a compact :class:`Region`.

The comparison is band-partitionable: :func:`band_spans` splits the
tile grid into horizontal bands on tile boundaries and
:func:`band_tile_changes` computes one band's changed tiles
independently, so bands can run on worker processes
(:class:`repro.codecs.parallel.EncodePool`) against shared-memory
framebuffers.  Any band partition produces exactly the whole-image
result.

Tile size trades detection granularity against comparison overhead; the
ablation benchmark ``bench_damage.py`` sweeps it.
"""

from __future__ import annotations

import numpy as np

from .framebuffer import Framebuffer
from .geometry import Rect
from .region import Region

DEFAULT_TILE = 32


def band_spans(height: int, tile: int, bands: int) -> list[tuple[int, int]]:
    """Split ``height`` pixel rows into ≤ ``bands`` tile-aligned spans."""
    if bands < 1:
        raise ValueError("band count must be positive")
    tile_rows = -(-height // tile)
    bands = min(bands, tile_rows)
    per_band = -(-tile_rows // bands)
    spans = []
    for start in range(0, tile_rows, per_band):
        y0 = start * tile
        y1 = min((start + per_band) * tile, height)
        spans.append((y0, y1))
    return spans


def band_tile_changes(
    prev32: np.ndarray, cur32: np.ndarray, y0: int, y1: int, tile: int
) -> np.ndarray:
    """Changed-tile ``(ty, tx)`` coordinates for pixel rows ``[y0, y1)``.

    ``prev32``/``cur32`` are the whole-image ``(h, w) uint32`` pixel
    views (one RGBA pixel per lane — a single 32-bit compare per pixel
    beats a byte compare + channel reduction by ~60x).  ``y0`` must be
    tile-aligned; the returned tile rows are in whole-image tile
    coordinates, so per-band results concatenate directly.
    """
    neq = cur32[y0:y1] != prev32[y0:y1]
    if not neq.any():
        return np.empty((0, 2), dtype=np.int64)
    height, width = neq.shape
    tiles_y = -(-height // tile)
    tiles_x = -(-width // tile)
    if height % tile or width % tile:
        padded = np.zeros((tiles_y * tile, tiles_x * tile), dtype=bool)
        padded[:height, :width] = neq
        neq = padded
    tile_changed = neq.reshape(tiles_y, tile, tiles_x, tile).any(axis=(1, 3))
    coords = np.argwhere(tile_changed)
    coords[:, 0] += y0 // tile
    return coords


class TileDiffer:
    """Detects changed regions between consecutive frames of one surface.

    ``bands`` partitions the compare into tile-aligned horizontal
    bands; with ``pool`` (an :class:`repro.codecs.parallel.EncodePool`)
    the bands run on worker processes when both the reference snapshot
    and the incoming frame live in the pool's shared memory.  Either
    knob leaves the reported damage bit-identical to the default
    whole-image pass.
    """

    def __init__(
        self,
        width: int,
        height: int,
        tile: int = DEFAULT_TILE,
        bands: int = 1,
        pool=None,
    ):
        if tile <= 0:
            raise ValueError("tile size must be positive")
        if width <= 0 or height <= 0:
            raise ValueError("surface must be non-empty")
        if bands < 1:
            raise ValueError("band count must be positive")
        self.tile = tile
        self.bands = bands
        self.pool = pool
        self.bounds = Rect(0, 0, width, height)
        self._previous: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the reference frame; next diff reports full damage."""
        self._previous = None

    def _alloc_previous(self, current: np.ndarray) -> np.ndarray:
        """Reference snapshot storage: pool shared memory when available."""
        if self.pool is not None:
            frame = self.pool.alloc_frame(
                self.bounds.height, self.bounds.width
            )
            if frame is not None:
                np.copyto(frame.array, current)
                return frame.array
        return np.array(current, copy=True)

    def diff(self, frame: Framebuffer) -> Region:
        """Damage of ``frame`` relative to the previously seen frame.

        The first call (or the first after :meth:`reset`) reports the
        whole surface as damaged — exactly the "full screen update"
        semantics of a PLI response.

        All tiles are compared in one whole-array pass per band; the
        reference snapshot is refreshed by copying only the changed
        tiles — an unchanged frame costs one comparison and zero copies.
        """
        if frame.width != self.bounds.width or frame.height != self.bounds.height:
            raise ValueError(
                f"frame size {frame.width}x{frame.height} does not match "
                f"differ size {self.bounds.width}x{self.bounds.height}"
            )
        current = frame.array
        if self._previous is None:
            self._previous = self._alloc_previous(current)
            return Region.from_rect(self.bounds)

        prev = self._previous
        if not current.flags.c_contiguous:
            current = np.ascontiguousarray(current)
        tile = self.tile
        height, width = self.bounds.height, self.bounds.width
        spans = band_spans(height, tile, self.bands)

        coord_arrays = None
        if self.pool is not None:
            coord_arrays = self.pool.diff_bands(prev, current, spans, tile)
        if coord_arrays is None:
            prev32 = prev.view(np.uint32)[:, :, 0]
            cur32 = current.view(np.uint32)[:, :, 0]
            coord_arrays = [
                band_tile_changes(prev32, cur32, y0, y1, tile)
                for y0, y1 in spans
            ]
        coords = (
            np.concatenate(coord_arrays)
            if len(coord_arrays) > 1
            else coord_arrays[0]
        )
        if coords.shape[0] == 0:
            return Region.empty()

        tiles_total = (-(-height // tile)) * (-(-width // tile))
        if coords.shape[0] == tiles_total:
            np.copyto(prev, current)
            return Region.from_rect(self.bounds)
        changed: list[Rect] = []
        for ty, tx in coords:
            left = int(tx) * tile
            top = int(ty) * tile
            rect = Rect(
                left, top, min(tile, width - left), min(tile, height - top)
            )
            changed.append(rect)
            prev[rect.top : rect.bottom, rect.left : rect.right] = current[
                rect.top : rect.bottom, rect.left : rect.right
            ]
        return Region(changed)


def shrink_to_changed_rows(
    before: Framebuffer, after: Framebuffer, rect: Rect
) -> Rect:
    """Tighten ``rect`` to the minimal row span that actually changed.

    Applied after tile detection to avoid re-encoding identical rows at
    the top/bottom of a changed tile.  Returns the empty rect when the
    area is identical.
    """
    clip = rect.intersection(before.bounds).intersection(after.bounds)
    if clip.is_empty():
        return Rect(0, 0, 0, 0)
    a = before.array[clip.top : clip.bottom, clip.left : clip.right]
    b = after.array[clip.top : clip.bottom, clip.left : clip.right]
    row_changed = np.any(a != b, axis=(1, 2))
    indices = np.flatnonzero(row_changed)
    if indices.size == 0:
        return Rect(0, 0, 0, 0)
    first = int(indices[0])
    last = int(indices[-1])
    return Rect(clip.left, clip.top + first, clip.width, last - first + 1)
