"""Measurement helpers used by tests, examples and the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class LatencyRecorder:
    """Collects latency samples and reports percentile statistics."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(seconds)

    def extend(self, samples: list[float]) -> None:
        for sample in samples:
            self.record(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile; ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def sum(self) -> float:
        return math.fsum(self._samples)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }


@dataclass(slots=True)
class ByteCounter:
    """Byte/packet tally for one traffic class."""

    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0

    def add(self, payload: int, wire: int) -> None:
        self.packets += 1
        self.payload_bytes += payload
        self.wire_bytes += wire

    def merge(self, other: "ByteCounter") -> None:
        self.packets += other.packets
        self.payload_bytes += other.payload_bytes
        self.wire_bytes += other.wire_bytes


@dataclass(slots=True)
class TrafficStats:
    """Per-message-class traffic accounting for one session side."""

    window_info: ByteCounter = field(default_factory=ByteCounter)
    region_update: ByteCounter = field(default_factory=ByteCounter)
    move_rectangle: ByteCounter = field(default_factory=ByteCounter)
    pointer: ByteCounter = field(default_factory=ByteCounter)
    hip: ByteCounter = field(default_factory=ByteCounter)
    rtcp: ByteCounter = field(default_factory=ByteCounter)
    retransmit: ByteCounter = field(default_factory=ByteCounter)

    def total_wire_bytes(self) -> int:
        return (
            self.window_info.wire_bytes
            + self.region_update.wire_bytes
            + self.move_rectangle.wire_bytes
            + self.pointer.wire_bytes
            + self.hip.wire_bytes
            + self.rtcp.wire_bytes
            + self.retransmit.wire_bytes
        )

    def total_packets(self) -> int:
        return (
            self.window_info.packets
            + self.region_update.packets
            + self.move_rectangle.packets
            + self.pointer.packets
            + self.hip.packets
            + self.rtcp.packets
            + self.retransmit.packets
        )
