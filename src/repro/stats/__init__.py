"""Metrics and measurement helpers for experiments.

The classes here predate :mod:`repro.obs` and are kept as thin,
compatible adapters: construct them standalone as before, or obtain
registry-backed instances from an
:class:`~repro.obs.instrumentation.Instrumentation`
(``obs.traffic_stats()``, ``obs.latency_recorder(...)``, ``obs.trace``).
The observability names below re-export lazily from :mod:`repro.obs`.
"""

from .metrics import ByteCounter, LatencyRecorder, TrafficStats
from .trace import SessionTrace, TraceEvent

__all__ = [
    "ByteCounter",
    "Instrumentation",
    "LatencyRecorder",
    "MetricsRegistry",
    "NULL",
    "NullInstrumentation",
    "SessionTrace",
    "TraceEvent",
    "TrafficStats",
]

_OBS_NAMES = frozenset(
    {"Instrumentation", "MetricsRegistry", "NULL", "NullInstrumentation"}
)


def __getattr__(name):
    # Lazy to avoid a circular import: repro.obs builds on the metric
    # and trace primitives defined in this package.
    if name in _OBS_NAMES:
        from .. import obs

        return getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
