"""Metrics and measurement helpers for experiments."""

from .metrics import ByteCounter, LatencyRecorder, TrafficStats
from .trace import SessionTrace, TraceEvent

__all__ = [
    "ByteCounter",
    "LatencyRecorder",
    "SessionTrace",
    "TraceEvent",
    "TrafficStats",
]
