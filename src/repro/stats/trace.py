"""Session event traces for experiment post-processing.

A :class:`SessionTrace` is an append-only log of timestamped events
("update-sent", "update-applied", "nack", ...) that benchmarks and
examples use to reconstruct timelines — e.g. pairing each applied
update with its capture time to plot freshness over a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped event with free-form attributes."""

    time: float
    kind: str
    attrs: dict[str, Any] = field(default_factory=dict)


class SessionTrace:
    """An append-only, queryable event log for one experiment run."""

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self._events: list[TraceEvent] = []

    def record(self, kind: str, **attrs: Any) -> TraceEvent:
        event = TraceEvent(self._now(), kind, attrs)
        self._events.append(event)
        return event

    # -- Queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= time < end`` (append order preserved)."""
        return [e for e in self._events if start <= e.time < end]

    def first(self, kind: str) -> TraceEvent | None:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> TraceEvent | None:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def span(self, start_kind: str, end_kind: str) -> float | None:
        """Seconds from the first ``start_kind`` to the last ``end_kind``."""
        start = self.first(start_kind)
        end = self.last(end_kind)
        if start is None or end is None:
            return None
        return end.time - start.time

    def rate_per_second(self, kind: str, window: float | None = None) -> float:
        """Occurrences of ``kind`` per second of observation window.

        The window defaults to the whole-trace span (first to last event
        of *any* kind), so a burst of events recorded at one instant
        inside a longer trace is still rated against the time actually
        observed — the old first-to-last-of-kind span undercounted such
        bursts (a single event always rated 0).  Defined edge cases:

        * no matching events → 0.0;
        * zero-length window (empty trace, a single event, or every
          event at one timestamp) → 0.0 unless an explicit positive
          ``window`` is passed, since no rate is derivable from an
          instant.
        """
        count = sum(1 for e in self._events if e.kind == kind)
        if count == 0:
            return 0.0
        if window is None:
            window = self._events[-1].time - self._events[0].time
        if window <= 0:
            return 0.0
        return count / window

    def to_rows(self) -> list[dict[str, Any]]:
        """Flat dict rows (time, kind, **attrs) for tabular export."""
        return [
            {"time": e.time, "kind": e.kind, **e.attrs} for e in self._events
        ]
