"""A pull-based baseline session over the simulated reliable channel.

Glues :class:`RfbServer`/:class:`RfbClient` to the same
:class:`~repro.net.channel.ReliableChannel` pair the RTP system uses,
with the classic RFB pacing: the client issues the next update request
only after the previous update fully arrived.

Messages use a 32-bit length prefix (full-screen updates can exceed the
16-bit RFC 4571 frame limit the RTP side uses).
"""

from __future__ import annotations

import struct

from ..net.channel import DuplexChannel
from ..surface.window import WindowManager
from .rfb import RfbClient, RfbServer

_LEN = struct.Struct("!I")


class _MessageReader:
    """Incremental u32-length-prefixed message extractor."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer.extend(data)
        out: list[bytes] = []
        while len(self._buffer) >= _LEN.size:
            (length,) = _LEN.unpack_from(self._buffer)
            if len(self._buffer) < _LEN.size + length:
                break
            out.append(bytes(self._buffer[_LEN.size : _LEN.size + length]))
            del self._buffer[: _LEN.size + length]
        return out


def _frame(message: bytes) -> bytes:
    return _LEN.pack(len(message)) + message


class BaselineSession:
    """One server + one viewer, request/response over a stream pair."""

    def __init__(
        self,
        manager: WindowManager,
        link: DuplexChannel,
        now,
        client_id: str = "viewer",
        tile: int = 32,
    ) -> None:
        self.server = RfbServer(manager, tile=tile)
        self.client = RfbClient(manager.screen.width, manager.screen.height)
        self.client_id = client_id
        self._now = now
        self._to_client = link.forward
        self._to_server = link.backward
        self._client_reader = _MessageReader()
        self._server_reader = _MessageReader()
        self._awaiting_update = False
        self._request_sent_at = 0.0
        #: Time each applied update spent from request to apply.
        self.update_round_trips: list[float] = []
        self.requests_sent = 0

    # -- Client side ------------------------------------------------------

    def client_tick(self) -> None:
        """Pull when idle; apply whatever arrived."""
        if not self._awaiting_update:
            self._to_server.send(_frame(RfbClient.request()))
            self._awaiting_update = True
            self._request_sent_at = self._now()
            self.requests_sent += 1
        data = self._to_client.receive_ready()
        if data:
            for message in self._client_reader.feed(data):
                self.client.apply_update(message)
                self.update_round_trips.append(
                    self._now() - self._request_sent_at
                )
                self._awaiting_update = False

    # -- Server side ---------------------------------------------------------

    def server_tick(self) -> None:
        data = self._to_server.receive_ready()
        if not data:
            return
        for message in self._server_reader.feed(data):
            if message == RfbClient.request():
                update = self.server.handle_request(self.client_id)
                self._to_client.send(_frame(update))

    def tick(self) -> None:
        self.server_tick()
        self.client_tick()
