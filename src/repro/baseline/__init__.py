"""Client-pull remote-framebuffer baseline (the VNC-style comparator)."""

from .rfb import ENC_RAW, ENC_ZLIB, RfbClient, RfbError, RfbServer
from .session import BaselineSession

__all__ = [
    "BaselineSession",
    "ENC_RAW",
    "ENC_ZLIB",
    "RfbClient",
    "RfbError",
    "RfbServer",
]
