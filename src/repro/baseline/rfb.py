"""A minimal client-pull remote-framebuffer baseline (VNC-style).

The paper positions its RTP push model against the incumbent remote-
framebuffer tools ("protocols for sharing applications are largely
proprietary or based on the aging T.120 suite"; its CoNEXT evaluation
compares against VNC).  This module implements the essential RFB
mechanics so experiments can compare the two architectures on the same
virtual desktop:

* **client-pull**: the viewer sends FramebufferUpdateRequest; the
  server answers with the rectangles that changed since that client's
  previous update (classic RFB flow control);
* **whole-screen capture**: the server polls the composited screen and
  tile-diffs it — it has no window-level damage knowledge;
* **rect encodings**: RAW and ZRLE-ish (zlib) rectangles.

Wire format (big-endian, over a reliable byte stream):

* client → server: ``b"R"`` — update request (incremental).
* server → client: ``b"U"`` + u16 rect count, then per rect
  u32 x, y, w, h + u8 encoding (0 raw, 1 zlib) + u32 length + payload.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..surface.damage import TileDiffer
from ..surface.framebuffer import Framebuffer
from ..surface.window import WindowManager

ENC_RAW = 0
ENC_ZLIB = 1

_RECT_HEADER = struct.Struct("!IIIIBI")
_UPDATE_HEADER = struct.Struct("!cH")
REQUEST = b"R"
UPDATE = b"U"


class RfbError(Exception):
    """Raised on malformed baseline-protocol data."""


def encode_rect(pixels: np.ndarray, encoding: int = ENC_ZLIB) -> bytes:
    if encoding == ENC_RAW:
        return pixels.tobytes()
    if encoding == ENC_ZLIB:
        return zlib.compress(pixels.tobytes(), 6)
    raise RfbError(f"unknown encoding: {encoding}")


def decode_rect(data: bytes, width: int, height: int, encoding: int) -> np.ndarray:
    if encoding == ENC_ZLIB:
        try:
            data = zlib.decompress(data)
        except zlib.error as exc:
            raise RfbError(f"rect inflate failed: {exc}") from exc
    elif encoding != ENC_RAW:
        raise RfbError(f"unknown encoding: {encoding}")
    expected = width * height * 4
    if len(data) != expected:
        raise RfbError(f"rect payload {len(data)} != {expected}")
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width, 4).copy()


class RfbServer:
    """Serves the composited desktop to pull-based viewers."""

    def __init__(self, manager: WindowManager, tile: int = 32,
                 encoding: int = ENC_ZLIB) -> None:
        self.manager = manager
        self.tile = tile
        self.encoding = encoding
        #: client id → per-client differ (each client pulls at its own pace).
        self._differs: dict[str, TileDiffer] = {}
        self.updates_served = 0
        self.bytes_sent = 0

    def handle_request(self, client_id: str) -> bytes:
        """Build the update message for one client's pull."""
        screen = self.manager.composite()
        differ = self._differs.get(client_id)
        if differ is None:
            differ = TileDiffer(screen.width, screen.height, tile=self.tile)
            self._differs[client_id] = differ
        damage = differ.diff(screen)
        rects = list(damage)
        parts = [_UPDATE_HEADER.pack(UPDATE, len(rects))]
        for rect in rects:
            payload = encode_rect(screen.read_rect(rect), self.encoding)
            parts.append(
                _RECT_HEADER.pack(
                    rect.left, rect.top, rect.width, rect.height,
                    self.encoding, len(payload),
                )
            )
            parts.append(payload)
        message = b"".join(parts)
        self.updates_served += 1
        self.bytes_sent += len(message)
        return message


class RfbClient:
    """A pull-based viewer keeping a local screen copy."""

    def __init__(self, width: int, height: int) -> None:
        self.screen = Framebuffer(width, height)
        self.updates_applied = 0
        self.rects_applied = 0

    @staticmethod
    def request() -> bytes:
        return REQUEST

    def apply_update(self, message: bytes) -> int:
        """Apply one server update; returns rectangles applied."""
        if len(message) < _UPDATE_HEADER.size:
            raise RfbError("truncated update header")
        kind, count = _UPDATE_HEADER.unpack_from(message)
        if kind != UPDATE:
            raise RfbError(f"unexpected message kind: {kind!r}")
        offset = _UPDATE_HEADER.size
        for _ in range(count):
            if len(message) < offset + _RECT_HEADER.size:
                raise RfbError("truncated rect header")
            x, y, w, h, encoding, length = _RECT_HEADER.unpack_from(
                message, offset
            )
            offset += _RECT_HEADER.size
            if len(message) < offset + length:
                raise RfbError("truncated rect payload")
            pixels = decode_rect(
                message[offset : offset + length], w, h, encoding
            )
            offset += length
            self.screen.write_rect(x, y, pixels)
            self.rects_applied += 1
        self.updates_applied += 1
        return count

    def matches(self, manager: WindowManager) -> bool:
        """Pixel-exact comparison against the server's composite."""
        return self.screen.identical_to(manager.composite())
