"""A text editor app: the canonical 'computer-generated content' workload.

Renders typed characters with the bitmap font, maintains a blinking-free
cursor block, wraps lines, and reacts to KeyTyped/KeyPressed events from
participants — making HIP round-trips observable (text appears because a
remote participant typed it).
"""

from __future__ import annotations

from ..core import keycodes
from ..surface.framebuffer import Color
from ..surface.geometry import Rect
from ..surface.text import char_cell_size, draw_text
from ..surface.window import Window
from .base import SyntheticApp

_BG: Color = (248, 248, 242, 255)
_FG: Color = (40, 42, 54, 255)
_CURSOR: Color = (80, 120, 220, 255)
_MARGIN = 6


class TextEditorApp(SyntheticApp):
    """Line-wrapped text entry with a block cursor."""

    def __init__(self, window: Window, scale: int = 1) -> None:
        super().__init__(window)
        self.scale = scale
        self.cell_w, self.cell_h = char_cell_size(scale)
        self.lines: list[str] = [""]
        self._shift_down = False
        window.fill(_BG)
        self._draw_cursor()

    # -- Geometry helpers ------------------------------------------------

    @property
    def columns(self) -> int:
        return max(1, (self.window.rect.width - 2 * _MARGIN) // self.cell_w)

    @property
    def visible_rows(self) -> int:
        return max(1, (self.window.rect.height - 2 * _MARGIN) // self.cell_h)

    def _cell_origin(self, row: int, col: int) -> tuple[int, int]:
        return (_MARGIN + col * self.cell_w, _MARGIN + row * self.cell_h)

    def _cursor_cell(self) -> tuple[int, int]:
        row = len(self.lines) - 1
        col = len(self.lines[-1])
        return row, col

    # -- Editing operations ------------------------------------------------

    def type_text(self, text: str) -> None:
        """Append text; the scripted-workload entry point."""
        for ch in text:
            if ch == "\n":
                self._newline()
            elif ch == "\b":
                self._backspace()
            else:
                self._insert_char(ch)

    def _insert_char(self, ch: str) -> None:
        self._erase_cursor()
        if len(self.lines[-1]) >= self.columns:
            self._wrap_line()
        row, col = self._cursor_cell()
        self.lines[-1] += ch
        x, y = self._cell_origin(row, col)
        self.window.add_damage(
            draw_text(self.window.surface, x, y, ch, _FG, _BG, self.scale)
        )
        self._draw_cursor()

    def _newline(self) -> None:
        self._erase_cursor()
        self.lines.append("")
        self._scroll_if_needed()
        self._draw_cursor()

    def _wrap_line(self) -> None:
        self.lines.append("")
        self._scroll_if_needed()

    def _backspace(self) -> None:
        self._erase_cursor()
        if self.lines[-1]:
            row = len(self.lines) - 1
            col = len(self.lines[-1]) - 1
            self.lines[-1] = self.lines[-1][:-1]
            x, y = self._cell_origin(row, col)
            self.window.fill(_BG, Rect(x, y, self.cell_w, self.cell_h))
        elif len(self.lines) > 1:
            self.lines.pop()
        self._draw_cursor()

    def _scroll_if_needed(self) -> None:
        if len(self.lines) <= self.visible_rows:
            return
        # Drop the top line and repaint everything shifted up one row.
        self.lines.pop(0)
        self.window.fill(_BG)
        for row, line in enumerate(self.lines):
            x, y = self._cell_origin(row, 0)
            if line:
                draw_text(self.window.surface, x, y, line, _FG, _BG, self.scale)
        self.window.add_damage(self.window.local_bounds)

    # -- Cursor ------------------------------------------------------------

    def _cursor_rect(self) -> Rect:
        row, col = self._cursor_cell()
        x, y = self._cell_origin(row, col)
        return Rect(x, y, self.cell_w, self.cell_h)

    def _draw_cursor(self) -> None:
        self.window.fill(_CURSOR, self._cursor_rect())

    def _erase_cursor(self) -> None:
        self.window.fill(_BG, self._cursor_rect())

    # -- HID hooks -----------------------------------------------------------

    def on_key_typed(self, text: str) -> None:
        super().on_key_typed(text)
        self.type_text(text)

    def on_key_pressed(self, keycode: int) -> None:
        super().on_key_pressed(keycode)
        if keycode == keycodes.VK_SHIFT:
            self._shift_down = True
            return
        if keycode == keycodes.VK_ENTER:
            self._newline()
        elif keycode == keycodes.VK_BACK_SPACE:
            self._backspace()
        elif not keycodes.is_modifier(keycode):
            ch = keycodes.char_for_keycode(keycode, shift=self._shift_down)
            if ch and ch not in ("\n", "\b"):
                self._insert_char(ch)

    def on_key_released(self, keycode: int) -> None:
        super().on_key_released(keycode)
        if keycode == keycodes.VK_SHIFT:
            self._shift_down = False

    # -- Introspection ---------------------------------------------------------

    def text(self) -> str:
        """Current document text (for asserting end-to-end delivery)."""
        return "\n".join(self.lines)
