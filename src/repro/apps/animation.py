"""An animation app: the rapidly-changing-content workload.

Bounces balls over a gradient background at a fixed frame rate,
changing a large screen area every frame — the case the section 7
implementation note targets ("prevent screen latency for rapidly-
changing images, when a viewer usually only needs to see the final
state").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..surface.geometry import Rect
from ..surface.window import Window
from .base import SyntheticApp


@dataclass(slots=True)
class _Ball:
    x: float
    y: float
    vx: float
    vy: float
    radius: int
    color: tuple[int, int, int, int]


class AnimationApp(SyntheticApp):
    """Fixed-fps bouncing-ball animation over a static gradient."""

    def __init__(self, window: Window, fps: float = 30.0, balls: int = 3,
                 seed: int = 7) -> None:
        super().__init__(window)
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self.frame_interval = 1.0 / fps
        self._accumulated = 0.0
        self.frames_rendered = 0
        rng = np.random.default_rng(seed)
        w, h = window.rect.width, window.rect.height
        self._background = self._make_background(w, h)
        self._balls = [
            _Ball(
                x=float(rng.uniform(20, max(21, w - 20))),
                y=float(rng.uniform(20, max(21, h - 20))),
                vx=float(rng.uniform(40, 160)) * (1 if rng.random() < 0.5 else -1),
                vy=float(rng.uniform(40, 160)) * (1 if rng.random() < 0.5 else -1),
                radius=int(rng.integers(8, 18)),
                color=(
                    int(rng.integers(64, 256)),
                    int(rng.integers(64, 256)),
                    int(rng.integers(64, 256)),
                    255,
                ),
            )
            for _ in range(balls)
        ]
        self._render()

    @staticmethod
    def _make_background(w: int, h: int) -> np.ndarray:
        yy, xx = np.mgrid[0:h, 0:w]
        bg = np.empty((h, w, 4), dtype=np.uint8)
        bg[:, :, 0] = (xx * 160 // max(w, 1)).astype(np.uint8)
        bg[:, :, 1] = (yy * 120 // max(h, 1)).astype(np.uint8)
        bg[:, :, 2] = 90
        bg[:, :, 3] = 255
        return bg

    def tick(self, dt: float) -> None:
        """Advance time; renders once per elapsed frame interval."""
        self._accumulated += dt
        while self._accumulated >= self.frame_interval:
            self._accumulated -= self.frame_interval
            self._step_physics(self.frame_interval)
            self._render()

    def _step_physics(self, dt: float) -> None:
        w, h = self.window.rect.width, self.window.rect.height
        for ball in self._balls:
            ball.x += ball.vx * dt
            ball.y += ball.vy * dt
            if ball.x - ball.radius < 0 or ball.x + ball.radius >= w:
                ball.vx = -ball.vx
                ball.x = min(max(ball.x, ball.radius), w - 1 - ball.radius)
            if ball.y - ball.radius < 0 or ball.y + ball.radius >= h:
                ball.vy = -ball.vy
                ball.y = min(max(ball.y, ball.radius), h - 1 - ball.radius)

    def _render(self) -> None:
        frame = self._background.copy()
        h, w = frame.shape[:2]
        for ball in self._balls:
            r = ball.radius
            cx, cy = int(ball.x), int(ball.y)
            y0, y1 = max(0, cy - r), min(h, cy + r + 1)
            x0, x1 = max(0, cx - r), min(w, cx + r + 1)
            yy, xx = np.mgrid[y0:y1, x0:x1]
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
            frame[y0:y1, x0:x1][mask] = ball.color
        self.window.draw_pixels(0, 0, frame)
        self.window.add_damage(Rect(0, 0, w, h))
        self.frames_rendered += 1
