"""A scrolling terminal app: the MoveRectangle (scroll) workload.

Every appended line shifts the content up by one text row via the
window's scroll primitive and repaints only the fresh bottom line —
precisely the drawing pattern section 5.2.3 calls out as the case where
MoveRectangle beats re-encoding.
"""

from __future__ import annotations

from ..surface.framebuffer import Color
from ..surface.geometry import Rect
from ..surface.text import char_cell_size, draw_text
from ..surface.window import Window
from .base import SyntheticApp

_BG: Color = (18, 18, 24, 255)
_FG: Color = (120, 220, 120, 255)
_MARGIN = 4


class TerminalApp(SyntheticApp):
    """Appends output lines, scrolling the viewport like a real console."""

    def __init__(self, window: Window, scale: int = 1) -> None:
        super().__init__(window)
        self.scale = scale
        self.cell_w, self.cell_h = char_cell_size(scale)
        window.fill(_BG)
        self._row = 0  # next row to write
        self.lines_emitted = 0

    @property
    def columns(self) -> int:
        return max(1, (self.window.rect.width - 2 * _MARGIN) // self.cell_w)

    @property
    def rows(self) -> int:
        return max(1, (self.window.rect.height - 2 * _MARGIN) // self.cell_h)

    def _content_rect(self) -> Rect:
        return Rect(
            _MARGIN,
            _MARGIN,
            self.window.rect.width - 2 * _MARGIN,
            self.rows * self.cell_h,
        )

    def append_line(self, text: str) -> None:
        """Print one line, scrolling when the viewport is full."""
        text = text[: self.columns]
        if self._row >= self.rows:
            # Shift the whole content area up one text row.
            self.window.scroll(self._content_rect(), -self.cell_h)
            self._row = self.rows - 1
            # Clear the vacated bottom row before drawing into it.
            y = _MARGIN + self._row * self.cell_h
            self.window.fill(
                _BG, Rect(_MARGIN, y, self._content_rect().width, self.cell_h)
            )
        y = _MARGIN + self._row * self.cell_h
        if text:
            self.window.add_damage(
                draw_text(self.window.surface, _MARGIN, y, text, _FG, _BG, self.scale)
            )
        self._row += 1
        self.lines_emitted += 1

    def run_build_output(self, count: int, start: int = 0) -> None:
        """Emit ``count`` deterministic compiler-ish lines (workload)."""
        for i in range(start, start + count):
            self.append_line(
                f"[{i:04d}] CC module_{i % 17:02d}.c -> obj/module_{i % 17:02d}.o"
            )
