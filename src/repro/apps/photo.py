"""Synthetic photographic content.

Section 4.2 contrasts computer-generated screens with photographic
images.  We have no photo corpus offline, so :func:`synthetic_photo`
generates images with the *statistics* that drive codec behaviour:
smooth low-frequency luminance fields, many distinct colours, and mild
sensor-like noise — the properties that make DEFLATE/PNG struggle and
DCT codecs shine.
"""

from __future__ import annotations

import numpy as np


def synthetic_photo(width: int, height: int, seed: int = 0) -> np.ndarray:
    """An ``(h, w, 4)`` RGBA 'photograph': smooth fields + fine noise."""
    if width <= 0 or height <= 0:
        raise ValueError("photo must be non-empty")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    yy /= max(height, 1)
    xx /= max(width, 1)
    channels = []
    for c in range(3):
        field = np.zeros((height, width))
        # A few random low-frequency plane waves per channel.
        for _ in range(4):
            fx = rng.uniform(0.5, 3.0)
            fy = rng.uniform(0.5, 3.0)
            phase = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(20, 60)
            field += amp * np.sin(2 * np.pi * (fx * xx + fy * yy) + phase)
        field += rng.normal(0, 4.0, size=field.shape)  # sensor noise
        field += 128.0
        channels.append(np.clip(field, 0, 255).astype(np.uint8))
    out = np.empty((height, width, 4), dtype=np.uint8)
    for c in range(3):
        out[:, :, c] = channels[c]
    out[:, :, 3] = 255
    return out


def ui_screenshot(width: int, height: int, seed: int = 0) -> np.ndarray:
    """An ``(h, w, 4)`` RGBA 'UI screenshot': flat runs and hard edges.

    The synthetic counterpart to :func:`synthetic_photo` for codec
    comparisons: panels, separators and text-like dither built from a
    tiny palette.
    """
    if width <= 0 or height <= 0:
        raise ValueError("screenshot must be non-empty")
    rng = np.random.default_rng(seed)
    out = np.empty((height, width, 4), dtype=np.uint8)
    out[:, :] = (236, 236, 236, 255)
    palette = [
        (255, 255, 255, 255),
        (222, 226, 230, 255),
        (52, 58, 64, 255),
        (13, 110, 253, 255),
        (25, 135, 84, 255),
    ]
    # Panels.
    for _ in range(6):
        x = int(rng.integers(0, max(1, width - 40)))
        y = int(rng.integers(0, max(1, height - 30)))
        w = int(rng.integers(30, max(31, width // 2)))
        h = int(rng.integers(20, max(21, height // 2)))
        color = palette[int(rng.integers(0, 2))]
        out[y : min(y + h, height), x : min(x + w, width)] = color
    # Text-like rows: short dark dashes on light rows.
    for row in range(8, height - 8, 14):
        x = 8
        while x < width - 20:
            run = int(rng.integers(4, 18))
            if rng.random() < 0.8:
                out[row : row + 7, x : min(x + run, width - 4)] = palette[2]
            x += run + int(rng.integers(3, 8))
    # Accent line.
    if height > 4:
        out[0:3, :] = palette[3]
    return out
