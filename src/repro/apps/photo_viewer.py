"""A photo viewer app: the photographic-content workload.

Displays synthetic photographs; wheel/arrow events page through the
album, replacing the whole window contents — the large-lossy-update
case for codec selection.
"""

from __future__ import annotations

from ..core import keycodes
from ..surface.geometry import Rect
from ..surface.window import Window
from .base import SyntheticApp
from .photo import synthetic_photo


class PhotoViewerApp(SyntheticApp):
    """Pages through deterministic synthetic photos."""

    def __init__(self, window: Window, album_seed: int = 100) -> None:
        super().__init__(window)
        self.album_seed = album_seed
        self.index = 0
        self._show_current()

    def _show_current(self) -> None:
        rect = self.window.rect
        photo = synthetic_photo(rect.width, rect.height,
                                seed=self.album_seed + self.index)
        self.window.draw_pixels(0, 0, photo)
        self.window.add_damage(Rect(0, 0, rect.width, rect.height))

    def next_photo(self) -> None:
        self.index += 1
        self._show_current()

    def previous_photo(self) -> None:
        if self.index > 0:
            self.index -= 1
            self._show_current()

    # -- HID hooks ---------------------------------------------------------

    def on_key_pressed(self, keycode: int) -> None:
        super().on_key_pressed(keycode)
        if keycode in (keycodes.VK_RIGHT, keycodes.VK_DOWN, keycodes.VK_PAGE_DOWN):
            self.next_photo()
        elif keycode in (keycodes.VK_LEFT, keycodes.VK_UP, keycodes.VK_PAGE_UP):
            self.previous_photo()

    def on_mouse_wheel(self, x: int, y: int, distance: int) -> None:
        super().on_mouse_wheel(x, y, distance)
        if distance < 0:
            self.next_photo()
        elif distance > 0:
            self.previous_photo()
