"""A whiteboard app: the mouse-interaction workload.

Participants draw by dragging: MousePressed starts a stroke, MouseMoved
extends it, MouseReleased ends it — exercising the full HIP mouse
vocabulary with observable pixel effects.
"""

from __future__ import annotations

from ..core.hip import BUTTON_LEFT
from ..surface.framebuffer import Color
from ..surface.geometry import Rect
from ..surface.window import Window
from .base import SyntheticApp

_BG: Color = (255, 255, 255, 255)
_INK: Color = (20, 20, 160, 255)
_PEN = 2


class WhiteboardApp(SyntheticApp):
    """Freehand drawing surface driven by mouse events."""

    def __init__(self, window: Window) -> None:
        super().__init__(window)
        window.fill(_BG)
        self._drawing = False
        self._last: tuple[int, int] | None = None
        self.strokes_completed = 0
        self.points_drawn = 0

    # -- Drawing primitives ---------------------------------------------

    def _plot(self, x: int, y: int) -> None:
        rect = Rect(
            max(0, x - _PEN), max(0, y - _PEN), 2 * _PEN + 1, 2 * _PEN + 1
        ).intersection(self.window.local_bounds)
        if not rect.is_empty():
            self.window.fill(_INK, rect)
            self.points_drawn += 1

    def _line(self, x0: int, y0: int, x1: int, y1: int) -> None:
        """Bresenham between stroke samples."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        while True:
            self._plot(x0, y0)
            if x0 == x1 and y0 == y1:
                return
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x0 += sx
            if e2 <= dx:
                err += dx
                y0 += sy

    # -- HID hooks -----------------------------------------------------------

    def on_mouse_pressed(self, x: int, y: int, button: int) -> None:
        super().on_mouse_pressed(x, y, button)
        if button == BUTTON_LEFT:
            self._drawing = True
            self._last = (x, y)
            self._plot(x, y)

    def on_mouse_moved(self, x: int, y: int) -> None:
        super().on_mouse_moved(x, y)
        if self._drawing and self._last is not None:
            self._line(self._last[0], self._last[1], x, y)
            self._last = (x, y)

    def on_mouse_released(self, x: int, y: int, button: int) -> None:
        super().on_mouse_released(x, y, button)
        if button == BUTTON_LEFT and self._drawing:
            self._drawing = False
            self._last = None
            self.strokes_completed += 1

    def clear(self) -> None:
        self.window.fill(_BG)
