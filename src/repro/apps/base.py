"""Synthetic application framework.

The AH shares *real applications*; our substitute applications draw
deterministic but realistic pixel content into their windows and react
observably to regenerated HID events — exactly the surface the sharing
pipeline needs.  Each app owns one :class:`~repro.surface.Window` and
implements the event hooks the AH's event injector calls.
"""

from __future__ import annotations

import abc

from ..surface.window import Window, WindowManager


class SyntheticApp(abc.ABC):
    """One shared application bound to a window.

    Subclasses override the ``on_*`` hooks they care about (coordinates
    are window-local) and :meth:`tick` when they animate with time.
    """

    def __init__(self, window: Window) -> None:
        self.window = window
        self.events_handled = 0

    @property
    def window_id(self) -> int:
        return self.window.window_id

    # -- Time ----------------------------------------------------------

    def tick(self, dt: float) -> None:
        """Advance app time by ``dt`` seconds (default: static app)."""

    # -- HID hooks (window-local coordinates) ---------------------------

    def on_mouse_pressed(self, x: int, y: int, button: int) -> None:
        self.events_handled += 1

    def on_mouse_released(self, x: int, y: int, button: int) -> None:
        self.events_handled += 1

    def on_mouse_moved(self, x: int, y: int) -> None:
        self.events_handled += 1

    def on_mouse_wheel(self, x: int, y: int, distance: int) -> None:
        self.events_handled += 1

    def on_key_pressed(self, keycode: int) -> None:
        self.events_handled += 1

    def on_key_released(self, keycode: int) -> None:
        self.events_handled += 1

    def on_key_typed(self, text: str) -> None:
        self.events_handled += 1


class AppHost:
    """Binds apps to windows and routes events/ticks to them.

    The minimal 'operating system' of the simulated AH: the sharing
    layer asks it to deliver a regenerated event to whatever app owns
    the target window.
    """

    def __init__(self, window_manager: WindowManager) -> None:
        self.window_manager = window_manager
        self._apps: dict[int, SyntheticApp] = {}

    def attach(self, app: SyntheticApp) -> None:
        if app.window_id in self._apps:
            raise ValueError(f"window {app.window_id} already has an app")
        self._apps[app.window_id] = app

    def detach(self, window_id: int) -> None:
        self._apps.pop(window_id, None)

    def app_for(self, window_id: int) -> SyntheticApp | None:
        return self._apps.get(window_id)

    def apps(self) -> list[SyntheticApp]:
        return list(self._apps.values())

    def tick_all(self, dt: float) -> None:
        for app in self._apps.values():
            app.tick(dt)
