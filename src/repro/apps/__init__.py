"""Synthetic workload applications for the simulated AH."""

from .animation import AnimationApp
from .base import AppHost, SyntheticApp
from .photo import synthetic_photo, ui_screenshot
from .photo_viewer import PhotoViewerApp
from .terminal import TerminalApp
from .text_editor import TextEditorApp
from .whiteboard import WhiteboardApp

__all__ = [
    "AnimationApp",
    "AppHost",
    "PhotoViewerApp",
    "SyntheticApp",
    "TerminalApp",
    "TextEditorApp",
    "WhiteboardApp",
    "synthetic_photo",
    "ui_screenshot",
]
