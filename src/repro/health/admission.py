"""Admission control and the graceful-degradation ladder.

Overload at the hosting tier is handled in two stages, cheapest first:

1. **Degrade** — past ``degrade_at`` of the participant capacity, the
   server downgrades every hosted relay's downstream rate tiers by
   ``degrade_rate_factor`` (token buckets refill slower; updates
   queue and coalesce at the relays).  Existing viewers get a slower
   picture; nobody is disconnected and joins still succeed.
2. **Shed** — at 100% of ``max_participants`` (or ``max_sessions``),
   new joins (or hosts) are refused with
   :class:`~repro.sharing.server.errors.ServerOverloaded`.  Refusing
   *new* work is the last resort, and it protects every session
   already admitted.

Load falling back below ``degrade_at`` restores the original tiers.
Capacities of ``None`` disable that axis entirely (the historical
behaviour).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..obs.instrumentation import NULL


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    SHED = "shed"


#: Ordered load levels for the ``health.load_level`` gauge.
LOAD_LEVELS = ("ok", "degraded", "overloaded")


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Capacity knobs for one :class:`AdmissionControl`."""

    #: Hosted sessions + relays admitted at once (None = unlimited).
    max_sessions: int | None = None
    #: Participants (front-door + relay viewers) admitted at once.
    max_participants: int | None = None
    #: Fraction of ``max_participants`` where rate-tier degradation
    #: begins.
    degrade_at: float = 0.8
    #: Multiplier applied to relay downstream rate tiers while
    #: degraded.
    degrade_rate_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_participants is not None and self.max_participants < 1:
            raise ValueError("max_participants must be >= 1")
        if not 0.0 < self.degrade_at <= 1.0:
            raise ValueError("degrade_at must be in (0, 1]")
        if not 0.0 < self.degrade_rate_factor <= 1.0:
            raise ValueError("degrade_rate_factor must be in (0, 1]")


class AdmissionControl:
    """Stateless capacity checks plus shed/degrade accounting."""

    def __init__(
        self,
        config: OverloadConfig | None = None,
        instrumentation=None,
    ) -> None:
        self.config = config or OverloadConfig()
        self.sessions_shed = 0
        self.joins_shed = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_sessions_shed = obs.counter("health.sessions_shed")
        self._c_joins_shed = obs.counter("health.joins_shed")
        self._g_load = obs.gauge("health.load_level")

    def admit_session(self, current_sessions: int) -> AdmissionDecision:
        limit = self.config.max_sessions
        if limit is not None and current_sessions >= limit:
            self.sessions_shed += 1
            self._c_sessions_shed.inc()
            if self._obs.enabled:
                self._obs.event(
                    "health.session_shed", sessions=current_sessions,
                    limit=limit,
                )
            return AdmissionDecision.SHED
        return AdmissionDecision.ADMIT

    def admit_join(self, current_participants: int) -> AdmissionDecision:
        limit = self.config.max_participants
        if limit is not None and current_participants >= limit:
            self.joins_shed += 1
            self._c_joins_shed.inc()
            if self._obs.enabled:
                self._obs.event(
                    "health.join_shed", participants=current_participants,
                    limit=limit,
                )
            return AdmissionDecision.SHED
        return AdmissionDecision.ADMIT

    def load_level(self, current_participants: int) -> str:
        """Where ``current_participants`` sits on the ladder."""
        limit = self.config.max_participants
        if limit is None:
            level = "ok"
        elif current_participants >= limit:
            level = "overloaded"
        elif current_participants >= self.config.degrade_at * limit:
            level = "degraded"
        else:
            level = "ok"
        self._g_load.set(LOAD_LEVELS.index(level))
        return level

    def snapshot(self) -> dict:
        return {
            "max_sessions": self.config.max_sessions,
            "max_participants": self.config.max_participants,
            "sessions_shed": self.sessions_shed,
            "joins_shed": self.joins_shed,
        }
