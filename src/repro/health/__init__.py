"""repro.health — liveness, failover and overload protection.

The paper's AH/participant model assumes every node stays up; at the
scale the relay tier targets (millions of viewers behind cascaded
relays) node death, partitions and overload are the *common* case.
This package is the shared machinery the server and relay tiers use to
notice trouble and degrade gracefully instead of silently stranding a
subtree:

* :mod:`repro.health.liveness` — :class:`LivenessTracker` turns
  RTCP-RR/keepalive arrivals into last-seen state with configurable
  silence → suspect → dead thresholds.  It drives participant eviction
  in :class:`~repro.sharing.server.core.SessionCore`, session GC in
  :class:`~repro.sharing.server.SessionServer`, downstream pruning in
  :class:`~repro.relay.node.RelayNode`, and parent-death detection for
  relay failover.
* :mod:`repro.health.supervisor` — :class:`TaskSupervisor`, a
  crash-restart wrapper (exponential backoff, capped give-up) around
  the per-session asyncio task groups, so one buggy session pump
  cannot silently die and strand its session.
* :mod:`repro.health.admission` — :class:`AdmissionControl`,
  ``max_sessions``/``max_participants`` admission plus the graceful
  degradation ladder: downgrade relay rate tiers *before* shedding
  joins.

Everything reports under the ``health.*`` metric family (see
``docs/OBSERVABILITY.md``) and is exercised deterministically by the
chaos primitives in :mod:`repro.net.channel` /
:mod:`repro.net.simulator` and ``benchmarks/bench_chaos.py``.
"""

from .admission import AdmissionControl, AdmissionDecision, OverloadConfig
from .liveness import (
    LivenessConfig,
    LivenessTracker,
    PeerLiveness,
    PeerState,
)
from .supervisor import RestartPolicy, TaskSupervisor

__all__ = [
    "AdmissionControl",
    "AdmissionDecision",
    "LivenessConfig",
    "LivenessTracker",
    "OverloadConfig",
    "PeerLiveness",
    "PeerState",
    "RestartPolicy",
    "TaskSupervisor",
]
