"""Silence → suspect → dead liveness tracking.

A :class:`LivenessTracker` watches one set of peers (a session's
participants, a relay's downstreams, a relay's single upstream) and
classifies each by how long it has been silent:

* **ALIVE** — heard from within ``suspect_after`` seconds;
* **SUSPECT** — silent for ``suspect_after``..``dead_after`` seconds
  (the peer may be behind a loss burst or a stalled link — keep
  serving it, but stop counting on it);
* **DEAD** — silent past ``dead_after``: the owner should evict/prune
  the peer and reclaim its state.

"Heard from" is deliberately cheap and protocol-agnostic: the owner
calls :meth:`note_alive` whenever *anything* arrives from the peer —
media, an RTCP receiver report, a NACK, a HIP input packet, an RFC
6263-style keepalive.  A healthy path always carries at least RTCP
(participants report continuously) or fanned-down sender reports, so
silence genuinely means death, partition, or a stalled link.

:meth:`poll` is edge-triggered: each call returns only the peers that
*newly* transitioned, so owners can evict exactly once.  Dead peers
stay tracked (still silent, not re-reported) until :meth:`forget` —
the owner forgets on eviction.  A peer that speaks again after being
suspected (or even declared dead, if the owner kept it) transitions
back to ALIVE and counts as a revival.

All times come from the injected clock, so the thresholds are virtual
seconds under the simulator and wall seconds in realtime mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL


class PeerState(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True, slots=True)
class LivenessConfig:
    """Silence thresholds, in clock seconds."""

    #: Silence after which a peer is suspected.
    suspect_after: float = 2.0
    #: Silence after which a peer is declared dead.
    dead_after: float = 6.0

    def __post_init__(self) -> None:
        if self.suspect_after <= 0:
            raise ValueError("suspect_after must be positive")
        if self.dead_after <= self.suspect_after:
            raise ValueError("dead_after must exceed suspect_after")


@dataclass(slots=True)
class PeerLiveness:
    """Tracked state for one peer."""

    peer: str
    last_seen: float
    state: PeerState = PeerState.ALIVE
    suspected_at: float | None = None
    died_at: float | None = None

    def silence(self, now: float) -> float:
        return now - self.last_seen


@dataclass(slots=True)
class LivenessReport:
    """Edge-triggered transitions from one :meth:`LivenessTracker.poll`."""

    #: Peers that newly crossed the suspect threshold.
    newly_suspect: list[str] = field(default_factory=list)
    #: Peers that newly crossed the dead threshold (evict these).
    newly_dead: list[str] = field(default_factory=list)
    #: Previously suspect/dead peers heard from since the last poll.
    revived: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.newly_suspect or self.newly_dead or self.revived)


class LivenessTracker:
    """Last-seen bookkeeping with suspect/dead thresholds for one owner."""

    def __init__(
        self,
        now,
        config: LivenessConfig | None = None,
        instrumentation=None,
    ) -> None:
        self._now = as_now(now)
        self.config = config or LivenessConfig()
        self._peers: dict[str, PeerLiveness] = {}
        #: Peers revived since the last poll (reported edge-triggered).
        self._revived: list[str] = []
        self.suspects = 0
        self.deaths = 0
        self.revivals = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_suspects = obs.counter("health.peers_suspected")
        self._c_deaths = obs.counter("health.peers_died")
        self._c_revivals = obs.counter("health.peers_revived")
        self._g_tracked = obs.gauge("health.peers_tracked")

    # -- Inputs ------------------------------------------------------------

    def track(self, peer: str) -> None:
        """Start watching ``peer`` (last seen = now).  Idempotent."""
        if peer not in self._peers:
            self._peers[peer] = PeerLiveness(peer, self._now())
            self._g_tracked.set(len(self._peers))

    def note_alive(self, peer: str) -> None:
        """Record that something arrived from ``peer`` just now.

        Untracked peers are auto-tracked, so owners can feed every
        ingress without checking membership first.
        """
        entry = self._peers.get(peer)
        now = self._now()
        if entry is None:
            self._peers[peer] = PeerLiveness(peer, now)
            self._g_tracked.set(len(self._peers))
            return
        entry.last_seen = now
        if entry.state is not PeerState.ALIVE:
            entry.state = PeerState.ALIVE
            entry.suspected_at = None
            entry.died_at = None
            self.revivals += 1
            self._c_revivals.inc()
            self._revived.append(peer)

    def forget(self, peer: str) -> None:
        """Stop watching ``peer`` (evicted, or left normally)."""
        if self._peers.pop(peer, None) is not None:
            self._g_tracked.set(len(self._peers))

    # -- The threshold sweep -----------------------------------------------

    def poll(self) -> LivenessReport:
        """Advance every peer against the thresholds; report transitions.

        Edge-triggered: a peer appears in ``newly_suspect`` /
        ``newly_dead`` on exactly one poll.  Dead peers remain tracked
        (and silent) until the owner calls :meth:`forget`.
        """
        now = self._now()
        report = LivenessReport(revived=self._revived)
        self._revived = []
        cfg = self.config
        for entry in self._peers.values():
            if entry.state is PeerState.DEAD:
                continue
            silence = now - entry.last_seen
            if silence >= cfg.dead_after:
                entry.state = PeerState.DEAD
                entry.died_at = now
                self.deaths += 1
                self._c_deaths.inc()
                report.newly_dead.append(entry.peer)
                if self._obs.enabled:
                    self._obs.event(
                        "health.peer_dead", peer=entry.peer,
                        silence=silence,
                    )
            elif silence >= cfg.suspect_after:
                if entry.state is PeerState.ALIVE:
                    entry.state = PeerState.SUSPECT
                    entry.suspected_at = now
                    self.suspects += 1
                    self._c_suspects.inc()
                    report.newly_suspect.append(entry.peer)
                    if self._obs.enabled:
                        self._obs.event(
                            "health.peer_suspect", peer=entry.peer,
                            silence=silence,
                        )
        return report

    # -- Introspection -----------------------------------------------------

    def state_of(self, peer: str) -> PeerState | None:
        entry = self._peers.get(peer)
        return entry.state if entry is not None else None

    def last_seen(self, peer: str) -> float | None:
        entry = self._peers.get(peer)
        return entry.last_seen if entry is not None else None

    def died_at(self, peer: str) -> float | None:
        """When ``peer`` crossed the dead threshold (None if not dead)."""
        entry = self._peers.get(peer)
        return entry.died_at if entry is not None else None

    def peers_in(self, state: PeerState) -> list[str]:
        return sorted(
            p for p, e in self._peers.items() if e.state is state
        )

    @property
    def tracked(self) -> int:
        return len(self._peers)

    def snapshot(self) -> dict:
        """Flat counters for describe()/report rows."""
        return {
            "tracked": len(self._peers),
            "alive": sum(
                1 for e in self._peers.values()
                if e.state is PeerState.ALIVE
            ),
            "suspect": sum(
                1 for e in self._peers.values()
                if e.state is PeerState.SUSPECT
            ),
            "dead": sum(
                1 for e in self._peers.values()
                if e.state is PeerState.DEAD
            ),
            "suspects": self.suspects,
            "deaths": self.deaths,
            "revivals": self.revivals,
        }
