"""Crash-restart supervision for per-session asyncio task groups.

A :class:`~repro.sharing.server.session.HostedSession`'s pumps are
plain asyncio tasks; before this module an uncaught exception in one
of them killed the task silently and the session wedged — signalling
stopped draining, media stopped flowing, and nothing was recorded.

:class:`TaskSupervisor` wraps each pump coroutine *factory* in a
supervision loop: a crash is counted and logged
(``health.task_crashes``), the loop backs off exponentially and calls
the factory again (``health.task_restarts``), and after
``max_restarts`` consecutive crashes it gives up
(``health.task_give_ups``) and invokes the owner's ``on_give_up``
callback — for a hosted session, closing it with
``reason="supervisor_give_up"`` so its participants are shed cleanly
instead of hanging forever.

Cancellation and normal return are *not* crashes: both end the
supervision loop quietly, so the existing teardown paths (session
``close()`` cancelling its tasks) behave exactly as before.  A clean
stretch of ``reset_after`` seconds on the restarted task resets the
consecutive-crash counter, so a session that crashes once a day never
reaches give-up.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable

from ..obs.instrumentation import NULL


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Backoff schedule for one supervised task."""

    #: Wall-clock pause before the first restart.
    initial_backoff: float = 0.01
    #: Multiplier per consecutive crash.
    backoff_factor: float = 2.0
    #: Consecutive crashes tolerated before giving up.
    max_restarts: int = 3
    #: A restarted task surviving this long (wall seconds) resets the
    #: consecutive-crash counter.
    reset_after: float = 5.0

    def __post_init__(self) -> None:
        if self.initial_backoff < 0:
            raise ValueError("initial_backoff cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts cannot be negative")
        if self.reset_after <= 0:
            raise ValueError("reset_after must be positive")

    def backoff(self, consecutive_crashes: int) -> float:
        """Pause before restart number ``consecutive_crashes``."""
        return self.initial_backoff * (
            self.backoff_factor ** max(0, consecutive_crashes - 1)
        )


class TaskSupervisor:
    """Creates supervised asyncio tasks with crash-restart semantics."""

    def __init__(
        self,
        policy: RestartPolicy | None = None,
        instrumentation=None,
    ) -> None:
        self.policy = policy or RestartPolicy()
        self.crashes = 0
        self.restarts = 0
        self.give_ups = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_crashes = obs.counter("health.task_crashes")
        self._c_restarts = obs.counter("health.task_restarts")
        self._c_give_ups = obs.counter("health.task_give_ups")

    def supervise(
        self,
        factory: Callable[[], Awaitable[None]],
        name: str,
        on_give_up: Callable[[BaseException], None] | None = None,
    ) -> asyncio.Task:
        """Run ``factory()`` under supervision; returns the outer task.

        ``factory`` must be re-callable: each (re)start calls it for a
        fresh coroutine.  ``on_give_up`` fires once, with the final
        exception, when the restart budget is exhausted.
        """
        return asyncio.create_task(
            self._run(factory, name, on_give_up), name=name
        )

    async def _run(
        self,
        factory: Callable[[], Awaitable[None]],
        name: str,
        on_give_up: Callable[[BaseException], None] | None,
    ) -> None:
        loop = asyncio.get_running_loop()
        consecutive = 0
        while True:
            started = loop.time()
            try:
                await factory()
                return  # clean exit: supervision over
            except asyncio.CancelledError:
                raise  # teardown path, not a crash
            except Exception as exc:
                if loop.time() - started >= self.policy.reset_after:
                    consecutive = 0
                consecutive += 1
                self.crashes += 1
                self._c_crashes.inc()
                if self._obs.enabled:
                    self._obs.event(
                        "health.task_crashed", task=name,
                        error=type(exc).__name__,
                        consecutive=consecutive,
                    )
                if consecutive > self.policy.max_restarts:
                    self.give_ups += 1
                    self._c_give_ups.inc()
                    if self._obs.enabled:
                        self._obs.event(
                            "health.task_gave_up", task=name,
                            error=type(exc).__name__,
                            crashes=consecutive,
                        )
                    if on_give_up is not None:
                        on_give_up(exc)
                    return
                self.restarts += 1
                self._c_restarts.inc()
                pause = self.policy.backoff(consecutive)
                if pause > 0:
                    await asyncio.sleep(pause)
                else:
                    await asyncio.sleep(0)

    def snapshot(self) -> dict:
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "give_ups": self.give_ups,
        }
