"""The unified session-observability facade.

One :class:`Instrumentation` object is injected at
:class:`~repro.sharing.ah.ApplicationHost` /
:class:`~repro.sharing.participant.Participant` construction and flows
down the stack — update scheduler, frame encoder, retransmit path,
jitter buffer, RTP send/receive, RTCP reporting, token-bucket rate
control and the simulated channels all register their metrics against
the same :class:`~repro.obs.registry.MetricsRegistry` and append
structured events to the same :class:`~repro.stats.trace.SessionTrace`.

Design rules:

* **Handles, not lookups** — components resolve their counters once at
  construction; the per-packet cost is one integer bump.
* **Null off-switch** — the shared :data:`NULL` instance keeps every
  hot path allocation-free when observability is off: its handles are
  shared no-op singletons and ``event()`` does nothing.  Guard any
  kwargs-building event emission with ``if obs.enabled:``.
* **Scoped labels** — :meth:`Instrumentation.scoped` binds labels
  (``peer=...``, ``side=...``) so layers never thread identity strings
  by hand.

The legacy measurement classes remain as thin adapters:
:meth:`traffic_stats` returns a :class:`~repro.stats.metrics.TrafficStats`
whose per-class :class:`~repro.stats.metrics.ByteCounter` fields also
feed registry counters, and :meth:`latency_recorder` returns a
registry histogram that *is* a :class:`~repro.stats.metrics.LatencyRecorder`.
"""

from __future__ import annotations

import json

from ..stats.metrics import ByteCounter, LatencyRecorder, TrafficStats
from ..stats.trace import SessionTrace
from .clockutil import as_now
from .flight import FlightRecorder
from .registry import Counter, Gauge, Histogram, MetricsRegistry

#: TrafficStats fields, which double as the ``class=`` label values.
MESSAGE_CLASSES = (
    "window_info",
    "region_update",
    "move_rectangle",
    "pointer",
    "hip",
    "rtcp",
    "retransmit",
)


class _BoundByteCounter(ByteCounter):
    """A ByteCounter that mirrors every add into registry counters."""

    __slots__ = ("_c_packets", "_c_payload", "_c_wire")

    def __init__(self, c_packets: Counter, c_payload: Counter,
                 c_wire: Counter) -> None:
        super().__init__()
        self._c_packets = c_packets
        self._c_payload = c_payload
        self._c_wire = c_wire

    def add(self, payload: int, wire: int) -> None:
        super().add(payload, wire)
        self._c_packets.inc()
        self._c_payload.inc(payload)
        self._c_wire.inc(wire)

    def merge(self, other: ByteCounter) -> None:
        super().merge(other)
        self._c_packets.inc(other.packets)
        self._c_payload.inc(other.payload_bytes)
        self._c_wire.inc(other.wire_bytes)


class Instrumentation:
    """Live observability: a registry, a trace, and a shared clock."""

    enabled = True

    def __init__(
        self,
        clock=None,
        registry: MetricsRegistry | None = None,
        trace: SessionTrace | None = None,
    ) -> None:
        self._now = as_now(clock, default=lambda: 0.0)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else SessionTrace(self._now)
        #: Anomaly flight recorder, fed by :meth:`event`.
        self.flight = FlightRecorder()
        self._spans = None

    def now(self) -> float:
        return self._now()

    def bind_clock(self, clock) -> None:
        """Re-point this instrumentation (and its trace) at ``clock``.

        Session helpers that create their clock internally (e.g.
        ``repro.quick_session``) call this so event times and
        :meth:`now` agree with the session they instrument.
        """
        self._now = as_now(clock)
        self.trace._now = self._now

    # -- Metric handles ----------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self.registry.histogram(name, **labels)

    # -- One-shot verbs (cold paths; hot paths hold handles) ---------------

    def count(self, name: str, n: int = 1, **labels) -> None:
        self.registry.counter(name, **labels).inc(n)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.histogram(name, **labels).observe(value)

    def event(self, kind: str, **attrs) -> None:
        ev = self.trace.record(kind, **attrs)
        if self.flight is not None:
            self.flight.observe(ev)

    # -- Causal span tracing -----------------------------------------------

    @property
    def spans(self):
        """The session's :class:`~repro.obs.spans.SpanTracker`, created
        on first touch (so sessions that never trace pay nothing)."""
        if self._spans is None:
            from .spans import SpanTracker

            self._spans = SpanTracker(self)
        return self._spans

    # -- Label scoping -----------------------------------------------------

    def scoped(self, **labels) -> "Instrumentation":
        """A view that stamps ``labels`` onto every metric and event."""
        return _ScopedInstrumentation(self, labels)

    # -- Legacy-API adapters -----------------------------------------------

    def traffic_stats(self, **labels) -> TrafficStats:
        """A TrafficStats whose ByteCounters also feed the registry
        (``traffic.packets/payload_bytes/wire_bytes{class=...}``)."""
        stats = TrafficStats()
        for cls in MESSAGE_CLASSES:
            tagged = {**labels, "class": cls}
            setattr(
                stats,
                cls,
                _BoundByteCounter(
                    self.counter("traffic.packets", **tagged),
                    self.counter("traffic.payload_bytes", **tagged),
                    self.counter("traffic.wire_bytes", **tagged),
                ),
            )
        return stats

    def latency_recorder(self, name: str, **labels) -> Histogram:
        """A registry histogram; satisfies the LatencyRecorder API."""
        return self.histogram(name, **labels)

    # -- Export / reconstruction -------------------------------------------

    def snapshot(self, events: bool = False) -> dict:
        """One JSON-serialisable dict for the whole session."""
        snap = self.registry.snapshot()
        kinds: dict[str, int] = {}
        for e in self.trace:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        snap["trace"] = {
            "events": len(self.trace),
            "kinds": dict(sorted(kinds.items())),
        }
        if events:
            snap["events"] = self.trace.to_rows()
        return snap

    def export_prometheus(self, namespace: str = "repro") -> str:
        """The metrics registry in Prometheus text exposition format."""
        from .export import render_prometheus

        return render_prometheus(self.registry, namespace=namespace)

    def export_json(self, events: bool = False,
                    indent: int | None = 2) -> str:
        """The session snapshot as one sorted JSON document."""
        from .export import render_json

        return render_json(self, events=events, indent=indent)

    def export_chrome_trace(self, indent: int | None = None) -> str:
        """Completed spans + trace events as a ``chrome://tracing`` /
        Perfetto-loadable trace-event JSON document."""
        from .export import render_chrome_trace

        return render_chrome_trace(self, indent=indent)

    def update_latencies(
        self,
        sent_kind: str = "update.sent",
        applied_kind: str = "update.applied",
        key: str = "rtp_ts",
    ) -> LatencyRecorder:
        """Reconstruct the update-sent → update-applied latency
        distribution by pairing trace events on ``key``.

        Each applied event is paired with the *first* sent event bearing
        the same key (fragments and per-destination copies of one update
        share an RTP timestamp); unmatched events are skipped.
        """
        sent: dict[object, float] = {}
        recorder = LatencyRecorder()
        for e in self.trace:
            if e.kind == sent_kind:
                sent.setdefault(e.attrs.get(key), e.time)
            elif e.kind == applied_kind:
                t0 = sent.get(e.attrs.get(key))
                if t0 is not None and e.time >= t0:
                    recorder.record(e.time - t0)
        return recorder


class _ScopedInstrumentation(Instrumentation):
    """A label-binding view over a base Instrumentation."""

    def __init__(self, base: Instrumentation, labels: dict) -> None:
        self._base = base
        self._labels = labels
        self._now = base._now

    @property
    def registry(self) -> MetricsRegistry:  # type: ignore[override]
        return self._base.registry

    @property
    def trace(self) -> SessionTrace:  # type: ignore[override]
        return self._base.trace

    @property
    def flight(self) -> FlightRecorder:  # type: ignore[override]
        return self._base.flight

    @property
    def spans(self):
        return self._base.spans

    def counter(self, name: str, **labels) -> Counter:
        return self._base.counter(name, **{**self._labels, **labels})

    def gauge(self, name: str, **labels) -> Gauge:
        return self._base.gauge(name, **{**self._labels, **labels})

    def histogram(self, name: str, **labels) -> Histogram:
        return self._base.histogram(name, **{**self._labels, **labels})

    def event(self, kind: str, **attrs) -> None:
        self._base.event(kind, **{**self._labels, **attrs})

    def scoped(self, **labels) -> Instrumentation:
        return _ScopedInstrumentation(self._base, {**self._labels, **labels})

    def bind_clock(self, clock) -> None:
        self._base.bind_clock(clock)
        self._now = self._base._now


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    """Shared, never-storing histogram (summary reads as all-zero)."""

    def record(self, seconds: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram("null")


class NullInstrumentation:
    """The off-switch: same interface, shared no-op handles, zero state.

    ``traffic_stats()`` and ``latency_recorder()`` still return *live*
    local accumulators — those power long-standing public attributes
    (``participant.stats``, ``participant.update_latency``) that must
    keep working with observability off.
    """

    enabled = False
    #: No flight recorder: :meth:`event` is a no-op anyway.
    flight = None

    def now(self) -> float:
        return 0.0

    def bind_clock(self, clock) -> None:
        pass

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def count(self, name: str, n: int = 1, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def event(self, kind: str, **attrs) -> None:
        pass

    def scoped(self, **labels) -> "NullInstrumentation":
        return self

    @property
    def spans(self):
        """The shared no-op tracker (``begin``/``resolve`` → None)."""
        from .spans import NULL_SPANS

        return NULL_SPANS

    def traffic_stats(self, **labels) -> TrafficStats:
        return TrafficStats()

    def latency_recorder(self, name: str, **labels) -> LatencyRecorder:
        return LatencyRecorder()

    def snapshot(self, events: bool = False) -> dict:
        snap: dict = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "trace": {"events": 0, "kinds": {}},
        }
        if events:
            snap["events"] = []
        return snap

    def update_latencies(self, *args, **kwargs) -> LatencyRecorder:
        return LatencyRecorder()

    def export_prometheus(self, namespace: str = "repro") -> str:
        return ""

    def export_json(self, events: bool = False,
                    indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(events=events), indent=indent,
                          sort_keys=True)

    def export_chrome_trace(self, indent: int | None = None) -> str:
        return json.dumps(
            {"traceEvents": [], "displayTimeUnit": "ms"}, indent=indent
        )


#: The shared no-op instance every component defaults to.
NULL = NullInstrumentation()


def resolve_obs(obs, instrumentation, owner: str, default=NULL):
    """Merge the deprecated ``instrumentation=`` kwarg into ``obs``.

    The public session classes (:class:`~repro.sharing.ah.ApplicationHost`,
    :class:`~repro.sharing.participant.Participant`,
    :class:`~repro.sharing.service.SharingService`,
    :class:`~repro.sharing.server.SessionServer`) all take the
    observability facade as ``obs=``; the historical ``instrumentation=``
    spelling keeps working for one release with a warning — the same
    migration pattern as ``now=`` → ``clock=``
    (:func:`repro.obs.clockutil.resolve_clock`).

    ``default`` supplies the fallback when neither is given (pass None
    to let the caller apply its own default, e.g. inheriting the AH's).
    """
    import warnings

    if instrumentation is not None:
        warnings.warn(
            f"{owner}(instrumentation=...) is deprecated; pass obs=",
            DeprecationWarning,
            stacklevel=3,
        )
        if obs is None:
            obs = instrumentation
    return obs if obs is not None else default
