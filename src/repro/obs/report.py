"""Traced scenario runner + per-stage latency waterfall reports.

``python -m repro.obs --report <scenario>`` runs one fully seeded
simulated sharing session with span tracing on and renders the
per-stage latency waterfall (p50/p95/p99 per pipeline stage, plus the
end-to-end ``update.e2e_seconds`` distribution split by
``recovered=yes|no``).  Three scenarios:

* ``baseline`` — TCP, clean path (the CI perf-trajectory anchor);
* ``lossy``    — UDP with 5 % i.i.d. loss and NACK retransmissions;
* ``burst``    — UDP under a Gilbert–Elliott burst-loss profile.

Everything is seeded and measured against the simulated clock, so the
numbers are bit-identical across runs and machines — which is what
lets CI fail a pull request when the baseline e2e p95 regresses more
than :data:`REGRESSION_TOLERANCE` against the committed
``BENCH_trace.json`` seed.
"""

from __future__ import annotations

import random

from ..apps.terminal import TerminalApp
from ..apps.text_editor import TextEditorApp
from ..net.channel import ChannelConfig, FaultProfile, duplex_lossy, duplex_reliable
from ..rtp.clock import SimulatedClock
from ..sharing.ah import ApplicationHost
from ..sharing.config import SharingConfig
from ..sharing.participant import Participant
from ..sharing.transport import DatagramTransport, StreamTransport
from ..surface.geometry import Rect
from .instrumentation import Instrumentation
from .spans import STAGES

SCENARIOS = ("baseline", "lossy", "burst")

#: CI gate: fail when the e2e p95 grows past seed * (1 + tolerance).
REGRESSION_TOLERANCE = 0.25

#: Report percentiles (columns of the waterfall table).
PERCENTILES = (50, 95, 99)


def run_scenario(
    name: str,
    rounds: int = 380,
    instrumentation: Instrumentation | None = None,
) -> Instrumentation:
    """Run one traced scenario; returns its :class:`Instrumentation`."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; pick from {SCENARIOS}")
    clock = SimulatedClock()
    obs = instrumentation if instrumentation is not None else Instrumentation()
    obs.bind_clock(clock)
    obs.spans  # force span tracing on before the session is built
    config = SharingConfig(adaptive_codec=False)
    ah = ApplicationHost(
        config=config, clock=clock, rng=random.Random(3), obs=obs,
    )

    if name == "baseline":
        dt = 0.01
        link = duplex_reliable(
            ChannelConfig(delay=0.02), clock.now, instrumentation=obs
        )
        transport_ah = StreamTransport(link.forward, link.backward)
        transport_p = StreamTransport(link.backward, link.forward)
    else:
        dt = 0.02
        if name == "lossy":
            channel = ChannelConfig(delay=0.02, loss_rate=0.05, seed=42)
            faults = None
        else:  # burst
            channel = ChannelConfig(delay=0.02, seed=42)
            faults = FaultProfile.gilbert_elliott(0.08, mean_burst=4.0)
        link = duplex_lossy(
            channel, clock.now, instrumentation=obs, faults=faults
        )
        transport_ah = DatagramTransport(link.forward, link.backward)
        transport_p = DatagramTransport(link.backward, link.forward)

    ah.add_participant("p1", transport_ah)
    participant = Participant(
        "p1",
        transport_p,
        clock=clock,
        config=config,
        ah_supports_retransmissions=config.retransmissions,
        rng=random.Random(7),
        obs=obs,
    )
    participant.join()

    editor = TextEditorApp(ah.windows.create_window(Rect(10, 10, 300, 200)))
    terminal = TerminalApp(ah.windows.create_window(Rect(330, 10, 300, 200)))
    ah.apps.attach(editor)
    ah.apps.attach(terminal)

    for i in range(rounds):
        if i % 10 == 0:
            editor.type_text(f"report {i} ")
        if i % 14 == 0:
            terminal.append_line(f"$ job {i}")
        ah.advance(dt)
        clock.advance(dt)
        participant.process_incoming()
    # Quiet tail: let in-flight repairs land so recovered spans close.
    for _ in range(60):
        ah.advance(dt)
        clock.advance(dt)
        participant.process_incoming()
    return obs


# -- Aggregation -------------------------------------------------------------


def _histogram_row(histogram) -> dict:
    if histogram is None or histogram.count == 0:
        return {"count": 0, "p50": None, "p95": None, "p99": None}
    p50, p95, p99 = histogram.percentiles(PERCENTILES)
    return {"count": histogram.count, "p50": p50, "p95": p95, "p99": p99}


def bench_payload(obs: Instrumentation, scenario: str, rounds: int) -> dict:
    """The ``BENCH_trace.json`` document for one scenario run."""
    registry = obs.registry
    stages = {
        stage: _histogram_row(
            registry.get("update.stage_seconds", stage=stage)
        )
        for stage in STAGES
    }
    e2e = {
        label: _histogram_row(
            registry.get("update.e2e_seconds", recovered=label)
        )
        for label in ("no", "yes")
    }
    return {
        "bench": "trace",
        "scenario": scenario,
        "rounds": rounds,
        "stages": stages,
        "e2e": e2e,
        "spans": {
            "started": registry.total("spans.started"),
            "completed": registry.total("spans.completed"),
            "abandoned": registry.total("spans.abandoned"),
        },
    }


def _ms(value: float | None) -> str:
    return "      -" if value is None else f"{value * 1e3:7.2f}"


def render_waterfall(payload: dict) -> str:
    """The per-stage latency waterfall as a fixed-width text table."""
    lines = [
        f"scenario: {payload['scenario']}  rounds: {payload['rounds']}",
        f"spans: {payload['spans']['started']:.0f} started, "
        f"{payload['spans']['completed']:.0f} completed, "
        f"{payload['spans']['abandoned']:.0f} abandoned",
        "",
        f"{'stage':<12} {'count':>6} {'p50 ms':>7} {'p95 ms':>7} {'p99 ms':>7}",
        "-" * 43,
    ]
    for stage in STAGES:
        row = payload["stages"][stage]
        lines.append(
            f"{stage:<12} {row['count']:>6} "
            f"{_ms(row['p50'])} {_ms(row['p95'])} {_ms(row['p99'])}"
        )
    lines.append("-" * 43)
    for label in ("no", "yes"):
        row = payload["e2e"][label]
        lines.append(
            f"{'e2e rec=' + label:<12} {row['count']:>6} "
            f"{_ms(row['p50'])} {_ms(row['p95'])} {_ms(row['p99'])}"
        )
    return "\n".join(lines)


# -- CI regression gate ------------------------------------------------------


def check_regression(
    current: dict, baseline: dict,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Compare two bench payloads; returns failure messages (empty = ok).

    Gates on ``update.e2e_seconds`` p95 per ``recovered`` label: any
    label the baseline has samples for must stay within
    ``baseline * (1 + tolerance)`` now.
    """
    failures: list[str] = []
    for label, seed_row in baseline.get("e2e", {}).items():
        seed_p95 = seed_row.get("p95")
        if not seed_row.get("count") or seed_p95 is None:
            continue
        row = current.get("e2e", {}).get(label, {})
        p95 = row.get("p95")
        if not row.get("count") or p95 is None:
            failures.append(
                f"e2e recovered={label}: no samples now "
                f"(baseline had {seed_row['count']})"
            )
            continue
        limit = seed_p95 * (1 + tolerance)
        if p95 > limit:
            failures.append(
                f"e2e recovered={label}: p95 {p95 * 1e3:.2f} ms exceeds "
                f"baseline {seed_p95 * 1e3:.2f} ms by more than "
                f"{tolerance:.0%} (limit {limit * 1e3:.2f} ms)"
            )
    return failures
