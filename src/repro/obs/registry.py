"""Metric primitives and the registry that names them.

One :class:`MetricsRegistry` per session holds every named metric:

* :class:`Counter` — monotonically increasing int (packets, bytes);
* :class:`Gauge` — last-written float (queue depth, backlog);
* :class:`Histogram` — sample distribution with percentile summaries
  (update staleness, apply latency).

Metrics are identified by a name plus a set of ``key=value`` labels
(``peer``, ``side``, ``class``, ...).  Handles are get-or-create and
stable, so hot paths resolve them once at construction time and then
pay one attribute bump per event.  :meth:`MetricsRegistry.snapshot`
renders everything into one JSON-serialisable dict.
"""

from __future__ import annotations

from typing import Iterator

from ..stats.metrics import LatencyRecorder

#: Sorted ``(key, value)`` pairs — the canonical label encoding.
Labels = tuple[tuple[str, object], ...]


def render_name(name: str, labels: Labels) -> str:
    """``name{k=v,...}`` rendering used by snapshots and docs."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing tally.

    ``calls`` counts ``inc()`` invocations separately from the
    accumulated ``value`` — a byte counter bumped once per packet is
    one observability operation, not ``n`` of them, and the overhead
    selftest bounds cost per *call*.
    """

    __slots__ = ("name", "labels", "value", "calls")
    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self.calls = 0

    def inc(self, n: int = 1) -> None:
        self.value += n
        self.calls += 1


class Gauge:
    """A last-written value (levels, depths, sizes)."""

    __slots__ = ("name", "labels", "value", "calls")
    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.calls = 0

    def set(self, value: float) -> None:
        self.value = value
        self.calls += 1

    def add(self, delta: float) -> None:
        self.value += delta
        self.calls += 1


class Histogram(LatencyRecorder):
    """A sample distribution; extends :class:`LatencyRecorder` with the
    registry identity and an ``observe`` verb (negatives clamp to 0 so
    float rounding near zero never raises on a hot path)."""

    kind = "histogram"

    def __init__(self, name: str = "", labels: Labels = ()) -> None:
        super().__init__()
        self.name = name
        self.labels = labels

    def observe(self, value: float) -> None:
        self.record(value if value > 0 else 0.0)

    def percentile(self, p: float) -> float | None:
        """Like :meth:`LatencyRecorder.percentile`, but an empty
        histogram answers ``None`` instead of a misleading 0.0 (a
        single sample answers that sample, as before)."""
        if not self._samples:
            if not 0 <= p <= 100:
                raise ValueError("percentile must be in [0, 100]")
            return None
        return super().percentile(p)

    def percentiles(
        self, ps: tuple[float, ...] = (50, 95, 99)
    ) -> tuple[float | None, ...]:
        """The requested percentiles in one sorted pass."""
        return tuple(self.percentile(p) for p in ps)

    def summary(self) -> dict[str, float]:
        # Keep the all-zero dict for empty histograms so the snapshot
        # JSON schema stays stable even with percentile() → None.
        if not self._samples:
            return {
                "count": 0.0, "mean": 0.0, "p50": 0.0,
                "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        return super().summary()


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named counters, gauges and histograms for one session."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}

    # -- Handles -----------------------------------------------------------

    def _get(self, cls: type, name: str, labels: dict) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {render_name(*key)!r} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- Queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str, **labels) -> Metric | None:
        """The exact metric, or None when never registered."""
        return self._metrics.get((name, tuple(sorted(labels.items()))))

    def find(self, name: str, **labels) -> list[Metric]:
        """Every metric with this name whose labels include ``labels``."""
        want = set(labels.items())
        return [
            m for (n, _), m in self._metrics.items()
            if n == name and want <= set(m.labels)
        ]

    def total(self, name: str, **labels) -> float:
        """Sum of matching counter/gauge values (histograms: counts)."""
        out = 0.0
        for metric in self.find(name, **labels):
            out += metric.count if isinstance(metric, Histogram) else metric.value
        return out

    # -- Export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-serialisable dict: every metric, rendered name → value."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        # String-keyed sort: label values may mix types (ints, strs),
        # which plain tuple comparison would TypeError on.
        ordered = sorted(
            self._metrics.items(),
            key=lambda item: (
                item[0][0],
                tuple((k, str(v)) for k, v in item[0][1]),
            ),
        )
        for (name, labels), metric in ordered:
            full = render_name(name, labels)
            if isinstance(metric, Counter):
                counters[full] = metric.value
            elif isinstance(metric, Gauge):
                gauges[full] = metric.value
            else:
                histograms[full] = metric.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
