"""Causal span tracing for RegionUpdates (damage → apply, end to end).

Every scheduled RegionUpdate gets an ``update_id`` when the frame
encoder first sees it; the id is never put on the wire.  Instead the
update is identified by the **extended RTP sequence range** its
fragments occupy — the one piece of identity both sides of the session
already share — so the participant-side receive, reassembly, decode and
apply stages join the same trace without any protocol change.

A span is a set of per-stage ``[start, end]`` intervals measured
against the session clock:

    schedule → encode → fragment → send → (network) → receive
             → reassemble → decode → apply

``network`` is derived at completion (last ``send`` to first
``receive``); every other stage is marked in place by the component
that owns it.  Completed spans roll up into the
``update.stage_seconds{stage=...}`` histograms and one end-to-end
``update.e2e_seconds{recovered=yes|no}`` histogram — ``recovered=yes``
when any fragment arrived via a NACK retransmission, so the happy path
and the loss-recovery path are separately measurable.

Spans that can never complete (NACK retries exhausted, undecodable
payload, open-span cap reached) are abandoned and counted by reason
(``spans.abandoned{reason=...}``).  Recent finished spans stay in a
bounded deque for the Chrome-trace exporter
(:func:`repro.obs.export.chrome_trace`).

The shared :data:`NULL_SPANS` tracker is the off-switch: with
:data:`repro.obs.NULL` instrumentation, ``begin`` returns ``None``,
``resolve`` returns ``None``, and every call-site guard of the form
``if span_id is not None`` keeps the hot path allocation-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..rtp.sequence import SequenceExtender

#: Canonical stage order (the waterfall row order).  ``relay`` sits
#: inside the network hop: each relay that forwards a fragment widens
#: the interval, so a 2-level tree's relay stage spans first-hop
#: forward to last-hop forward.
STAGES = (
    "schedule",
    "encode",
    "parallel_encode",
    "fragment",
    "send",
    "network",
    "relay",
    "failover",
    "receive",
    "reassemble",
    "decode",
    "apply",
)

#: Stages only present on some topologies: a direct AH→participant
#: session has no ``relay`` hop, ``failover`` appears only on the
#: first update a re-parented relay forwards after its parent died,
#: and ``parallel_encode`` marks only updates the worker pool encoded
#: — so completeness checks must not demand these.
OPTIONAL_STAGES = ("relay", "failover", "parallel_encode")

#: Why a span was abandoned, for the ``spans.abandoned`` counter family.
ABANDON_REASONS = (
    "give_up", "no_window", "codec_unsupported", "codec_error", "evicted",
)


@dataclass(slots=True)
class UpdateSpan:
    """One update's causal trace: stage intervals plus identity."""

    update_id: int
    attrs: dict
    #: stage → [start, end] against the session clock.
    stages: dict[str, list[float]] = field(default_factory=dict)
    #: (ssrc, extended seq) keys this span holds in the tracker index.
    seq_keys: list[tuple[int, int]] = field(default_factory=list)
    rtp_timestamp: int | None = None
    recovered: bool = False
    outcome: str = "open"  # open | complete | abandoned:<reason>

    def duration(self, stage: str) -> float | None:
        interval = self.stages.get(stage)
        return None if interval is None else interval[1] - interval[0]

    @property
    def start(self) -> float | None:
        if not self.stages:
            return None
        return min(interval[0] for interval in self.stages.values())

    @property
    def end(self) -> float | None:
        if not self.stages:
            return None
        return max(interval[1] for interval in self.stages.values())

    def e2e_seconds(self) -> float | None:
        if not self.stages:
            return None
        return self.end - self.start

    def to_row(self) -> dict:
        """Flat JSON-serialisable summary (flight dumps, reports)."""
        return {
            "update_id": self.update_id,
            "outcome": self.outcome,
            "recovered": self.recovered,
            "rtp_timestamp": self.rtp_timestamp,
            "stages": {
                stage: {"start": t0, "end": t1}
                for stage, (t0, t1) in self.stages.items()
            },
            **self.attrs,
        }


class _StreamIndex:
    """Per-SSRC extended-sequence index: ext seq → update_id."""

    __slots__ = ("extender", "by_ext")

    def __init__(self) -> None:
        self.extender = SequenceExtender()
        self.by_ext: dict[int, int] = {}


class SpanTracker:
    """Allocates update ids, joins both sides, rolls up histograms."""

    enabled = True

    def __init__(
        self,
        instrumentation,
        max_open: int = 1024,
        max_completed: int = 4096,
    ) -> None:
        if max_open < 1 or max_completed < 1:
            raise ValueError("span capacities must be positive")
        self._ins = instrumentation
        self.max_open = max_open
        self._next_id = 1
        self._open: dict[int, UpdateSpan] = {}
        #: Finished spans (complete and abandoned), oldest evicted first.
        self.completed: deque[UpdateSpan] = deque(maxlen=max_completed)
        self._streams: dict[int, _StreamIndex] = {}
        self._c_started = instrumentation.counter("spans.started")
        self._c_completed = {
            label: instrumentation.counter("spans.completed", recovered=label)
            for label in ("yes", "no")
        }
        self._c_abandoned = {
            reason: instrumentation.counter("spans.abandoned", reason=reason)
            for reason in ABANDON_REASONS
        }
        self._h_stage = {
            stage: instrumentation.histogram(
                "update.stage_seconds", stage=stage
            )
            for stage in STAGES
        }
        self._h_e2e = {
            label: instrumentation.histogram(
                "update.e2e_seconds", recovered=label
            )
            for label in ("yes", "no")
        }

    # -- Lifecycle ---------------------------------------------------------

    def begin(self, **attrs) -> int:
        """Open a span for one scheduled update; returns its id."""
        while len(self._open) >= self.max_open:
            oldest = next(iter(self._open))
            self.abandon(oldest, "evicted")
        update_id = self._next_id
        self._next_id += 1
        self._open[update_id] = UpdateSpan(update_id, attrs)
        self._c_started.inc()
        return update_id

    def mark(
        self,
        span_id: int | None,
        stage: str,
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        """Extend ``stage``'s interval; missing bounds default to now.

        Repeated marks widen the interval (min start, max end), so a
        stage touched once per fragment — send, receive, reassemble —
        naturally spans first fragment to last.
        """
        if span_id is None:
            return
        span = self._open.get(span_id)
        if span is None:
            return
        now = self._ins.now()
        t0 = start if start is not None else now
        t1 = end if end is not None else now
        interval = span.stages.get(stage)
        if interval is None:
            span.stages[stage] = [t0, t1]
        else:
            if t0 < interval[0]:
                interval[0] = t0
            if t1 > interval[1]:
                interval[1] = t1

    def bind_range(
        self,
        span_id: int | None,
        ssrc: int,
        first_seq: int,
        count: int,
        rtp_timestamp: int | None = None,
    ) -> None:
        """Claim the ``count`` sequence numbers starting at ``first_seq``.

        This is the wire identity: the receive side resolves arriving
        packets back to the span through this index.
        """
        if span_id is None:
            return
        span = self._open.get(span_id)
        if span is None:
            return
        span.rtp_timestamp = rtp_timestamp
        index = self._streams.get(ssrc)
        if index is None:
            index = self._streams[ssrc] = _StreamIndex()
        for i in range(count):
            ext = index.extender.extend((first_seq + i) & 0xFFFF)
            index.by_ext[ext] = span_id
            span.seq_keys.append((ssrc, ext))

    def resolve(self, ssrc: int, seq: int) -> int | None:
        """The open span owning ``seq`` on stream ``ssrc``, if any."""
        index = self._streams.get(ssrc)
        if index is None:
            return None
        return index.by_ext.get(index.extender.extend(seq))

    def recovered(self, span_id: int | None) -> None:
        """Flag that a fragment arrived via NACK retransmission."""
        if span_id is None:
            return
        span = self._open.get(span_id)
        if span is not None:
            span.recovered = True

    def complete(self, span_id: int | None) -> None:
        """Close the span: derive ``network``, feed the histograms."""
        span = self._finish(span_id)
        if span is None:
            return
        send = span.stages.get("send")
        receive = span.stages.get("receive")
        if send is not None and receive is not None:
            span.stages["network"] = [
                send[1], max(receive[0], send[1])
            ]
        span.outcome = "complete"
        label = "yes" if span.recovered else "no"
        self._c_completed[label].inc()
        for stage, (t0, t1) in span.stages.items():
            histogram = self._h_stage.get(stage)
            if histogram is not None:
                histogram.observe(t1 - t0)
        e2e = span.e2e_seconds()
        if e2e is not None:
            self._h_e2e[label].observe(e2e)
        self.completed.append(span)

    def abandon(self, span_id: int | None, reason: str) -> None:
        """Close the span without an apply; counted by ``reason``."""
        span = self._finish(span_id)
        if span is None:
            return
        span.outcome = f"abandoned:{reason}"
        counter = self._c_abandoned.get(reason)
        if counter is None:
            counter = self._ins.counter("spans.abandoned", reason=reason)
            self._c_abandoned[reason] = counter
        counter.inc()
        self.completed.append(span)

    def _finish(self, span_id: int | None) -> UpdateSpan | None:
        if span_id is None:
            return None
        span = self._open.pop(span_id, None)
        if span is None:
            return None
        for ssrc, ext in span.seq_keys:
            index = self._streams.get(ssrc)
            if index is not None:
                index.by_ext.pop(ext, None)
        return span

    # -- Introspection -----------------------------------------------------

    @property
    def open_spans(self) -> int:
        return len(self._open)

    def get_open(self, span_id: int) -> UpdateSpan | None:
        return self._open.get(span_id)


class NullSpanTracker:
    """The off-switch: same verbs, no state, ``None`` identities."""

    enabled = False
    max_open = 0
    completed: tuple = ()
    open_spans = 0

    def begin(self, **attrs) -> None:
        return None

    def mark(self, span_id, stage, start=None, end=None) -> None:
        pass

    def bind_range(self, span_id, ssrc, first_seq, count,
                   rtp_timestamp=None) -> None:
        pass

    def resolve(self, ssrc, seq) -> None:
        return None

    def recovered(self, span_id) -> None:
        pass

    def complete(self, span_id) -> None:
        pass

    def abandon(self, span_id, reason) -> None:
        pass

    def get_open(self, span_id) -> None:
        return None


#: The shared no-op tracker :data:`repro.obs.NULL` hands out.
NULL_SPANS = NullSpanTracker()
