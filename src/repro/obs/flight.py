"""Anomaly flight recorder: causal history for every recovery sentinel.

Counters say *that* a peer was quarantined or a NACK retry gave up;
they cannot say what happened in the seconds before.  The flight
recorder keeps a bounded ring of the most recent trace events per peer
and, the moment a **sentinel** event fires — quarantine mute, NACK
give-up → PLI, reassembly expiry, jitter-hole abandon — freezes that
ring into a structured JSON dump with the triggering event last.

One recorder is attached to every live :class:`~repro.obs.Instrumentation`
(``obs.flight``); :meth:`observe` is called once per trace event, so
with observability off (the :data:`~repro.obs.NULL` instance) the
recorder costs nothing at all.
"""

from __future__ import annotations

import json
from collections import deque

#: (event kind, attr subset that must match — or None for any).
DEFAULT_SENTINELS: tuple[tuple[str, dict | None], ...] = (
    ("peer.quarantined", None),
    ("recovery.gave_up", None),
    ("reassembly.dropped", {"reason": "expired"}),
    ("jitter.abandoned", None),
)

#: Ring key for events carrying no ``peer`` label.
SESSION_RING = "session"


class FlightRecorder:
    """Per-peer event rings plus sentinel-triggered snapshot dumps."""

    def __init__(
        self,
        capacity: int = 256,
        sentinels: tuple[tuple[str, dict | None], ...] = DEFAULT_SENTINELS,
        max_dumps: int = 64,
    ) -> None:
        if capacity < 1 or max_dumps < 1:
            raise ValueError("capacity and max_dumps must be positive")
        self.capacity = capacity
        self.max_dumps = max_dumps
        self._sentinels = tuple(sentinels)
        self._rings: dict[str, deque[dict]] = {}
        #: Structured snapshots, one per sentinel event, oldest first.
        self.dumps: list[dict] = []
        self.sentinels_seen = 0
        self.dumps_dropped = 0

    # -- Ingest ------------------------------------------------------------

    def observe(self, event) -> None:
        """Feed one :class:`~repro.stats.trace.TraceEvent`."""
        peer = str(event.attrs.get("peer", SESSION_RING))
        ring = self._rings.get(peer)
        if ring is None:
            ring = self._rings[peer] = deque(maxlen=self.capacity)
        ring.append({"time": event.time, "kind": event.kind, **event.attrs})
        if self._is_sentinel(event):
            self.sentinels_seen += 1
            if len(self.dumps) >= self.max_dumps:
                self.dumps_dropped += 1
                return
            self.dumps.append(
                {
                    "time": event.time,
                    "sentinel": event.kind,
                    "peer": peer,
                    "attrs": dict(event.attrs),
                    "events": list(ring),
                }
            )

    def _is_sentinel(self, event) -> bool:
        for kind, attrs in self._sentinels:
            if event.kind != kind:
                continue
            if attrs is None:
                return True
            if all(event.attrs.get(k) == v for k, v in attrs.items()):
                return True
        return False

    # -- Queries -----------------------------------------------------------

    def ring(self, peer: str = SESSION_RING) -> list[dict]:
        """The current event ring for ``peer`` (oldest first)."""
        return list(self._rings.get(peer, ()))

    @property
    def peers(self) -> list[str]:
        return sorted(self._rings)

    def dumps_for(self, peer: str) -> list[dict]:
        return [d for d in self.dumps if d["peer"] == peer]

    def to_json(self, indent: int | None = 2) -> str:
        """Every dump as one JSON document (stable key order)."""
        return json.dumps(
            {"capacity": self.capacity, "dumps": self.dumps},
            indent=indent,
            sort_keys=True,
            default=str,
        )
