"""Observability smoke test: ``python -m repro.obs --selftest``.

Asserts the no-op (:data:`repro.obs.NULL`) instrumentation path adds
under 5 % overhead to a bench_baseline-sized session.  Run-vs-run wall
time comparison is noisy at this scale, so the check is constructive
instead:

1. run the session once with live instrumentation to learn how many
   observability operations (counter bumps, histogram records, trace
   events) the workload performs;
2. time the same session with the shared :data:`NULL` object (the
   default every component carries when no instrumentation is given);
3. micro-time one null operation and bound the total instrumentation
   cost as ``ops x per-op cost``, which must stay below 5 % of the
   session's wall time.

Exit status 0 when the bound holds; 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..apps.terminal import TerminalApp
from ..apps.text_editor import TextEditorApp
from ..net.channel import ChannelConfig, duplex_reliable
from ..rtp.clock import SimulatedClock
from ..sharing.ah import ApplicationHost
from ..sharing.config import SharingConfig
from ..sharing.participant import Participant
from ..sharing.transport import StreamTransport
from ..surface.geometry import Rect
from . import report
from .instrumentation import NULL, Instrumentation

OVERHEAD_BUDGET = 0.05


def _run_session(instrumentation, rounds: int, dt: float = 0.01) -> float:
    """One bench_baseline-shaped TCP session; returns wall seconds."""
    clock = SimulatedClock()
    if instrumentation is not None:
        instrumentation.bind_clock(clock)
    config = SharingConfig(adaptive_codec=False)
    ah = ApplicationHost(
        config=config, clock=clock, obs=instrumentation
    )
    link = duplex_reliable(
        ChannelConfig(delay=0.02), clock.now, instrumentation=instrumentation
    )
    ah.add_participant("p1", StreamTransport(link.forward, link.backward))
    participant = Participant(
        "p1",
        StreamTransport(link.backward, link.forward),
        clock=clock,
        config=config,
        obs=instrumentation,
    )
    participant.join()
    editor = TextEditorApp(ah.windows.create_window(Rect(10, 10, 300, 200)))
    terminal = TerminalApp(ah.windows.create_window(Rect(330, 10, 300, 200)))
    ah.apps.attach(editor)
    ah.apps.attach(terminal)

    start = time.perf_counter()
    for i in range(rounds):
        if i % 10 == 0:
            editor.type_text(f"selftest {i} ")
        if i % 14 == 0:
            terminal.append_line(f"$ job {i}")
        ah.advance(dt)
        clock.advance(dt)
        participant.process_incoming()
    elapsed = time.perf_counter() - start
    if not participant.windows:
        raise AssertionError("selftest session produced no shared state")
    return elapsed


def _count_ops(obs: Instrumentation) -> int:
    """Observability operations the instrumented run performed.

    Counts *calls*, not accumulated values: a byte counter bumped with
    ``inc(1400)`` once per packet is one no-op-able operation, not
    1400 of them.
    """
    ops = 0
    for metric in obs.registry:
        if metric.kind == "histogram":
            ops += metric.count
        else:
            ops += metric.calls
    ops += len(obs.trace)
    return int(ops)


def _null_op_cost(samples: int = 200_000) -> float:
    """Seconds per no-op observability call, measured on NULL handles."""
    counter = NULL.counter("selftest.noop")
    histogram = NULL.histogram("selftest.noop")
    start = time.perf_counter()
    for _ in range(samples):
        counter.inc()
        histogram.observe(0.0)
        NULL.event("selftest.noop")
    return (time.perf_counter() - start) / (3 * samples)


def selftest(rounds: int = 380, verbose: bool = True) -> bool:
    """The <5 % no-op-overhead assertion; importable from tests."""
    obs = Instrumentation()
    _run_session(obs, rounds)
    ops = _count_ops(obs)

    null_elapsed = _run_session(None, rounds)
    per_op = _null_op_cost()
    bound = ops * per_op
    ratio = bound / null_elapsed if null_elapsed > 0 else 0.0
    ok = ratio < OVERHEAD_BUDGET

    if verbose:
        snap = obs.snapshot()
        print(
            f"instrumented ops: {ops} "
            f"({len(snap['counters'])} counters, "
            f"{len(snap['histograms'])} histograms, "
            f"{snap['trace']['events']} trace events)"
        )
        print(f"null session wall time : {null_elapsed * 1000:.1f} ms")
        print(f"per null-op cost       : {per_op * 1e9:.1f} ns")
        print(
            f"worst-case null overhead: {bound * 1000:.3f} ms "
            f"({ratio:.2%} of session, budget {OVERHEAD_BUDGET:.0%})"
        )
        print("selftest:", "PASS" if ok else "FAIL")
    return ok


def _run_report(args) -> int:
    """--report: waterfall to stdout, optional exports, regression gate."""
    obs = report.run_scenario(args.report, rounds=args.rounds)
    payload = report.bench_payload(obs, args.report, args.rounds)
    print(report.render_waterfall(payload))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench payload written to {args.json}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(obs.export_chrome_trace())
        print(f"chrome trace written to {args.chrome}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(obs.export_prometheus())
        print(f"prometheus exposition written to {args.prom}")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = report.check_regression(payload, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            "regression gate: PASS (e2e p95 within "
            f"{report.REGRESSION_TOLERANCE:.0%} of baseline)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Unified observability smoke tests.",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="assert no-op instrumentation stays under the overhead budget",
    )
    parser.add_argument(
        "--rounds", type=int, default=380,
        help="session rounds for the selftest workload (default 380)",
    )
    parser.add_argument(
        "--snapshot", action="store_true",
        help="print the instrumented session's full metrics snapshot (JSON)",
    )
    parser.add_argument(
        "--report", metavar="SCENARIO", choices=report.SCENARIOS,
        help="run a traced scenario (%s) and print the per-stage latency "
             "waterfall" % "/".join(report.SCENARIOS),
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="with --report: also write the BENCH_trace.json payload here",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="with --report: compare against a committed BENCH_trace.json "
             "and exit 1 when e2e p95 regresses more than "
             f"{report.REGRESSION_TOLERANCE:.0%}",
    )
    parser.add_argument(
        "--chrome", metavar="PATH",
        help="with --report: write a chrome://tracing span dump here",
    )
    parser.add_argument(
        "--prom", metavar="PATH",
        help="with --report: write the Prometheus text exposition here",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error(f"--rounds must be a positive integer, got {args.rounds}")

    if args.report:
        return _run_report(args)
    if args.snapshot:
        obs = Instrumentation()
        _run_session(obs, args.rounds)
        print(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
        if not args.selftest:
            return 0
    if args.selftest:
        return 0 if selftest(rounds=args.rounds) else 1
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
