"""Exporters: Prometheus text exposition, JSON, and Chrome trace events.

Three render targets for one session's observability state:

* :func:`render_prometheus` — the text exposition format scraped by
  Prometheus.  Counters become ``<ns>_<name>_total`` counter families,
  gauges map directly, and sample-keeping histograms export as
  *summary* families (``quantile=`` samples plus ``_sum``/``_count``).
  Names and label names are sanitised to the exposition charset and
  label values are escaped, so the output is scrape-clean (validated by
  a strict parser test).
* :func:`chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` / Perfetto: every completed update span renders
  its stages as complete (``"ph": "X"``) events on per-stage tracks,
  and every trace event becomes an instant event, so the update
  waterfall and the anomaly history share one timeline.
* :func:`render_json` — the :meth:`Instrumentation.snapshot` dict as a
  stable, sorted JSON document.

All three are exposed as ``Instrumentation.export_prometheus()`` /
``.export_chrome_trace()`` / ``.export_json()``.
"""

from __future__ import annotations

import json
import re

from .registry import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITISE = re.compile(r"[^a-zA-Z0-9_]")

#: Quantiles a histogram exports (Prometheus summary convention).
SUMMARY_QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """``scheduler.packets_sent`` → ``repro_scheduler_packets_sent``."""
    sanitised = _NAME_SANITISE.sub("_", name)
    full = f"{namespace}_{sanitised}" if namespace else sanitised
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def prometheus_label_name(name: str) -> str:
    label = _LABEL_SANITISE.sub("_", name)
    if not label or label[0].isdigit():
        label = "_" + label
    return label


def escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels_inner(labels, extra: tuple[tuple[str, object], ...] = ()) -> str:
    pairs = [
        (prometheus_label_name(k), escape_label_value(v))
        for k, v in (*labels, *extra)
    ]
    return ",".join(f'{k}="{v}"' for k, v in sorted(pairs))


def _sample(name: str, labels_inner: str, value: float) -> str:
    if labels_inner:
        return f"{name}{{{labels_inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The whole registry in Prometheus text exposition format."""
    families: dict[str, dict] = {}
    for metric in registry:
        if isinstance(metric, Counter):
            fam = prometheus_name(metric.name, namespace) + "_total"
            kind = "counter"
        elif isinstance(metric, Gauge):
            fam = prometheus_name(metric.name, namespace)
            kind = "gauge"
        else:
            fam = prometheus_name(metric.name, namespace)
            kind = "summary"
        family = families.setdefault(
            fam,
            {"type": kind, "help": f"{metric.name} ({kind})", "samples": []},
        )
        inner = _labels_inner(metric.labels)
        if isinstance(metric, Histogram):
            for quantile, percentile in SUMMARY_QUANTILES:
                q = metric.percentile(percentile)
                if q is None:
                    continue
                family["samples"].append(
                    _sample(
                        fam,
                        _labels_inner(
                            metric.labels, (("quantile", quantile),)
                        ),
                        q,
                    )
                )
            family["samples"].append(_sample(fam + "_sum", inner, metric.sum()))
            family["samples"].append(
                _sample(fam + "_count", inner, metric.count)
            )
        else:
            family["samples"].append(_sample(fam, inner, metric.value))
    lines: list[str] = []
    for fam in sorted(families):
        family = families[fam]
        lines.append(f"# HELP {fam} {escape_help(family['help'])}")
        lines.append(f"# TYPE {fam} {family['type']}")
        lines.extend(sorted(family["samples"]))
    return "\n".join(lines) + ("\n" if lines else "")


# -- Chrome trace-event format ----------------------------------------------


def chrome_trace(instrumentation) -> dict:
    """``chrome://tracing``-loadable dict: spans as X events, trace
    events as instants, one named track per pipeline stage."""
    from .spans import STAGES

    trace_events: list[dict] = []
    tids = {stage: i + 1 for i, stage in enumerate(STAGES)}
    trace_events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro session"},
        }
    )
    for stage, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"stage:{stage}"},
            }
        )
    for span in instrumentation.spans.completed:
        category = (
            "update" if span.outcome == "complete" else "update.abandoned"
        )
        for stage, (t0, t1) in span.stages.items():
            trace_events.append(
                {
                    "name": stage,
                    "cat": category,
                    "ph": "X",
                    "ts": round(t0 * 1e6, 3),
                    "dur": round((t1 - t0) * 1e6, 3),
                    "pid": 1,
                    "tid": tids.get(stage, 0),
                    "args": {
                        "update_id": span.update_id,
                        "recovered": span.recovered,
                        "outcome": span.outcome,
                        **span.attrs,
                    },
                }
            )
    for event in instrumentation.trace:
        trace_events.append(
            {
                "name": event.kind,
                "cat": "event",
                "ph": "i",
                "ts": round(event.time * 1e6, 3),
                "pid": 1,
                "tid": 0,
                "s": "g",
                "args": dict(event.attrs),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def render_chrome_trace(instrumentation, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(instrumentation), indent=indent,
                      default=str)


def render_json(instrumentation, events: bool = False,
                indent: int | None = 2) -> str:
    """The session snapshot as one sorted JSON document."""
    return json.dumps(
        instrumentation.snapshot(events=events),
        indent=indent,
        sort_keys=True,
        default=str,
    )
