"""Clock normalisation: one time-injection convention for the stack.

Historically the components disagreed — ``ApplicationHost(now=...)``
took a callable, ``SharingService(clock=...)`` took a
:class:`~repro.rtp.clock.SimulatedClock`, ``Participant`` required a
positional ``now``.  Everything now accepts a ``clock`` that may be

* a Clock-like object exposing ``now() -> float`` (e.g.
  :class:`~repro.rtp.clock.SimulatedClock`), or
* a bare ``() -> float`` callable (e.g. ``time.monotonic``).

The legacy ``now=`` keyword is kept as a deprecation shim for one
release; :func:`resolve_clock` merges it and warns.
"""

from __future__ import annotations

import warnings
from typing import Callable

Now = Callable[[], float]


def as_now(clock, default: Now | None = None) -> Now:
    """Normalise a Clock-like or callable into a ``now()`` callable."""
    if clock is None:
        if default is None:
            raise TypeError("a clock is required here")
        return default
    now = getattr(clock, "now", None)
    if callable(now):
        return now
    if callable(clock):
        return clock
    raise TypeError(
        "expected a Clock-like (with .now()) or a () -> float callable, "
        f"got {type(clock).__name__}"
    )


def resolve_clock(
    clock, now, owner: str, default: Now | None = None
) -> Now:
    """Merge the deprecated ``now=`` kwarg into ``clock`` and normalise.

    ``default`` supplies the fallback when neither is given (pass None
    to make the clock mandatory, as ``Participant`` historically did).
    """
    if now is not None:
        warnings.warn(
            f"{owner}(now=...) is deprecated; pass clock= "
            "(a Clock-like or a () -> float callable)",
            DeprecationWarning,
            stacklevel=3,
        )
        if clock is None:
            clock = now
    try:
        return as_now(clock, default)
    except TypeError:
        if clock is None:
            raise TypeError(f"{owner} requires a clock") from None
        raise
