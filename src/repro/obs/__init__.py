"""repro.obs — unified session observability.

One :class:`Instrumentation` object per session: named counters,
gauges and histograms in a :class:`MetricsRegistry`, structured trace
events in a :class:`~repro.stats.trace.SessionTrace`, one
JSON-serialisable :meth:`Instrumentation.snapshot`.  Inject it at
``ApplicationHost`` / ``Participant`` construction; every layer below
(scheduler, encoder, jitter buffer, RTP, RTCP, rate control, channels)
reports through it.  The shared :data:`NULL` instance is the
allocation-free off-switch.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
snapshot schema.  ``python -m repro.obs --selftest`` smoke-checks the
no-op overhead bound.
"""

from .clockutil import as_now, resolve_clock
from .instrumentation import (
    MESSAGE_CLASSES,
    NULL,
    Instrumentation,
    NullInstrumentation,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, render_name

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MESSAGE_CLASSES",
    "MetricsRegistry",
    "NULL",
    "NullInstrumentation",
    "as_now",
    "render_name",
    "resolve_clock",
]
