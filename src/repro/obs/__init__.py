"""repro.obs — unified session observability.

One :class:`Instrumentation` object per session: named counters,
gauges and histograms in a :class:`MetricsRegistry`, structured trace
events in a :class:`~repro.stats.trace.SessionTrace`, one
JSON-serialisable :meth:`Instrumentation.snapshot`.  Inject it at
``ApplicationHost`` / ``Participant`` construction; every layer below
(scheduler, encoder, jitter buffer, RTP, RTCP, rate control, channels)
reports through it.  The shared :data:`NULL` instance is the
allocation-free off-switch.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
snapshot schema.  ``python -m repro.obs --selftest`` smoke-checks the
no-op overhead bound.
"""

from .clockutil import as_now, resolve_clock
from .export import chrome_trace, render_chrome_trace, render_json, render_prometheus
from .flight import DEFAULT_SENTINELS, FlightRecorder
from .instrumentation import (
    MESSAGE_CLASSES,
    NULL,
    Instrumentation,
    NullInstrumentation,
    resolve_obs,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, render_name
from .spans import ABANDON_REASONS, NULL_SPANS, STAGES, SpanTracker, UpdateSpan

__all__ = [
    "ABANDON_REASONS",
    "Counter",
    "DEFAULT_SENTINELS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MESSAGE_CLASSES",
    "MetricsRegistry",
    "NULL",
    "NULL_SPANS",
    "NullInstrumentation",
    "STAGES",
    "SpanTracker",
    "UpdateSpan",
    "as_now",
    "chrome_trace",
    "render_chrome_trace",
    "render_json",
    "render_name",
    "render_prometheus",
    "resolve_clock",
    "resolve_obs",
]
