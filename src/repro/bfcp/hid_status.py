"""HID Status values (Appendix A, Figure 20).

"the AH MAY temporarily block HID events without revoking the floor
control" — the current holder learns the live keyboard/mouse
availability through these 16-bit values in STATUS-INFO.
"""

from __future__ import annotations

import enum


class HidStatus(enum.IntEnum):
    """Figure 20: what the floor holder may currently do."""

    STATE_NOT_ALLOWED = 0
    STATE_KEYBOARD_ALLOWED = 1
    STATE_MOUSE_ALLOWED = 2
    STATE_ALL_ALLOWED = 3

    @property
    def keyboard_allowed(self) -> bool:
        return self in (HidStatus.STATE_KEYBOARD_ALLOWED, HidStatus.STATE_ALL_ALLOWED)

    @property
    def mouse_allowed(self) -> bool:
        return self in (HidStatus.STATE_MOUSE_ALLOWED, HidStatus.STATE_ALL_ALLOWED)

    def allows(self, kind: str) -> bool:
        """``kind`` is "keyboard" or "mouse" (the EventInjector classes)."""
        if kind == "keyboard":
            return self.keyboard_allowed
        if kind == "mouse":
            return self.mouse_allowed
        raise ValueError(f"unknown HID kind: {kind!r}")
