"""Binary Floor Control Protocol subset (RFC 4582 / Appendix A)."""

from .client import FloorControlClient, FloorState
from .hid_status import HidStatus
from .messages import (
    ATTR_FLOOR_ID,
    ATTR_FLOOR_REQUEST_ID,
    ATTR_REQUEST_STATUS,
    ATTR_STATUS_INFO,
    BfcpError,
    BfcpMessage,
    PRIMITIVE_FLOOR_RELEASE,
    PRIMITIVE_FLOOR_REQUEST,
    PRIMITIVE_FLOOR_REQUEST_STATUS,
    STATUS_ACCEPTED,
    STATUS_GRANTED,
    STATUS_NAMES,
    STATUS_RELEASED,
    STATUS_REVOKED,
    floor_release,
    floor_request,
    floor_request_status,
)
from .server import FloorControlServer, FloorRequestRecord

__all__ = [
    "ATTR_FLOOR_ID",
    "ATTR_FLOOR_REQUEST_ID",
    "ATTR_REQUEST_STATUS",
    "ATTR_STATUS_INFO",
    "BfcpError",
    "BfcpMessage",
    "FloorControlClient",
    "FloorControlServer",
    "FloorRequestRecord",
    "FloorState",
    "HidStatus",
    "PRIMITIVE_FLOOR_RELEASE",
    "PRIMITIVE_FLOOR_REQUEST",
    "PRIMITIVE_FLOOR_REQUEST_STATUS",
    "STATUS_ACCEPTED",
    "STATUS_GRANTED",
    "STATUS_NAMES",
    "STATUS_RELEASED",
    "STATUS_REVOKED",
    "floor_release",
    "floor_request",
    "floor_request_status",
]
