"""BFCP message encoding (RFC 4582 subset for Appendix A).

The appendix requires five messages: Floor Request, Floor Release,
Floor Granted, Floor Released and Floor Request Queued.  On the wire
the last three are FloorRequestStatus messages whose REQUEST-STATUS
attribute carries Granted/Released/Accepted; the HID availability of
Figure 20 rides in STATUS-INFO.

Wire format follows RFC 4582: a 12-byte common header (version 1,
primitive, payload length in 4-byte words, conference/transaction/user
IDs) followed by TLV attributes padded to 32-bit boundaries.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.errors import ProtocolError

BFCP_VERSION = 1

#: Hard cap on TLV attributes per message; the appendix's five message
#: types carry at most three.
MAX_ATTRIBUTES = 64

# Primitives (RFC 4582 section 5.1).
PRIMITIVE_FLOOR_REQUEST = 1
PRIMITIVE_FLOOR_RELEASE = 2
PRIMITIVE_FLOOR_REQUEST_STATUS = 4

# Attribute types (RFC 4582 section 5.2).
ATTR_FLOOR_ID = 2
ATTR_FLOOR_REQUEST_ID = 3
ATTR_REQUEST_STATUS = 5
ATTR_STATUS_INFO = 10

# Request status values (RFC 4582 section 5.2.5).
STATUS_PENDING = 1
STATUS_ACCEPTED = 2  # "Floor Request Queued"
STATUS_GRANTED = 3
STATUS_DENIED = 4
STATUS_CANCELLED = 5
STATUS_RELEASED = 6
STATUS_REVOKED = 7

STATUS_NAMES = {
    STATUS_PENDING: "Pending",
    STATUS_ACCEPTED: "Accepted",
    STATUS_GRANTED: "Granted",
    STATUS_DENIED: "Denied",
    STATUS_CANCELLED: "Cancelled",
    STATUS_RELEASED: "Released",
    STATUS_REVOKED: "Revoked",
}

_COMMON = struct.Struct("!BBHIHH")


class BfcpError(ProtocolError):
    """Raised when a BFCP message cannot be parsed or built."""


@dataclass(frozen=True, slots=True)
class Attribute:
    """One TLV attribute; ``data`` excludes the 2-byte TLV header."""

    attr_type: int
    data: bytes
    mandatory: bool = True

    def encode(self) -> bytes:
        if not 0 <= self.attr_type <= 0x7F:
            raise BfcpError(f"attribute type out of range: {self.attr_type}")
        length = 2 + len(self.data)
        if length > 0xFF:
            raise BfcpError("attribute too long")
        first = (self.attr_type << 1) | (1 if self.mandatory else 0)
        out = struct.pack("!BB", first, length) + self.data
        while len(out) % 4 != 0:
            out += b"\x00"
        return out


@dataclass(frozen=True, slots=True)
class BfcpMessage:
    """A decoded BFCP message: header fields plus attribute list."""

    primitive: int
    conference_id: int
    transaction_id: int
    user_id: int
    attributes: tuple[Attribute, ...] = field(default=())

    def encode(self) -> bytes:
        body = b"".join(a.encode() for a in self.attributes)
        if len(body) % 4 != 0:
            raise BfcpError("attribute block must be 32-bit aligned")
        header = _COMMON.pack(
            (BFCP_VERSION << 5),
            self.primitive,
            len(body) // 4,
            self.conference_id,
            self.transaction_id,
            self.user_id,
        )
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "BfcpMessage":
        if len(data) < _COMMON.size:
            raise BfcpError(f"message too short: {len(data)} bytes",
                            reason="truncated")
        first, primitive, length_words, conf, trans, user = _COMMON.unpack_from(data)
        if first >> 5 != BFCP_VERSION:
            raise BfcpError(f"unsupported BFCP version: {first >> 5}",
                            reason="bad_magic")
        end = _COMMON.size + length_words * 4
        if len(data) < end:
            raise BfcpError("message shorter than its payload length",
                            reason="truncated")
        attributes: list[Attribute] = []
        offset = _COMMON.size
        while offset < end:
            if end - offset < 2:
                raise BfcpError("truncated attribute header",
                                reason="truncated")
            if len(attributes) >= MAX_ATTRIBUTES:
                raise BfcpError(f"more than {MAX_ATTRIBUTES} attributes",
                                reason="overflow")
            attr_first = data[offset]
            length = data[offset + 1]
            if length < 2 or offset + length > end:
                raise BfcpError(f"bad attribute length: {length}")
            attributes.append(
                Attribute(
                    attr_type=attr_first >> 1,
                    data=data[offset + 2 : offset + length],
                    mandatory=bool(attr_first & 1),
                )
            )
            offset += length
            while offset % 4 != 0:  # skip padding
                offset += 1
        return cls(primitive, conf, trans, user, tuple(attributes))

    def find(self, attr_type: int) -> Attribute | None:
        for attribute in self.attributes:
            if attribute.attr_type == attr_type:
                return attribute
        return None


# -- Attribute constructors / readers --------------------------------------


def floor_id_attr(floor_id: int) -> Attribute:
    return Attribute(ATTR_FLOOR_ID, struct.pack("!H", floor_id))


def floor_request_id_attr(request_id: int) -> Attribute:
    return Attribute(ATTR_FLOOR_REQUEST_ID, struct.pack("!H", request_id))


def request_status_attr(status: int, queue_position: int = 0) -> Attribute:
    if status not in STATUS_NAMES:
        raise BfcpError(f"unknown request status: {status}")
    if not 0 <= queue_position <= 0xFF:
        raise BfcpError(f"queue position out of range: {queue_position}")
    return Attribute(ATTR_REQUEST_STATUS, struct.pack("!BB", status, queue_position))


def status_info_attr(hid_status: int) -> Attribute:
    """Appendix A: STATUS-INFO carries the 16-bit HID Status value."""
    return Attribute(ATTR_STATUS_INFO, struct.pack("!H", hid_status))


def read_u16(attribute: Attribute) -> int:
    if len(attribute.data) != 2:
        raise BfcpError("expected 2-byte attribute value")
    return struct.unpack("!H", attribute.data)[0]


def read_request_status(attribute: Attribute) -> tuple[int, int]:
    if len(attribute.data) != 2:
        raise BfcpError("REQUEST-STATUS must be 2 bytes")
    return attribute.data[0], attribute.data[1]


# -- Message constructors -----------------------------------------------------


def floor_request(conference_id: int, transaction_id: int, user_id: int,
                  floor_id: int) -> BfcpMessage:
    return BfcpMessage(
        PRIMITIVE_FLOOR_REQUEST, conference_id, transaction_id, user_id,
        (floor_id_attr(floor_id),),
    )


def floor_release(conference_id: int, transaction_id: int, user_id: int,
                  request_id: int) -> BfcpMessage:
    return BfcpMessage(
        PRIMITIVE_FLOOR_RELEASE, conference_id, transaction_id, user_id,
        (floor_request_id_attr(request_id),),
    )


def floor_request_status(
    conference_id: int,
    transaction_id: int,
    user_id: int,
    request_id: int,
    status: int,
    queue_position: int = 0,
    hid_status: int | None = None,
) -> BfcpMessage:
    attributes: list[Attribute] = [
        floor_request_id_attr(request_id),
        request_status_attr(status, queue_position),
    ]
    if hid_status is not None:
        attributes.append(status_info_attr(hid_status))
    return BfcpMessage(
        PRIMITIVE_FLOOR_REQUEST_STATUS,
        conference_id,
        transaction_id,
        user_id,
        tuple(attributes),
    )
