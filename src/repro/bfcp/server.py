"""The AH-side BFCP floor control server (Appendix A).

"BFCP receives floor request and floor release messages from
participants; and then it grants the floor to the appropriate
participant for a period of time while keeping the requests from other
participants in a FIFO queue." (section 4.2)

The floor is the AH's human interface devices.  The server produces
wire messages (FloorRequestStatus) in response to requests, and exposes
:meth:`floor_check` in exactly the shape the
:class:`~repro.sharing.events.EventInjector` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sharing.quarantine import QuarantinePolicy
from .hid_status import HidStatus
from .messages import (
    STATUS_ACCEPTED,
    STATUS_GRANTED,
    STATUS_RELEASED,
    BfcpError,
    BfcpMessage,
    PRIMITIVE_FLOOR_RELEASE,
    PRIMITIVE_FLOOR_REQUEST,
    floor_request_status,
    read_u16,
    ATTR_FLOOR_REQUEST_ID,
)


@dataclass(slots=True)
class FloorRequestRecord:
    request_id: int
    user_id: int
    participant_id: str


@dataclass(slots=True)
class _Outbound:
    """A server-generated message addressed to one participant."""

    participant_id: str
    message: BfcpMessage


class FloorControlServer:
    """Single-floor FIFO floor control for the AH's HIDs."""

    def __init__(
        self,
        conference_id: int = 1,
        floor_id: int = 0,
        grant_duration: float | None = None,
        now: Callable[[], float] | None = None,
        instrumentation=None,
        quarantine: QuarantinePolicy | None = None,
    ) -> None:
        self.conference_id = conference_id
        self.floor_id = floor_id
        self.grant_duration = grant_duration
        self._now = now or (lambda: 0.0)
        #: Malformed BFCP messages count against the sender's rejection
        #: budget; a shared policy (e.g. the AH's) may be passed in so
        #: garbage on any surface trips the same quarantine.
        self.quarantine = quarantine or QuarantinePolicy(
            now=self._now, instrumentation=instrumentation
        )
        self._next_request_id = 1
        self._next_transaction = 1
        self.holder: FloorRequestRecord | None = None
        self.queue: list[FloorRequestRecord] = []
        self.hid_status = HidStatus.STATE_ALL_ALLOWED
        self._granted_at = 0.0
        self.outbound: list[_Outbound] = []
        #: user_id → participant_id as learned from requests.
        self._participants: dict[int, str] = {}

    # -- Wire entry point ------------------------------------------------------

    def handle_message(self, participant_id: str, data: bytes) -> None:
        if self.quarantine.is_quarantined(participant_id):
            return
        try:
            message = BfcpMessage.decode(data)
        except BfcpError as exc:
            self.quarantine.record_rejection(participant_id, "bfcp", exc)
            return
        self._participants[message.user_id] = participant_id
        if message.primitive == PRIMITIVE_FLOOR_REQUEST:
            self.request_floor(participant_id, message.user_id,
                               message.transaction_id)
        elif message.primitive == PRIMITIVE_FLOOR_RELEASE:
            attr = message.find(ATTR_FLOOR_REQUEST_ID)
            if attr is not None:
                self.release_floor(read_u16(attr))

    # -- Operations ---------------------------------------------------------------

    def request_floor(self, participant_id: str, user_id: int,
                      transaction_id: int = 0) -> int:
        """Enqueue a request; grants immediately when the floor is free.

        Returns the FloorRequestID.
        """
        record = FloorRequestRecord(self._next_request_id, user_id, participant_id)
        self._next_request_id += 1
        if self.holder is None:
            self._grant(record, transaction_id)
        else:
            self.queue.append(record)
            # "Floor Request Queued"
            self._emit(
                record.participant_id,
                floor_request_status(
                    self.conference_id,
                    transaction_id,
                    record.user_id,
                    record.request_id,
                    STATUS_ACCEPTED,
                    queue_position=len(self.queue),
                ),
            )
        return record.request_id

    def release_floor(self, request_id: int) -> bool:
        """Handle Floor Release for the holder or a queued request."""
        if self.holder is not None and self.holder.request_id == request_id:
            released = self.holder
            self.holder = None
            self._emit(
                released.participant_id,
                floor_request_status(
                    self.conference_id,
                    self._transaction(),
                    released.user_id,
                    released.request_id,
                    STATUS_RELEASED,
                ),
            )
            self._grant_next()
            return True
        for index, record in enumerate(self.queue):
            if record.request_id == request_id:
                del self.queue[index]
                self._emit(
                    record.participant_id,
                    floor_request_status(
                        self.conference_id,
                        self._transaction(),
                        record.user_id,
                        record.request_id,
                        STATUS_RELEASED,
                    ),
                )
                return True
        return False

    def tick(self) -> None:
        """Expire a timed grant ("for a period of time") and rotate."""
        if (
            self.holder is not None
            and self.grant_duration is not None
            and self._now() - self._granted_at >= self.grant_duration
        ):
            self.release_floor(self.holder.request_id)

    def set_hid_status(self, status: HidStatus) -> None:
        """Change HID availability; re-announces to the current holder.

        "The participant MAY receive several 'Floor Granted' messages
        with different 'HID Status' values."
        """
        self.hid_status = status
        if self.holder is not None:
            self._emit(
                self.holder.participant_id,
                floor_request_status(
                    self.conference_id,
                    self._transaction(),
                    self.holder.user_id,
                    self.holder.request_id,
                    STATUS_GRANTED,
                    hid_status=int(status),
                ),
            )

    # -- EventInjector integration ------------------------------------------------

    def floor_check(self, participant_id: str, kind: str) -> bool:
        """The gate the AH's HIP injector consults per event."""
        if self.holder is None or self.holder.participant_id != participant_id:
            return False
        return self.hid_status.allows(kind)

    # -- Internals -------------------------------------------------------------------

    def _grant(self, record: FloorRequestRecord, transaction_id: int = 0) -> None:
        self.holder = record
        self._granted_at = self._now()
        self._emit(
            record.participant_id,
            floor_request_status(
                self.conference_id,
                transaction_id or self._transaction(),
                record.user_id,
                record.request_id,
                STATUS_GRANTED,
                hid_status=int(self.hid_status),
            ),
        )

    def _grant_next(self) -> None:
        if self.queue:
            self._grant(self.queue.pop(0))

    def _emit(self, participant_id: str, message: BfcpMessage) -> None:
        self.outbound.append(_Outbound(participant_id, message))

    def _transaction(self) -> int:
        value = self._next_transaction
        self._next_transaction = (self._next_transaction % 0xFFFF) + 1
        return value

    def drain_outbound(self) -> list[tuple[str, bytes]]:
        """Encoded (participant_id, message) pairs awaiting delivery."""
        out = [(o.participant_id, o.message.encode()) for o in self.outbound]
        self.outbound.clear()
        return out

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def holder_participant(self) -> str | None:
        return self.holder.participant_id if self.holder else None
