"""Participant-side BFCP client state machine."""

from __future__ import annotations

import enum
from typing import Callable

from .hid_status import HidStatus
from .messages import (
    ATTR_FLOOR_REQUEST_ID,
    ATTR_REQUEST_STATUS,
    ATTR_STATUS_INFO,
    BfcpMessage,
    PRIMITIVE_FLOOR_REQUEST_STATUS,
    STATUS_ACCEPTED,
    STATUS_GRANTED,
    STATUS_RELEASED,
    STATUS_REVOKED,
    floor_release,
    floor_request,
    read_request_status,
    read_u16,
)


class FloorState(enum.Enum):
    IDLE = "idle"
    REQUESTED = "requested"
    QUEUED = "queued"
    HOLDING = "holding"


class FloorControlClient:
    """Requests/releases the AH HID floor and tracks grant state."""

    def __init__(
        self,
        user_id: int,
        conference_id: int = 1,
        floor_id: int = 0,
        send: Callable[[bytes], None] | None = None,
    ) -> None:
        self.user_id = user_id
        self.conference_id = conference_id
        self.floor_id = floor_id
        self._send = send or (lambda _data: None)
        self._next_transaction = 1
        self.state = FloorState.IDLE
        self.request_id: int | None = None
        self.queue_position: int | None = None
        self.hid_status = HidStatus.STATE_NOT_ALLOWED
        self.grants_received = 0

    # -- Actions ---------------------------------------------------------

    def request(self) -> None:
        """Send a Floor Request (no-op while already requesting/holding)."""
        if self.state is not FloorState.IDLE:
            return
        message = floor_request(
            self.conference_id, self._transaction(), self.user_id, self.floor_id
        )
        self.state = FloorState.REQUESTED
        self._send(message.encode())

    def release(self) -> None:
        """Send a Floor Release for our outstanding request."""
        if self.request_id is None:
            return
        message = floor_release(
            self.conference_id, self._transaction(), self.user_id, self.request_id
        )
        self._send(message.encode())

    # -- Inbound -----------------------------------------------------------

    def handle_message(self, data: bytes) -> None:
        message = BfcpMessage.decode(data)
        if message.primitive != PRIMITIVE_FLOOR_REQUEST_STATUS:
            return
        if message.user_id != self.user_id:
            return
        request_attr = message.find(ATTR_FLOOR_REQUEST_ID)
        status_attr = message.find(ATTR_REQUEST_STATUS)
        if request_attr is None or status_attr is None:
            return
        self.request_id = read_u16(request_attr)
        status, position = read_request_status(status_attr)
        if status == STATUS_GRANTED:
            self.state = FloorState.HOLDING
            self.queue_position = None
            self.grants_received += 1
            info = message.find(ATTR_STATUS_INFO)
            if info is not None:
                self.hid_status = HidStatus(read_u16(info))
            else:
                self.hid_status = HidStatus.STATE_ALL_ALLOWED
        elif status == STATUS_ACCEPTED:
            self.state = FloorState.QUEUED
            self.queue_position = position
        elif status in (STATUS_RELEASED, STATUS_REVOKED):
            self.state = FloorState.IDLE
            self.request_id = None
            self.queue_position = None
            self.hid_status = HidStatus.STATE_NOT_ALLOWED

    # -- Queries -----------------------------------------------------------

    @property
    def holding(self) -> bool:
        return self.state is FloorState.HOLDING

    def may_send(self, kind: str) -> bool:
        """Whether sending ``kind`` ("keyboard"/"mouse") events is useful."""
        return self.holding and self.hid_status.allows(kind)

    def _transaction(self) -> int:
        value = self._next_transaction
        self._next_transaction = (self._next_transaction % 0xFFFF) + 1
        return value
