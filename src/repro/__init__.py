"""repro — RTP payload format for application and desktop sharing.

A full-system reproduction of Boyaci & Schulzrinne's application/desktop
sharing protocol (CoNEXT 2007 / draft-boyaci-avt-app-sharing-00):

* :mod:`repro.core` — the remoting and HIP payload formats (the paper's
  contribution), wire-exact.
* :mod:`repro.rtp` — RTP/RTCP substrate (RFC 3550, 4585 feedback,
  4571 TCP framing).
* :mod:`repro.codecs` — from-scratch PNG, a DCT lossy codec, baselines,
  and content-adaptive selection.
* :mod:`repro.surface` — the virtual window system standing in for OS
  screen capture.
* :mod:`repro.apps` — deterministic synthetic applications (workloads).
* :mod:`repro.net` — simulated channels, rate control, real sockets.
* :mod:`repro.sharing` — the Application Host and Participant.
* :mod:`repro.relay` — the cascaded fan-out tier for huge audiences.
* :mod:`repro.bfcp` — floor control (RFC 4582 subset, Appendix A).
* :mod:`repro.sdp` — session description mapping (section 10).

Quickstart::

    from repro import quick_session

    ah, participant, clock = quick_session()
    # ... drive apps on the AH, advance the clock, watch the
    # participant's windows converge to the AH's, pixel for pixel.
"""

from __future__ import annotations

from .rtp.clock import SimulatedClock
from .net.channel import ChannelConfig, duplex_reliable
from .obs import Instrumentation, MetricsRegistry, NULL, NullInstrumentation
from .obs.instrumentation import resolve_obs as _resolve_obs
from .relay import HostedRelay, RelayConfig, RelayNode, RelayTree
from .sharing import host, join
from .sharing.ah import ApplicationHost
from .sharing.config import PointerMode, SharingConfig
from .sharing.participant import Participant
from .sharing.server import SessionServer
from .sharing.service import SharingService
from .sharing.signalling import SignallingBinding
from .sharing.transport import StreamTransport

__version__ = "1.0.0"

__all__ = [
    "ApplicationHost",
    "HostedRelay",
    "Instrumentation",
    "MetricsRegistry",
    "NULL",
    "NullInstrumentation",
    "Participant",
    "PointerMode",
    "RelayConfig",
    "RelayNode",
    "RelayTree",
    "SessionServer",
    "SharingConfig",
    "SharingService",
    "SignallingBinding",
    "SimulatedClock",
    "host",
    "join",
    "quick_session",
    "__version__",
]


def quick_session(
    config: SharingConfig | None = None,
    screen_width: int = 1280,
    screen_height: int = 1024,
    delay: float = 0.01,
    bandwidth_bps: int = 0,
    obs: Instrumentation | None = None,
    instrumentation: Instrumentation | None = None,
) -> tuple[ApplicationHost, Participant, SimulatedClock]:
    """One AH plus one TCP participant over a simulated link.

    The smallest useful session: returns the pair already connected
    (the participant will receive the initial full sync on the next
    ``advance``/``process_incoming`` round) and the shared clock that
    drives the simulation.  Pass an :class:`Instrumentation` as ``obs=``
    to get metrics out of every layer; see ``docs/OBSERVABILITY.md``.
    For a SIP-signalled session use :func:`repro.sharing.host` /
    :func:`repro.sharing.join`; for many concurrent sessions in one
    process use :class:`repro.SessionServer`.
    """
    obs = _resolve_obs(obs, instrumentation, "quick_session", default=None)
    clock = SimulatedClock()
    if obs is not None:
        obs.bind_clock(clock)
    cfg = config or SharingConfig()
    ah = ApplicationHost(
        screen_width=screen_width,
        screen_height=screen_height,
        config=cfg,
        clock=clock,
        obs=obs,
    )
    channel_config = ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps)
    link = duplex_reliable(
        channel_config, clock.now,
        instrumentation=obs,
    )
    ah_transport = StreamTransport(link.forward, link.backward)
    participant_transport = StreamTransport(link.backward, link.forward)
    participant = Participant(
        "participant-1",
        participant_transport,
        clock=clock,
        config=cfg,
        screen_width=screen_width,
        screen_height=screen_height,
        obs=obs,
    )
    ah.add_participant("participant-1", ah_transport)
    participant.join()
    return ah, participant, clock
