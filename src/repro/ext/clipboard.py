"""Clipboard synchronisation — an extension message type.

Section 4.2: "it is often useful to allow copy-and-paste between
applications running on a participant and those running on an AH.
This document does not define any such extensions."  This module
defines one, exactly the way section 9 prescribes: a new remoting
message type registered in the Remoting Message Types subregistry
("Specification Required"), using the common remoting/HIP header.
Participants that do not implement it ignore the unknown type, which
the base :class:`~repro.sharing.participant.Participant` already does.

Wire format (remoting message type 5, AH→participant and, over the HIP
stream with the same type value, participant→AH)::

     0                   1                   2                   3
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |  Msg Type = 5 |   Format      |          Reserved = 0         |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    .                     UTF-8 clipboard content                   .
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

``Format`` 1 = UTF-8 text (the only format defined here).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ProtocolError
from ..core.header import COMMON_HEADER_LEN, CommonHeader
from ..core.registry import MessageTypeRegistry

#: The extension's registered remoting message type value.
MSG_CLIPBOARD_UPDATE = 5
#: Format values for the parameter byte.
FORMAT_UTF8_TEXT = 1


def register(registry: MessageTypeRegistry) -> None:
    """Register the extension per the section 9 policy."""
    registry.register(MSG_CLIPBOARD_UPDATE, "ClipboardUpdate",
                      "this repository (extension example)")


@dataclass(frozen=True, slots=True)
class ClipboardUpdate:
    """A clipboard-content announcement, either direction."""

    text: str
    format: int = FORMAT_UTF8_TEXT

    MESSAGE_TYPE = MSG_CLIPBOARD_UPDATE

    def __post_init__(self) -> None:
        if not 0 <= self.format <= 0xFF:
            raise ProtocolError(f"clipboard format out of range: {self.format}")

    def encode(self) -> bytes:
        header = CommonHeader(self.MESSAGE_TYPE, self.format, 0)
        return header.encode() + self.text.encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "ClipboardUpdate":
        header = CommonHeader.decode(payload)
        if header.message_type != MSG_CLIPBOARD_UPDATE:
            raise ProtocolError(
                f"not a ClipboardUpdate payload: type {header.message_type}"
            )
        if header.parameter != FORMAT_UTF8_TEXT:
            raise ProtocolError(
                f"unsupported clipboard format: {header.parameter}"
            )
        try:
            text = payload[COMMON_HEADER_LEN:].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"clipboard carries invalid UTF-8: {exc}") from exc
        return cls(text, header.parameter)


class ClipboardSync:
    """Bidirectional clipboard state bound to a sharing session.

    AH side: ``push(session, text)`` ships the AH clipboard to one
    destination.  Participant side: install :meth:`participant_handler`
    as an extension handler; received content lands in :attr:`content`.
    """

    def __init__(self) -> None:
        self.content: str = ""
        self.updates_received = 0

    # -- AH → participant ---------------------------------------------------

    def push(self, session, text: str) -> None:
        """Send the AH clipboard over a session's remoting stream."""
        self.content = text
        message = ClipboardUpdate(text)
        scheduler = session.scheduler
        packet = scheduler.encoder.sender.next_packet(message.encode())
        scheduler.transport.send_packet(packet.encode())

    # -- Participant receive hook -------------------------------------------

    def participant_handler(self, payload: bytes, packet) -> bool:
        """Extension handler signature: (payload, rtp_packet) → handled."""
        try:
            update = ClipboardUpdate.decode(payload)
        except ProtocolError:
            return False
        self.content = update.text
        self.updates_received += 1
        return True

    # -- Participant → AH ------------------------------------------------------

    def send_from_participant(self, participant, text: str) -> None:
        """Ship participant clipboard to the AH over the HIP stream."""
        self.content = text
        participant._send_hip(ClipboardUpdate(text).encode())
