"""Protocol extensions, defined via the section 9 registry mechanism.

The base document deliberately leaves extensions (clipboard sync,
participant-side scaling, associated audio) undefined; this package
demonstrates the registration path with a working clipboard extension.
"""

from .clipboard import (
    FORMAT_UTF8_TEXT,
    MSG_CLIPBOARD_UPDATE,
    ClipboardSync,
    ClipboardUpdate,
    register,
)

__all__ = [
    "ClipboardSync",
    "ClipboardUpdate",
    "FORMAT_UTF8_TEXT",
    "MSG_CLIPBOARD_UPDATE",
    "register",
]
