"""RTP-over-TCP framing (RFC 4571).

"Neither TCP nor RTP declares the length of an RTP packet.  Therefore,
RTP framing [RFC4571] is used to split RTP packets within the TCP byte
stream." (section 4.4).  RFC 4571 prepends a 16-bit big-endian length
to each RTP/RTCP packet.
"""

from __future__ import annotations

import struct

from ..core.errors import ProtocolError

_LEN = struct.Struct("!H")
#: RFC 4571 length field is 16 bits.
MAX_FRAME = 0xFFFF


class FramingError(ProtocolError):
    """Raised when a frame cannot be encoded or the stream is corrupt."""


def frame(packet: bytes) -> bytes:
    """Prefix ``packet`` with its RFC 4571 length header."""
    if len(packet) > MAX_FRAME:
        raise FramingError(
            f"packet of {len(packet)} bytes exceeds RFC 4571 16-bit length",
            reason="overflow",
        )
    return _LEN.pack(len(packet)) + packet


def frame_many(packets: list[bytes]) -> bytes:
    """Frame a batch of packets into one contiguous byte string."""
    return b"".join(frame(p) for p in packets)


class StreamDeframer:
    """Incremental RFC 4571 deframer for a TCP byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete packets come out
    in order.  Partial frames are buffered across calls, which is what
    a socket reader needs since TCP preserves no message boundaries.
    """

    def __init__(self, max_buffer: int = 4 * 1024 * 1024) -> None:
        self._buffer = bytearray()
        self.max_buffer = max_buffer

    def feed(self, data: bytes) -> list[bytes]:
        """Append stream bytes; return every now-complete packet."""
        self._buffer.extend(data)
        if len(self._buffer) > self.max_buffer:
            raise FramingError("deframer buffer overflow — corrupt stream?",
                               reason="overflow")
        packets: list[bytes] = []
        while True:
            if len(self._buffer) < 2:
                break
            (length,) = _LEN.unpack_from(self._buffer)
            if len(self._buffer) < 2 + length:
                break
            packets.append(bytes(self._buffer[2 : 2 + length]))
            del self._buffer[: 2 + length]
        return packets

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)

    def reset(self) -> None:
        self._buffer.clear()
