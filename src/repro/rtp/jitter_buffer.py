"""A reordering buffer for UDP arrivals.

"RTP allows the participants to re-order the packets, recognize missing
packets and synchronize application sharing with other media types"
(section 4.2).  The buffer releases packets in sequence order, waiting a
bounded time for stragglers before declaring a loss and moving on —
the hook that triggers NACK requests upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from .packet import RtpPacket
from .sequence import seq_delta, seq_newer

_SEQ_MOD = 1 << 16


@dataclass(slots=True)
class _Slot:
    packet: RtpPacket
    arrival: float


class JitterBuffer:
    """Sequence-ordered release with a bounded reorder/wait window."""

    def __init__(
        self,
        now: Callable[[], float],
        max_wait: float = 0.05,
        capacity: int = 512,
        instrumentation=None,
    ) -> None:
        if max_wait < 0:
            raise ValueError("max_wait cannot be negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._now = as_now(now)
        self.max_wait = max_wait
        self.capacity = capacity
        self._slots: dict[int, _Slot] = {}
        self._next_seq: int | None = None
        #: Packets force-released by capacity pressure, awaiting pop.
        self._overflow: list[RtpPacket] = []
        #: Holes the recovery layer has given up on: released without
        #: waiting and without counting into ``sequences_skipped`` (the
        #: give-up already triggered its own refresh).
        self._abandoned: set[int] = set()
        #: Sequence numbers skipped since the last :meth:`drain_skipped`.
        self._recent_skipped: list[int] = []
        self.packets_dropped_late = 0
        self.sequences_skipped = 0
        self.sequences_abandoned = 0
        self.duplicates = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._obs = obs
        self._c_buffered = obs.counter("jitter.packets_buffered")
        self._c_late = obs.counter("jitter.packets_dropped_late")
        self._c_skipped = obs.counter("jitter.sequences_skipped")
        self._c_abandoned = obs.counter("jitter.sequences_abandoned")
        self._c_duplicates = obs.counter("jitter.duplicates")
        self._g_held = obs.gauge("jitter.held")

    def insert(self, packet: RtpPacket) -> None:
        """Add an arrival; duplicates and already-released seqs drop."""
        seq = packet.sequence_number
        if self._next_seq is not None and not seq_newer(seq, self._next_seq) \
                and seq != self._next_seq:
            self.packets_dropped_late += 1
            self._c_late.inc()
            return
        if seq in self._slots:
            self.duplicates += 1
            self._c_duplicates.inc()
            return  # duplicate
        self._abandoned.discard(seq)  # a given-up packet showed up late
        while len(self._slots) >= self.capacity:
            # Buffer full: give up on the blocking hole and force the
            # run starting at the oldest held packet into the overflow
            # queue so the slot count stays bounded.
            self._skip_hole()
            assert self._next_seq is not None
            while self._next_seq in self._slots:
                self._overflow.append(self._slots.pop(self._next_seq).packet)
                self._next_seq = (self._next_seq + 1) % _SEQ_MOD
        self._slots[seq] = _Slot(packet, self._now())
        self._c_buffered.inc()
        self._g_held.set(len(self._slots) + len(self._overflow))
        if self._next_seq is None:
            self._next_seq = seq

    def pop_ready(self) -> list[RtpPacket]:
        """Release every packet deliverable right now, in order.

        A packet is deliverable when it is the next expected sequence
        number, or when the wait for a missing predecessor has exceeded
        ``max_wait`` (the hole is then skipped and counted).
        """
        out: list[RtpPacket] = []
        if self._overflow:
            out.extend(self._overflow)
            self._overflow.clear()
        while self._slots and self._next_seq is not None:
            slot = self._slots.pop(self._next_seq, None)
            if slot is not None:
                out.append(slot.packet)
                self._next_seq = (self._next_seq + 1) % _SEQ_MOD
                continue
            if self._next_seq in self._abandoned:
                # Recovery gave up on this hole: step past it now.
                self._abandoned.discard(self._next_seq)
                self.sequences_abandoned += 1
                self._c_abandoned.inc()
                if self._obs.enabled:
                    # Flight-recorder sentinel: an update gap released
                    # without recovery.
                    self._obs.event("jitter.abandoned", seq=self._next_seq)
                self._next_seq = (self._next_seq + 1) % _SEQ_MOD
                continue
            # Hole at _next_seq: has the oldest waiter timed out?
            oldest = min(s.arrival for s in self._slots.values())
            if self._now() - oldest >= self.max_wait:
                self._skip_hole()
            else:
                break
        if out:
            self._g_held.set(len(self._slots) + len(self._overflow))
        return out

    def _skip_hole(self) -> None:
        """Advance past the missing packet(s) to the oldest held seq."""
        assert self._next_seq is not None and self._slots
        nearest = min(
            self._slots, key=lambda s: seq_delta(s, self._next_seq) % _SEQ_MOD
        )
        skipped = seq_delta(nearest, self._next_seq)
        if skipped > 0:
            for i in range(skipped):
                seq = (self._next_seq + i) % _SEQ_MOD
                self._abandoned.discard(seq)
                self._recent_skipped.append(seq)
            self.sequences_skipped += skipped
            self._c_skipped.inc(skipped)
        self._next_seq = nearest

    def abandon(self, sequence_numbers) -> None:
        """Give up waiting for ``sequence_numbers`` (recovery exhausted).

        Marked holes release immediately on the next :meth:`pop_ready`
        without the ``max_wait`` timer and without counting into
        ``sequences_skipped`` — the caller already arranged a refresh.
        """
        if self._next_seq is None:
            return
        for seq in sequence_numbers:
            seq %= _SEQ_MOD
            if seq == self._next_seq or seq_newer(seq, self._next_seq):
                self._abandoned.add(seq)

    def drain_skipped(self) -> list[int]:
        """Sequence numbers skipped by timeout/capacity since last call.

        The recovery layer uses this to cancel NACK retry state for
        holes the buffer has already stepped past.
        """
        out = self._recent_skipped
        self._recent_skipped = []
        return out

    @property
    def held(self) -> int:
        return len(self._slots) + len(self._overflow)

    def missing_before_release(self) -> list[int]:
        """Sequence numbers currently blocking in-order release."""
        if self._next_seq is None or not self._slots:
            return []
        nearest = min(
            self._slots, key=lambda s: seq_delta(s, self._next_seq) % _SEQ_MOD
        )
        gap = seq_delta(nearest, self._next_seq)
        return [(self._next_seq + i) % _SEQ_MOD for i in range(max(0, gap))]
