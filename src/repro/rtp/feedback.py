"""RTCP AVPF feedback: PLI and Generic NACK (RFC 4585).

These are the two participant-to-AH control messages the draft defines
(section 5.3):

* **PLI** — "instructs the AH to generate a full screen update of the
  shared region", format per RFC 4585 section 6.3.1.
* **Generic NACK** — "informs the AH about missing RTP packets",
  format per RFC 4585 section 6.2.1, with the PID + BLP (bitmask of
  following lost packets) encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Sequence

from .rtcp import PT_PSFB, PT_RTPFB, RtcpError, _header

#: Feedback message type values (FMT field).
FMT_GENERIC_NACK = 1
FMT_PLI = 1

#: Hard cap on FCI entries per Generic NACK.  One entry covers 17
#: sequence numbers, so 512 entries span more than half the 16-bit
#: sequence space — anything bigger is hostile or corrupt.
MAX_NACK_ENTRIES = 512

_FB_HEADER = struct.Struct("!II")  # sender SSRC, media source SSRC


@dataclass(frozen=True, slots=True)
class PictureLossIndication:
    """RFC 4585 6.3.1 PLI — request a full refresh of the shared region."""

    sender_ssrc: int
    media_ssrc: int

    def encode(self) -> bytes:
        body = _FB_HEADER.pack(self.sender_ssrc, self.media_ssrc)
        return _header(PT_PSFB, FMT_PLI, len(body)) + body


@dataclass(frozen=True, slots=True)
class NackEntry:
    """One FCI entry: packet ID plus bitmask of 16 following losses."""

    pid: int
    blp: int

    def __post_init__(self) -> None:
        if not 0 <= self.pid <= 0xFFFF:
            raise RtcpError(f"NACK PID out of range: {self.pid}")
        if not 0 <= self.blp <= 0xFFFF:
            raise RtcpError(f"NACK BLP out of range: {self.blp}")

    def sequence_numbers(self) -> list[int]:
        """Expand to the explicit list of NACKed sequence numbers."""
        seqs = [self.pid]
        for bit in range(16):
            if self.blp & (1 << bit):
                seqs.append((self.pid + bit + 1) & 0xFFFF)
        return seqs


@dataclass(frozen=True, slots=True)
class GenericNack:
    """RFC 4585 6.2.1 Generic NACK — a batch of missing packet reports."""

    sender_ssrc: int
    media_ssrc: int
    entries: tuple[NackEntry, ...]

    def encode(self) -> bytes:
        if not self.entries:
            raise RtcpError("NACK must carry at least one FCI entry")
        body = _FB_HEADER.pack(self.sender_ssrc, self.media_ssrc)
        for entry in self.entries:
            body += struct.pack("!HH", entry.pid, entry.blp)
        return _header(PT_RTPFB, FMT_GENERIC_NACK, len(body)) + body

    def sequence_numbers(self) -> list[int]:
        out: list[int] = []
        for entry in self.entries:
            out.extend(entry.sequence_numbers())
        return out


def pack_nack_entries(missing: Sequence[int]) -> tuple[NackEntry, ...]:
    """Compress missing sequence numbers into minimal PID+BLP entries.

    Consecutive losses within a 17-packet window share one entry; the
    input order is preserved in the sense that entries come out sorted
    by wraparound-ascending PID.
    """
    if not missing:
        return ()
    remaining = sorted(set(s & 0xFFFF for s in missing))
    # Rotate so the list is ascending from the "oldest" element under
    # wraparound: find the largest gap between consecutive values.
    if len(remaining) > 1:
        gaps = [
            (remaining[(i + 1) % len(remaining)] - remaining[i]) % 0x10000
            for i in range(len(remaining))
        ]
        start = (gaps.index(max(gaps)) + 1) % len(remaining)
        remaining = remaining[start:] + remaining[:start]
    entries: list[NackEntry] = []
    i = 0
    while i < len(remaining):
        pid = remaining[i]
        blp = 0
        j = i + 1
        while j < len(remaining):
            offset = (remaining[j] - pid) % 0x10000
            if 1 <= offset <= 16:
                blp |= 1 << (offset - 1)
                j += 1
            else:
                break
        entries.append(NackEntry(pid, blp))
        i = j
    return tuple(entries)


def nacks_for(sender_ssrc: int, media_ssrc: int,
              missing: Iterable[int]) -> GenericNack | None:
    """Build a Generic NACK for ``missing``, or ``None`` when empty."""
    entries = pack_nack_entries(list(missing))
    if not entries:
        return None
    return GenericNack(sender_ssrc, media_ssrc, entries)


def aggregated_nacks(sender_ssrc: int, media_ssrc: int,
                     missing: Iterable[int]) -> list[GenericNack]:
    """Pack ``missing`` into as few Generic NACKs as the cap allows.

    A relay aggregating feedback from thousands of downstream viewers
    can legitimately exceed :data:`MAX_NACK_ENTRIES` in one report;
    a single oversized NACK would be rejected (and quarantined) at the
    upstream decoder, so the entries are chunked into multiple
    packets, each within the cap.  Returns ``[]`` when empty.
    """
    entries = pack_nack_entries(list(missing))
    return [
        GenericNack(sender_ssrc, media_ssrc,
                    entries[i:i + MAX_NACK_ENTRIES])
        for i in range(0, len(entries), MAX_NACK_ENTRIES)
    ]


def decode_feedback(packet: bytes, pt: int, fmt: int):
    """Decode one feedback packet body (called from rtcp.decode_compound)."""
    if len(packet) < 12:
        raise RtcpError("feedback packet too short", reason="truncated")
    sender_ssrc, media_ssrc = _FB_HEADER.unpack_from(packet, 4)
    if pt == PT_PSFB:
        if fmt != FMT_PLI:
            raise RtcpError(f"unsupported PSFB FMT: {fmt}", reason="bad_magic")
        return PictureLossIndication(sender_ssrc, media_ssrc)
    if pt == PT_RTPFB:
        if fmt != FMT_GENERIC_NACK:
            raise RtcpError(f"unsupported RTPFB FMT: {fmt}", reason="bad_magic")
        fci = packet[12:]
        if len(fci) % 4 != 0 or not fci:
            raise RtcpError("malformed NACK FCI", reason="truncated")
        if len(fci) // 4 > MAX_NACK_ENTRIES:
            raise RtcpError(
                f"NACK carries more than {MAX_NACK_ENTRIES} FCI entries",
                reason="overflow",
            )
        entries = tuple(
            NackEntry(*struct.unpack_from("!HH", fci, i))
            for i in range(0, len(fci), 4)
        )
        return GenericNack(sender_ssrc, media_ssrc, entries)
    raise RtcpError(f"not a feedback packet type: {pt}", reason="bad_magic")
