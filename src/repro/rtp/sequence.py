"""Sequence-number arithmetic and receiver statistics (RFC 3550 A.1/A.8).

UDP participants must recognise missing packets to drive NACK requests
(section 5.3.2) and reordering.  This module provides 16-bit wraparound
comparison, the extended-sequence-number tracker from RFC 3550 Appendix
A.1, loss accounting, and the interarrival jitter estimator of A.8.
"""

from __future__ import annotations

from dataclasses import dataclass

_SEQ_MOD = 1 << 16
#: RFC 3550 recommended constants for the validity/restart heuristics.
MAX_DROPOUT = 3000
MAX_MISORDER = 100


def seq_newer(a: int, b: int) -> bool:
    """True when sequence number ``a`` is newer than ``b`` (mod 2^16).

    At exactly half the sequence space apart the order is undefined by
    RFC 3550; this implementation treats neither side as newer, so the
    relation is deliberately non-total there (pinned by tests).
    """
    return a != b and ((a - b) % _SEQ_MOD) < _SEQ_MOD // 2


def seq_delta(a: int, b: int) -> int:
    """Signed distance from ``b`` to ``a`` under shortest wraparound.

    The ambiguous half-range distance resolves to -2^15 (two's
    complement convention), so ``seq_delta(a, b) == -seq_delta(b, a)``
    holds everywhere *except* at exactly 2^15 apart.
    """
    diff = (a - b) % _SEQ_MOD
    if diff >= _SEQ_MOD // 2:
        diff -= _SEQ_MOD
    return diff


class SequenceExtender:
    """Maps 16-bit sequence numbers onto the extended (unwrapped) axis.

    Loss-recovery state must be keyed by *extended* sequence number:
    after a 16-bit wraparound, packet ``seq & 0xFFFF`` names a
    different packet than one cycle earlier, and keying on the bare
    residue lets stale state alias fresh losses (the RetransmitCache
    replay bug).  The extender anchors on the highest value seen and
    resolves each input to the nearest cycle, so slightly-older
    residues (reordering, retransmissions) extend backwards while
    forward jumps advance the cycle count.
    """

    __slots__ = ("_highest",)

    def __init__(self) -> None:
        self._highest: int | None = None

    @property
    def highest(self) -> int | None:
        """Highest extended sequence number observed so far."""
        return self._highest

    def extend(self, seq: int) -> int:
        """Resolve ``seq`` to an extended sequence number.

        Values above 0xFFFF are taken as already extended and re-anchor
        the extender.  Negative results are clamped to the residue (a
        backwards resolution past zero cannot precede the stream start).
        """
        if seq > 0xFFFF:
            self._highest = max(self._highest or 0, seq)
            return seq
        if self._highest is None:
            self._highest = seq
            return seq
        ext = self._highest + seq_delta(seq, self._highest & 0xFFFF)
        if ext < 0:
            ext += _SEQ_MOD
        if ext > self._highest:
            self._highest = ext
        return ext


@dataclass(slots=True)
class ReceptionStats:
    """Snapshot of a source's reception quality."""

    packets_received: int
    packets_expected: int
    packets_lost: int
    fraction_lost: float
    jitter_seconds: float
    highest_seq: int


class SequenceTracker:
    """Per-source sequence state: extension, loss, and jitter.

    Follows RFC 3550 Appendix A.1 for sequence extension/validation and
    Appendix A.8 for jitter, with the jitter kept in clock-rate units
    internally and reported in seconds.
    """

    def __init__(self, clock_rate: int = 90_000) -> None:
        if clock_rate <= 0:
            raise ValueError("clock rate must be positive")
        self.clock_rate = clock_rate
        self._initialised = False
        self._base_seq = 0
        self._max_seq = 0
        self._cycles = 0
        self._received = 0
        self._jitter = 0.0  # RFC 3550 running jitter estimate, in ticks
        self._last_transit: float | None = None
        self._bad_seq: int | None = None

    # -- Updates ----------------------------------------------------------

    def init_seq(self, seq: int) -> None:
        self._base_seq = seq
        self._max_seq = seq
        self._cycles = 0
        self._received = 0
        self._bad_seq = None
        self._initialised = True

    def update(self, seq: int, rtp_timestamp: int | None = None,
               arrival: float | None = None) -> bool:
        """Record arrival of ``seq``; returns validity per RFC heuristics.

        ``rtp_timestamp`` + ``arrival`` (seconds) additionally update
        the interarrival jitter estimate.
        """
        if not self._initialised:
            self.init_seq(seq)
            self._received = 1
            self._update_jitter(rtp_timestamp, arrival)
            return True

        delta = (seq - self._max_seq) % _SEQ_MOD
        if delta < MAX_DROPOUT:
            if seq < self._max_seq and delta != 0:
                self._cycles += 1  # wrapped
            if delta != 0:
                self._max_seq = seq
        elif delta <= _SEQ_MOD - MAX_MISORDER:
            # Large jump: suspicious.  Accept only if repeated (restart).
            if self._bad_seq is not None and seq == self._bad_seq:
                self.init_seq(seq)
            else:
                self._bad_seq = (seq + 1) % _SEQ_MOD
                return False
        # else: duplicate or reordered within tolerance — count it.
        self._received += 1
        self._update_jitter(rtp_timestamp, arrival)
        return True

    def _update_jitter(self, rtp_timestamp: int | None, arrival: float | None) -> None:
        if rtp_timestamp is None or arrival is None:
            return
        transit = arrival * self.clock_rate - rtp_timestamp
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self._jitter += (d - self._jitter) / 16.0
        self._last_transit = transit

    # -- Reports ----------------------------------------------------------

    @property
    def extended_highest_seq(self) -> int:
        return self._cycles * _SEQ_MOD + self._max_seq

    def stats(self) -> ReceptionStats:
        if not self._initialised:
            return ReceptionStats(0, 0, 0, 0.0, 0.0, 0)
        expected = self.extended_highest_seq - self._base_seq + 1
        lost = max(0, expected - self._received)
        fraction = (lost / expected) if expected > 0 else 0.0
        return ReceptionStats(
            packets_received=self._received,
            packets_expected=expected,
            packets_lost=lost,
            fraction_lost=fraction,
            jitter_seconds=self._jitter / self.clock_rate,
            highest_seq=self._max_seq,
        )


class GapDetector:
    """Tracks holes in the sequence space to drive Generic NACKs.

    Feeds on arriving sequence numbers; :meth:`missing` reports every
    sequence number between the lowest unacknowledged position and the
    highest seen that has not arrived — the set a participant packs
    into NACK FCI entries (section 5.3.2).
    """

    def __init__(self, max_tracked: int = 1024) -> None:
        if not 0 < max_tracked < _SEQ_MOD // 2:
            raise ValueError("max_tracked must be in (0, 2^15)")
        self.max_tracked = max_tracked
        self._seen: set[int] = set()
        self._highest: int | None = None
        self._oldest_back = 0  # distance from highest to oldest packet seen

    def record(self, seq: int) -> None:
        seq %= _SEQ_MOD
        if self._highest is None:
            self._highest = seq
            self._oldest_back = 0
        elif seq_newer(seq, self._highest):
            advance = (seq - self._highest) % _SEQ_MOD
            self._highest = seq
            self._oldest_back = min(
                self._oldest_back + advance, self.max_tracked
            )
        self._seen.add(seq)
        self._trim()

    def _trim(self) -> None:
        assert self._highest is not None
        highest = self._highest
        self._seen = {
            s for s in self._seen
            if (highest - s) % _SEQ_MOD <= self.max_tracked
        }

    def missing(self) -> list[int]:
        """Missing sequence numbers, oldest first, within the window.

        Only gaps *after* the oldest packet ever seen are reported —
        a receiver that joined mid-stream has no claim on history.
        """
        if self._highest is None:
            return []
        out = []
        for back in range(self._oldest_back - 1, 0, -1):
            seq = (self._highest - back) % _SEQ_MOD
            if seq not in self._seen:
                out.append(seq)
        return out

    def acknowledge(self, seq: int) -> None:
        """Mark ``seq`` recovered (e.g. retransmission arrived)."""
        self.record(seq)
