"""RTP/RTCP substrate: RFC 3550 packets, RFC 4585 feedback, RFC 4571 framing."""

from .clock import DEFAULT_CLOCK_RATE, MediaClock, SimulatedClock, monotonic_now
from .feedback import (
    GenericNack,
    NackEntry,
    PictureLossIndication,
    nacks_for,
    pack_nack_entries,
)
from .framing import FramingError, StreamDeframer, frame, frame_many
from .jitter_buffer import JitterBuffer
from .packet import RTP_HEADER_LEN, RtpError, RtpPacket
from .rtcp import (
    Bye,
    ReceiverReport,
    ReportBlock,
    RtcpError,
    SdesChunk,
    SenderReport,
    SourceDescription,
    decode_compound,
    encode_compound,
)
from .sequence import (
    GapDetector,
    ReceptionStats,
    SequenceTracker,
    seq_delta,
    seq_newer,
)
from .session import ReceivedPacket, RtpReceiver, RtpSender, generate_ssrc

__all__ = [
    "Bye",
    "DEFAULT_CLOCK_RATE",
    "FramingError",
    "GapDetector",
    "GenericNack",
    "JitterBuffer",
    "MediaClock",
    "NackEntry",
    "PictureLossIndication",
    "RTP_HEADER_LEN",
    "ReceivedPacket",
    "ReceiverReport",
    "ReceptionStats",
    "ReportBlock",
    "RtcpError",
    "RtpError",
    "RtpPacket",
    "RtpReceiver",
    "RtpSender",
    "SdesChunk",
    "SenderReport",
    "SequenceTracker",
    "SimulatedClock",
    "SourceDescription",
    "StreamDeframer",
    "decode_compound",
    "encode_compound",
    "frame",
    "frame_many",
    "generate_ssrc",
    "monotonic_now",
    "nacks_for",
    "pack_nack_entries",
    "seq_delta",
    "seq_newer",
]
