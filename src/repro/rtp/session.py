"""RTP session state: the send and receive halves of one stream.

:class:`RtpSender` stamps outgoing payloads with sequence numbers and
media-clock timestamps (RFC 3550 rules: random initial sequence number
and timestamp).  :class:`RtpReceiver` validates arrivals, tracks loss
and jitter, and exposes the statistics RTCP reports need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from .clock import DEFAULT_CLOCK_RATE, MediaClock
from .packet import MAX_SEQ, RtpPacket
from .sequence import GapDetector, ReceptionStats, SequenceTracker


def generate_ssrc(rng: random.Random | None = None,
                  taken: set[int] | None = None) -> int:
    """Draw a random SSRC avoiding ``taken`` (collision rule, RFC 3550)."""
    r = rng or random
    while True:
        ssrc = r.randrange(1, 1 << 32)
        if not taken or ssrc not in taken:
            return ssrc


class RtpSender:
    """Builds outgoing RTP packets for one SSRC / payload type."""

    def __init__(
        self,
        payload_type: int,
        ssrc: int | None = None,
        clock: MediaClock | None = None,
        now: Callable[[], float] | None = None,
        rng: random.Random | None = None,
        instrumentation=None,
    ) -> None:
        r = rng or random
        self.payload_type = payload_type
        self.ssrc = ssrc if ssrc is not None else generate_ssrc(r)
        self.clock = clock or MediaClock(rng=r)
        self._now = as_now(now, default=lambda: 0.0)
        # Random initial sequence number per RFC 3550 section 5.1.
        self._next_seq = r.randrange(MAX_SEQ + 1)
        self.packets_sent = 0
        self.octets_sent = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_packets = obs.counter("rtp.packets_sent", pt=payload_type)
        self._c_octets = obs.counter("rtp.octets_sent", pt=payload_type)

    def next_packet(
        self,
        payload: bytes,
        marker: bool = False,
        timestamp: int | None = None,
    ) -> RtpPacket:
        """Stamp ``payload`` into the next packet of the stream.

        ``timestamp`` overrides the clock-derived value; fragments of
        one RegionUpdate must share a timestamp, so the fragmenter
        captures one value and passes it to every fragment.
        """
        if timestamp is None:
            timestamp = self.clock.timestamp_at(self._now())
        packet = RtpPacket(
            payload_type=self.payload_type,
            sequence_number=self._next_seq,
            timestamp=timestamp,
            ssrc=self.ssrc,
            payload=payload,
            marker=marker,
        )
        self._next_seq = (self._next_seq + 1) & MAX_SEQ
        self.packets_sent += 1
        self.octets_sent += len(payload)
        self._c_packets.inc()
        self._c_octets.inc(len(payload))
        return packet

    def current_timestamp(self) -> int:
        """The RTP timestamp corresponding to 'now'."""
        return self.clock.timestamp_at(self._now())


@dataclass(slots=True)
class ReceivedPacket:
    """A validated arrival with its reception metadata."""

    packet: RtpPacket
    arrival_time: float
    valid: bool


class RtpReceiver:
    """Tracks one remote SSRC: validation, loss, jitter, gaps."""

    def __init__(
        self,
        clock_rate: int = DEFAULT_CLOCK_RATE,
        now: Callable[[], float] | None = None,
        nack_window: int = 1024,
        instrumentation=None,
    ) -> None:
        self._now = as_now(now, default=lambda: 0.0)
        self.tracker = SequenceTracker(clock_rate=clock_rate)
        self.gaps = GapDetector(max_tracked=nack_window)
        self.ssrc: int | None = None
        self.packets_received = 0
        self.octets_received = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_packets = obs.counter("rtp.packets_received")
        self._c_octets = obs.counter("rtp.octets_received")
        self._c_invalid = obs.counter("rtp.packets_invalid")

    def receive(self, packet: RtpPacket) -> ReceivedPacket:
        """Validate and account for an arriving packet."""
        if self.ssrc is None:
            self.ssrc = packet.ssrc
        arrival = self._now()
        valid = packet.ssrc == self.ssrc and self.tracker.update(
            packet.sequence_number, packet.timestamp, arrival
        )
        if valid:
            self.packets_received += 1
            self.octets_received += len(packet.payload)
            self.gaps.record(packet.sequence_number)
            self._c_packets.inc()
            self._c_octets.inc(len(packet.payload))
        else:
            self._c_invalid.inc()
        return ReceivedPacket(packet, arrival, valid)

    def missing_sequence_numbers(self) -> list[int]:
        """Holes suitable for a Generic NACK request."""
        return self.gaps.missing()

    def stats(self) -> ReceptionStats:
        return self.tracker.stats()
