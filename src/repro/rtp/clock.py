"""Media clocks.

Both payload formats mandate a 90 kHz RTP timestamp clock whose initial
value is random (sections 5.1.1 and 6.1.1).  :class:`MediaClock`
converts between wall-clock seconds and 32-bit RTP timestamp units with
wraparound, and :class:`SimulatedClock` provides the deterministic time
source the whole simulation stack runs on.
"""

from __future__ import annotations

import random
import time

#: The draft's required timestamp rate for remoting and HIP streams.
DEFAULT_CLOCK_RATE = 90_000
_TS_MODULUS = 1 << 32


class SimulatedClock:
    """A manually advanced wall clock, in float seconds.

    Every latency-sensitive component takes a ``now()`` callable;
    experiments inject one of these so results are deterministic and
    independent of host load.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds

    def __call__(self) -> float:
        return self._now


class MediaClock:
    """Maps wall-clock seconds to RTP timestamp units (mod 2^32)."""

    def __init__(
        self,
        rate: int = DEFAULT_CLOCK_RATE,
        origin: float = 0.0,
        initial_timestamp: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("clock rate must be positive")
        self.rate = rate
        self.origin = origin
        if initial_timestamp is None:
            # "the initial value of the timestamp MUST be random"
            initial_timestamp = (rng or random).randrange(_TS_MODULUS)
        if not 0 <= initial_timestamp < _TS_MODULUS:
            raise ValueError("initial timestamp out of u32 range")
        self.initial_timestamp = initial_timestamp

    def timestamp_at(self, now: float) -> int:
        """RTP timestamp for wall-clock time ``now`` (seconds)."""
        elapsed = now - self.origin
        ticks = int(round(elapsed * self.rate))
        return (self.initial_timestamp + ticks) % _TS_MODULUS

    def seconds_between(self, ts_a: int, ts_b: int) -> float:
        """Signed seconds from timestamp ``ts_a`` to ``ts_b``.

        Uses shortest-path wraparound interpretation, valid when the
        true gap is below ~2^31 ticks (~6.6 hours at 90 kHz).
        """
        diff = (ts_b - ts_a) % _TS_MODULUS
        if diff >= _TS_MODULUS // 2:
            diff -= _TS_MODULUS
        return diff / self.rate


def monotonic_now() -> float:
    """Real-time ``now()`` source for live (socket) operation."""
    return time.monotonic()
