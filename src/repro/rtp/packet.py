"""RTP fixed header and packet encode/decode (RFC 3550 section 5.1).

Both the remoting and HIP payload formats ride on standard RTP packets;
the draft uses the header exactly as RFC 3550 specifies, with the marker
bit carrying fragmentation state for RegionUpdate (Table 2) and the
timestamp on a 90 kHz clock.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.errors import ProtocolError

RTP_VERSION = 2
#: Fixed header length without CSRCs.
RTP_HEADER_LEN = 12
MAX_SEQ = 0xFFFF
MAX_TS = 0xFFFF_FFFF
MAX_SSRC = 0xFFFF_FFFF
MAX_PT = 0x7F
MAX_CSRC_COUNT = 15

_HEADER = struct.Struct("!BBHII")


class RtpError(ProtocolError):
    """Raised when an RTP packet cannot be parsed or built."""


@dataclass(frozen=True, slots=True)
class RtpPacket:
    """One RTP packet: fixed header fields plus opaque payload bytes."""

    payload_type: int
    sequence_number: int
    timestamp: int
    ssrc: int
    payload: bytes = b""
    marker: bool = False
    csrcs: tuple[int, ...] = field(default=())
    padding: bool = False
    extension: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= MAX_PT:
            raise RtpError(f"payload type out of range: {self.payload_type}")
        if not 0 <= self.sequence_number <= MAX_SEQ:
            raise RtpError(f"sequence number out of range: {self.sequence_number}")
        if not 0 <= self.timestamp <= MAX_TS:
            raise RtpError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc <= MAX_SSRC:
            raise RtpError(f"ssrc out of range: {self.ssrc}")
        if len(self.csrcs) > MAX_CSRC_COUNT:
            raise RtpError(f"too many CSRCs: {len(self.csrcs)}")
        for csrc in self.csrcs:
            if not 0 <= csrc <= MAX_SSRC:
                raise RtpError(f"csrc out of range: {csrc}")

    # -- Wire format ----------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to network byte order."""
        first = (
            (RTP_VERSION << 6)
            | (0x20 if self.padding else 0)
            | (0x10 if self.extension else 0)
            | len(self.csrcs)
        )
        second = (0x80 if self.marker else 0) | self.payload_type
        header = _HEADER.pack(
            first, second, self.sequence_number, self.timestamp, self.ssrc
        )
        csrc_bytes = b"".join(struct.pack("!I", c) for c in self.csrcs)
        return header + csrc_bytes + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "RtpPacket":
        """Parse a packet; raises :class:`RtpError` on malformed input."""
        if len(data) < RTP_HEADER_LEN:
            raise RtpError(f"packet too short: {len(data)} bytes",
                           reason="truncated")
        first, second, seq, ts, ssrc = _HEADER.unpack_from(data)
        version = first >> 6
        if version != RTP_VERSION:
            raise RtpError(f"unsupported RTP version: {version}",
                           reason="bad_magic")
        padding = bool(first & 0x20)
        extension = bool(first & 0x10)
        csrc_count = first & 0x0F
        marker = bool(second & 0x80)
        payload_type = second & 0x7F
        offset = RTP_HEADER_LEN
        if len(data) < offset + 4 * csrc_count:
            raise RtpError("packet truncated inside CSRC list",
                           reason="truncated")
        csrcs = tuple(
            struct.unpack_from("!I", data, offset + 4 * i)[0]
            for i in range(csrc_count)
        )
        offset += 4 * csrc_count
        if extension:
            if len(data) < offset + 4:
                raise RtpError("packet truncated inside extension header",
                               reason="truncated")
            ext_len_words = struct.unpack_from("!H", data, offset + 2)[0]
            offset += 4 + 4 * ext_len_words
            if len(data) < offset:
                raise RtpError("packet truncated inside extension body",
                               reason="truncated")
        payload = data[offset:]
        if padding:
            if not payload:
                raise RtpError("padding bit set but no payload",
                               reason="truncated")
            pad_len = payload[-1]
            if pad_len == 0 or pad_len > len(payload):
                raise RtpError(f"invalid padding length: {pad_len}",
                               reason="semantic")
            payload = payload[:-pad_len]
        return cls(
            payload_type=payload_type,
            sequence_number=seq,
            timestamp=ts,
            ssrc=ssrc,
            payload=payload,
            marker=marker,
            csrcs=csrcs,
            padding=padding,
            extension=extension,
        )

    @property
    def header_length(self) -> int:
        return RTP_HEADER_LEN + 4 * len(self.csrcs)

    def __len__(self) -> int:
        return self.header_length + len(self.payload)
