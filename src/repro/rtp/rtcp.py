"""RTCP packets (RFC 3550 section 6): SR, RR, SDES, BYE, and compounds.

The sharing protocol's control channel is plain RTCP; the AVPF feedback
messages the draft actually names (PLI, Generic NACK) live in
:mod:`repro.rtp.feedback` and share this module's framing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.errors import ProtocolError

RTCP_VERSION = 2

#: Hard cap on packets inside one compound datagram; a datagram is at
#: most 64 KiB so this only rejects pathological 4-byte-packet floods.
MAX_COMPOUND_PACKETS = 64
#: Hard cap on SDES items per chunk (RFC 3550 defines 8 item types).
MAX_SDES_ITEMS = 32

PT_SR = 200
PT_RR = 201
PT_SDES = 202
PT_BYE = 203
PT_APP = 204
PT_RTPFB = 205  # transport-layer feedback (NACK)
PT_PSFB = 206  # payload-specific feedback (PLI)

SDES_CNAME = 1
SDES_NAME = 2
SDES_TOOL = 6


class RtcpError(ProtocolError):
    """Raised when an RTCP packet cannot be parsed or built."""


@dataclass(frozen=True, slots=True)
class ReportBlock:
    """One reception report block (RFC 3550 section 6.4.1)."""

    ssrc: int
    fraction_lost: int  # 0..255, fixed point /256
    cumulative_lost: int  # 24-bit signed, clamped here to 0..2^24-1
    extended_highest_seq: int
    jitter: int
    last_sr: int
    delay_since_last_sr: int

    _STRUCT = struct.Struct("!IIIIII")

    def encode(self) -> bytes:
        if not 0 <= self.fraction_lost <= 0xFF:
            raise RtcpError("fraction_lost out of range")
        if not 0 <= self.cumulative_lost <= 0xFF_FFFF:
            raise RtcpError("cumulative_lost out of range")
        word2 = (self.fraction_lost << 24) | self.cumulative_lost
        return self._STRUCT.pack(
            self.ssrc,
            word2,
            self.extended_highest_seq & 0xFFFF_FFFF,
            self.jitter & 0xFFFF_FFFF,
            self.last_sr & 0xFFFF_FFFF,
            self.delay_since_last_sr & 0xFFFF_FFFF,
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "ReportBlock":
        if len(data) < offset + cls._STRUCT.size:
            raise RtcpError("truncated report block", reason="truncated")
        ssrc, word2, ehsn, jitter, lsr, dlsr = cls._STRUCT.unpack_from(
            data, offset
        )
        return cls(
            ssrc=ssrc,
            fraction_lost=word2 >> 24,
            cumulative_lost=word2 & 0xFF_FFFF,
            extended_highest_seq=ehsn,
            jitter=jitter,
            last_sr=lsr,
            delay_since_last_sr=dlsr,
        )

    SIZE = 24


def _header(packet_type: int, count: int, body_len: int) -> bytes:
    """RTCP common header; ``body_len`` is bytes after the header."""
    if body_len % 4 != 0:
        raise RtcpError(f"RTCP body not 32-bit aligned: {body_len}")
    # The RTCP length field is the packet length in 32-bit words minus
    # one; the 4-byte common header is that minus'd word.
    length_words = body_len // 4
    return struct.pack(
        "!BBH", (RTCP_VERSION << 6) | (count & 0x1F), packet_type, length_words
    )


def _parse_header(data: bytes, offset: int) -> tuple[int, int, int]:
    """Returns (count-or-subtype, packet_type, total_packet_bytes)."""
    if len(data) < offset + 4:
        raise RtcpError("truncated RTCP header", reason="truncated")
    first, pt, length_words = struct.unpack_from("!BBH", data, offset)
    if first >> 6 != RTCP_VERSION:
        raise RtcpError(f"bad RTCP version: {first >> 6}", reason="bad_magic")
    total = (length_words + 1) * 4
    if len(data) < offset + total:
        raise RtcpError("RTCP packet shorter than its length field",
                        reason="truncated")
    return first & 0x1F, pt, total


def _require(data: bytes, offset: int, end: int, needed: int,
             what: str) -> None:
    """Bounds guard: ``needed`` bytes must fit inside [offset, end)."""
    if offset + needed > end or offset + needed > len(data):
        raise RtcpError(f"truncated {what}", reason="truncated")


@dataclass(frozen=True, slots=True)
class SenderReport:
    """RTCP Sender Report (SR)."""

    ssrc: int
    ntp_timestamp: int  # 64-bit NTP format
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    reports: tuple[ReportBlock, ...] = ()

    def encode(self) -> bytes:
        body = struct.pack(
            "!IQIII",
            self.ssrc,
            self.ntp_timestamp & 0xFFFF_FFFF_FFFF_FFFF,
            self.rtp_timestamp & 0xFFFF_FFFF,
            self.packet_count & 0xFFFF_FFFF,
            self.octet_count & 0xFFFF_FFFF,
        )
        body += b"".join(r.encode() for r in self.reports)
        return _header(PT_SR, len(self.reports), len(body)) + body

    @classmethod
    def decode_body(cls, data: bytes, offset: int, count: int,
                    end: int | None = None) -> "SenderReport":
        if end is None:
            end = len(data)
        _require(data, offset, end, 24 + count * ReportBlock.SIZE,
                 "sender report")
        ssrc, ntp, rtp_ts, pkts, octets = struct.unpack_from("!IQIII", data, offset)
        offset += 24
        reports = tuple(
            ReportBlock.decode(data, offset + i * ReportBlock.SIZE)
            for i in range(count)
        )
        return cls(ssrc, ntp, rtp_ts, pkts, octets, reports)


@dataclass(frozen=True, slots=True)
class ReceiverReport:
    """RTCP Receiver Report (RR)."""

    ssrc: int
    reports: tuple[ReportBlock, ...] = ()

    def encode(self) -> bytes:
        body = struct.pack("!I", self.ssrc)
        body += b"".join(r.encode() for r in self.reports)
        return _header(PT_RR, len(self.reports), len(body)) + body

    @classmethod
    def decode_body(cls, data: bytes, offset: int, count: int,
                    end: int | None = None) -> "ReceiverReport":
        if end is None:
            end = len(data)
        _require(data, offset, end, 4 + count * ReportBlock.SIZE,
                 "receiver report")
        (ssrc,) = struct.unpack_from("!I", data, offset)
        offset += 4
        reports = tuple(
            ReportBlock.decode(data, offset + i * ReportBlock.SIZE)
            for i in range(count)
        )
        return cls(ssrc, reports)


@dataclass(frozen=True, slots=True)
class SdesChunk:
    ssrc: int
    items: tuple[tuple[int, str], ...]  # (type, value)


@dataclass(frozen=True, slots=True)
class SourceDescription:
    """RTCP SDES packet carrying CNAME and friends."""

    chunks: tuple[SdesChunk, ...]

    def encode(self) -> bytes:
        body = b""
        for chunk in self.chunks:
            part = struct.pack("!I", chunk.ssrc)
            for item_type, value in chunk.items:
                raw = value.encode("utf-8")
                if len(raw) > 255:
                    raise RtcpError("SDES item longer than 255 bytes")
                part += struct.pack("!BB", item_type, len(raw)) + raw
            part += b"\x00"  # end of item list
            while len(part) % 4 != 0:
                part += b"\x00"
            body += part
        return _header(PT_SDES, len(self.chunks), len(body)) + body

    @classmethod
    def decode_body(cls, data: bytes, offset: int, count: int,
                    end: int) -> "SourceDescription":
        chunks = []
        for _ in range(count):
            _require(data, offset, end, 4, "SDES chunk SSRC")
            (ssrc,) = struct.unpack_from("!I", data, offset)
            offset += 4
            items = []
            while offset < end:
                item_type = data[offset]
                offset += 1
                if item_type == 0:
                    # Pad to the next 32-bit boundary.
                    while offset % 4 != 0:
                        offset += 1
                    break
                if len(items) >= MAX_SDES_ITEMS:
                    raise RtcpError("too many SDES items", reason="overflow")
                _require(data, offset, end, 1, "SDES item length")
                length = data[offset]
                offset += 1
                _require(data, offset, end, length, "SDES item value")
                try:
                    value = data[offset : offset + length].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise RtcpError(
                        f"SDES item carries invalid UTF-8: {exc}",
                        reason="semantic",
                    ) from exc
                offset += length
                items.append((item_type, value))
            chunks.append(SdesChunk(ssrc, tuple(items)))
        return cls(tuple(chunks))


@dataclass(frozen=True, slots=True)
class Bye:
    """RTCP BYE packet."""

    ssrcs: tuple[int, ...]
    reason: str = ""

    def encode(self) -> bytes:
        body = b"".join(struct.pack("!I", s) for s in self.ssrcs)
        if self.reason:
            raw = self.reason.encode("utf-8")
            if len(raw) > 255:
                raise RtcpError("BYE reason too long")
            body += struct.pack("!B", len(raw)) + raw
            while len(body) % 4 != 0:
                body += b"\x00"
        return _header(PT_BYE, len(self.ssrcs), len(body)) + body

    @classmethod
    def decode_body(cls, data: bytes, offset: int, count: int,
                    end: int) -> "Bye":
        _require(data, offset, end, 4 * count, "BYE SSRC list")
        ssrcs = tuple(
            struct.unpack_from("!I", data, offset + 4 * i)[0] for i in range(count)
        )
        offset += 4 * count
        reason = ""
        if offset < end:
            length = data[offset]
            _require(data, offset + 1, end, length, "BYE reason")
            try:
                reason = data[offset + 1 : offset + 1 + length].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise RtcpError(
                    f"BYE reason carries invalid UTF-8: {exc}",
                    reason="semantic",
                ) from exc
        return cls(ssrcs, reason)


RtcpPacket = object  # narrative alias; concrete classes share encode()


def decode_compound(data: bytes) -> list[object]:
    """Parse a compound RTCP datagram into its constituent packets.

    Feedback packets (PT 205/206) are delegated to
    :func:`repro.rtp.feedback.decode_feedback`.
    """
    from . import feedback  # local import to avoid a cycle

    packets: list[object] = []
    offset = 0
    while offset < len(data):
        if len(packets) >= MAX_COMPOUND_PACKETS:
            raise RtcpError(
                f"compound datagram exceeds {MAX_COMPOUND_PACKETS} packets",
                reason="overflow",
            )
        count, pt, total = _parse_header(data, offset)
        body = offset + 4
        end = offset + total
        if pt == PT_SR:
            packets.append(SenderReport.decode_body(data, body, count, end))
        elif pt == PT_RR:
            packets.append(ReceiverReport.decode_body(data, body, count, end))
        elif pt == PT_SDES:
            packets.append(SourceDescription.decode_body(data, body, count, end))
        elif pt == PT_BYE:
            packets.append(Bye.decode_body(data, body, count, end))
        elif pt in (PT_RTPFB, PT_PSFB):
            packets.append(feedback.decode_feedback(data[offset:end], pt, count))
        else:
            raise RtcpError(f"unknown RTCP packet type: {pt}",
                            reason="bad_magic")
        offset = end
    return packets


def encode_compound(packets: list) -> bytes:
    """Concatenate already-encodable RTCP packets into one datagram."""
    return b"".join(p.encode() for p in packets)
