"""Periodic RTCP sender/receiver reports (RFC 3550 section 6).

The draft's control messages (PLI/NACK) ride RTCP; a conforming
endpoint also emits periodic SR/RR so peers can estimate loss, jitter
and round-trip time.  :class:`RtcpReporter` builds compound packets
(SR-or-RR first, then SDES CNAME, per the compound rules) on the
standard randomised interval.
"""

from __future__ import annotations

import random
from typing import Callable

from ..obs.clockutil import as_now
from ..obs.instrumentation import NULL
from .rtcp import (
    ReceiverReport,
    ReportBlock,
    SdesChunk,
    SenderReport,
    SourceDescription,
    encode_compound,
)
from .session import RtpReceiver, RtpSender

#: RFC 3550 recommends a 5 s nominal reporting interval for small
#: sessions, randomised to 0.5-1.5x to avoid synchronisation.
DEFAULT_INTERVAL = 5.0

#: Seconds ↔ NTP 64-bit fixed point.
_NTP_EPOCH_OFFSET = 2_208_988_800


def to_ntp(seconds: float) -> int:
    """Float seconds (unix-ish) → 64-bit NTP timestamp."""
    whole = int(seconds) + _NTP_EPOCH_OFFSET
    frac = int((seconds - int(seconds)) * (1 << 32))
    return ((whole & 0xFFFF_FFFF) << 32) | (frac & 0xFFFF_FFFF)


def from_ntp(ntp: int) -> float:
    """64-bit NTP timestamp → float seconds (inverse of :func:`to_ntp`)."""
    whole = (ntp >> 32) & 0xFFFF_FFFF
    frac = ntp & 0xFFFF_FFFF
    return whole - _NTP_EPOCH_OFFSET + frac / (1 << 32)


def middle_32(ntp: int) -> int:
    """The middle 32 bits of an NTP timestamp (the LSR field)."""
    return (ntp >> 16) & 0xFFFF_FFFF


class RtcpReporter:
    """Schedules and builds compound RTCP reports for one endpoint.

    Give it the local :class:`RtpSender` (None for a receive-only
    endpoint) and the :class:`RtpReceiver` tracking the remote stream
    (None for send-only).  Call :meth:`poll` regularly; it returns an
    encoded compound packet when a report is due.
    """

    def __init__(
        self,
        now: Callable[[], float],
        sender: RtpSender | None = None,
        receiver: RtpReceiver | None = None,
        cname: str = "repro@localhost",
        interval: float = DEFAULT_INTERVAL,
        rng: random.Random | None = None,
        instrumentation=None,
    ) -> None:
        if sender is None and receiver is None:
            raise ValueError("reporter needs a sender and/or a receiver")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._now = as_now(now)
        self.sender = sender
        self.receiver = receiver
        self.cname = cname
        self.interval = interval
        self._rng = rng or random.Random()
        self._next_due = self._now() + self._draw_interval()
        self._last_expected = 0
        self._last_received = 0
        self._last_sr_ntp: int | None = None
        self._last_sr_arrival: float | None = None
        self.reports_sent = 0
        obs = instrumentation if instrumentation is not None else NULL
        self._c_reports = obs.counter("rtcp.reports_sent")

    def _draw_interval(self) -> float:
        return self.interval * self._rng.uniform(0.5, 1.5)

    @property
    def local_ssrc(self) -> int:
        if self.sender is not None:
            return self.sender.ssrc
        assert self.receiver is not None
        return self.receiver.ssrc or 0

    # -- Inbound SR tracking (for LSR/DLSR) ----------------------------------

    def saw_sender_report(self, report: SenderReport) -> None:
        """Record an incoming SR so our RRs can carry LSR/DLSR."""
        self._last_sr_ntp = report.ntp_timestamp
        self._last_sr_arrival = self._now()

    # -- Report generation -----------------------------------------------------

    def poll(self) -> bytes | None:
        """An encoded compound RTCP packet when due, else None."""
        now = self._now()
        if now < self._next_due:
            return None
        self._next_due = now + self._draw_interval()
        self.reports_sent += 1
        self._c_reports.inc()
        return self.build_compound()

    def build_compound(self) -> bytes:
        """Force-build a compound report right now."""
        blocks = self._report_blocks()
        packets: list = []
        if self.sender is not None and self.sender.packets_sent > 0:
            now = self._now()
            packets.append(
                SenderReport(
                    ssrc=self.sender.ssrc,
                    ntp_timestamp=to_ntp(now),
                    rtp_timestamp=self.sender.current_timestamp(),
                    packet_count=self.sender.packets_sent,
                    octet_count=self.sender.octets_sent,
                    reports=blocks,
                )
            )
        else:
            packets.append(ReceiverReport(ssrc=self.local_ssrc, reports=blocks))
        packets.append(
            SourceDescription(
                (SdesChunk(self.local_ssrc, ((1, self.cname),)),)
            )
        )
        return encode_compound(packets)

    def _report_blocks(self) -> tuple[ReportBlock, ...]:
        if self.receiver is None or self.receiver.ssrc is None:
            return ()
        stats = self.receiver.stats()
        expected_interval = stats.packets_expected - self._last_expected
        received_interval = stats.packets_received - self._last_received
        self._last_expected = stats.packets_expected
        self._last_received = stats.packets_received
        lost_interval = max(0, expected_interval - received_interval)
        fraction = 0
        if expected_interval > 0:
            fraction = min(255, (lost_interval * 256) // expected_interval)
        lsr = 0
        dlsr = 0
        if self._last_sr_ntp is not None and self._last_sr_arrival is not None:
            lsr = middle_32(self._last_sr_ntp)
            dlsr = int((self._now() - self._last_sr_arrival) * 65536)
        tracker = self.receiver.tracker
        return (
            ReportBlock(
                ssrc=self.receiver.ssrc,
                fraction_lost=fraction,
                cumulative_lost=min(0xFF_FFFF, stats.packets_lost),
                extended_highest_seq=tracker.extended_highest_seq,
                jitter=int(stats.jitter_seconds * tracker.clock_rate),
                last_sr=lsr,
                delay_since_last_sr=dlsr,
            ),
        )
