"""Relays as first-class hosted endpoints in the :class:`SessionServer`.

A :class:`HostedRelay` is what a *relay* join code resolves to: a
:class:`~repro.relay.node.RelayNode` hanging under a hosted session's
AH (or under another hosted relay), its own asyncio pump task, and the
leaf participants joined through it.  It quacks like a
:class:`~repro.sharing.server.session.HostedSession` where the server
cares — ``code``, ``state``, ``_tasks``, ``close(reason=...)``,
``closed_event``, ``on_close``, ``snapshot()`` — so the registry,
``stop()`` and introspection paths treat both uniformly.

Relays are **media-plane** endpoints: joining through one wires RTP
directly (no SIP handshake — signalling stays at the root session's
front door), which is exactly the cascade model: the rendezvous
negotiates once, then the tree scales distribution.
"""

from __future__ import annotations

import asyncio
import random

from ..net.channel import ChannelConfig
from ..obs.instrumentation import NULL
from ..sharing.participant import Participant
from ..sharing.server.errors import DuplicateParticipant, SessionClosed
from ..sharing.server.session import HostedSession, SessionState
from .node import RelayNode
from .tree import duplex_transport_pair


class HostedRelay:
    """A relay node + pump task + joined viewers behind one join code."""

    def __init__(
        self,
        code: str,
        parent,
        relay: RelayNode,
        clock,
        detach,
        obs=None,
        tick: float = 0.02,
        close_when_empty: bool = False,
        channel_config: ChannelConfig | None = None,
        rng: random.Random | None = None,
        supervisor=None,
    ) -> None:
        self.code = code
        #: Optional :class:`~repro.health.supervisor.TaskSupervisor`
        #: wrapping the pump in a crash-restart loop.
        self.supervisor = supervisor
        #: The :class:`HostedSession` or :class:`HostedRelay` upstream.
        self.parent = parent
        self.relay = relay
        self.clock = clock
        #: Unhooks the relay from its upstream on close.
        self._detach = detach
        self.obs = (obs if obs is not None else NULL).scoped(session=code)
        self.tick = tick
        self.close_when_empty = close_when_empty
        self.channel_config = channel_config or ChannelConfig(delay=0.01)
        self._rng = rng or random.Random(hash(code) & 0xFFFF)
        self.state = SessionState.OPEN
        self.created_at = clock.now()
        self.viewers: dict[str, Participant] = {}
        self._had_viewer = False
        self._tasks: list[asyncio.Task] = []
        self.closed_event = asyncio.Event()
        self.on_close = None  # set by the server: callback(code)

    # -- Viewer lifecycle ---------------------------------------------------

    def join(
        self,
        name: str,
        channel_config: ChannelConfig | None = None,
        rate_bps: int | None = None,
        **participant_kwargs,
    ) -> Participant:
        """Wire one viewer's media path through this relay.

        The participant's join PLI goes to the relay; the relay's PLI
        valve turns a burst of joiners into at most one upstream full
        refresh per ``pli_min_interval``.
        """
        if self.state is not SessionState.OPEN:
            raise SessionClosed(self.code)
        if name in self.viewers:
            raise DuplicateParticipant(self.code, name)
        cfg = channel_config or self.channel_config
        relay_side, viewer_side = duplex_transport_pair(
            cfg, self.clock, obs=self.obs
        )
        self.relay.add_downstream(name, relay_side, rate_bps=rate_bps)
        participant = Participant(
            name, viewer_side, clock=self.clock, obs=self.obs,
            rng=random.Random(self._rng.randrange(1 << 30)),
            **participant_kwargs,
        )
        participant.join()
        self.viewers[name] = participant
        self._had_viewer = True
        if self.obs.enabled:
            self.obs.event("server.relay_join", relay=self.code, peer=name)
        return participant

    def leave(self, name: str) -> None:
        """Drop one viewer; idempotent."""
        if self.viewers.pop(name, None) is None:
            return
        self.relay.remove_downstream(name)
        if (
            self.close_when_empty
            and self._had_viewer
            and not self.viewers
            and self.state is SessionState.OPEN
        ):
            self.close(reason="empty")

    @property
    def participant_count(self) -> int:
        return len(self.viewers)

    # -- The pump task ------------------------------------------------------

    def start(self, *, realtime: bool = False) -> list[asyncio.Task]:
        if self._tasks:
            raise RuntimeError(f"relay {self.code} already started")
        name = f"relay-{self.code}-pump"
        if self.supervisor is not None:
            self._tasks = [
                self.supervisor.supervise(
                    lambda: self._pump(realtime), name,
                    on_give_up=lambda exc: self.close(
                        reason="supervisor_give_up"
                    ),
                )
            ]
        else:
            self._tasks = [
                asyncio.create_task(self._pump(realtime), name=name),
            ]
        return self._tasks

    async def _pump(self, realtime: bool) -> None:
        while self.state is SessionState.OPEN:
            if self.parent.state is not SessionState.OPEN:
                self.close(reason="parent_closed")
                break
            self.relay.pump()
            for viewer in list(self.viewers.values()):
                viewer.process_incoming()
            if realtime:
                await asyncio.sleep(self.tick)
            else:
                await asyncio.sleep(0)

    # -- Teardown -----------------------------------------------------------

    def close(self, reason: str = "closed") -> None:
        """Stop the pump, detach upstream, unregister.  Idempotent."""
        if self.state is not SessionState.OPEN:
            return
        self.state = SessionState.CLOSING
        try:
            self._detach()
        except Exception:
            pass  # upstream may already be torn down
        self.viewers.clear()
        self.state = SessionState.CLOSED
        if self.obs.enabled:
            self.obs.event("server.relay_closed", reason=reason)
        self.closed_event.set()
        for task in self._tasks:
            if task is not asyncio.current_task():
                task.cancel()
        self._tasks = []
        if self.on_close is not None:
            self.on_close(self.code)

    def snapshot(self) -> dict:
        """One JSON-friendly row for ``SessionServer.relays()``."""
        return {
            "code": self.code,
            "state": self.state.value,
            "parent": self.parent.code,
            "viewers": sorted(self.viewers),
            "uptime": self.clock.now() - self.created_at,
            **self.relay.snapshot(),
        }


def attach_hosted_relay(
    parent,
    code: str,
    clock,
    relay_id: str | None = None,
    channel_config: ChannelConfig | None = None,
    rate_bps: int | None = None,
    relay_config=None,
    obs=None,
    tick: float = 0.02,
    close_when_empty: bool = False,
    rng: random.Random | None = None,
    supervisor=None,
) -> HostedRelay:
    """Build the relay + upstream hop for one ``host_relay`` call.

    ``parent`` is the :class:`HostedSession` (root hop: the AH sees one
    ``is_group`` destination) or another :class:`HostedRelay` (interior
    hop: the parent relay sees one downstream).
    """
    if parent.state is not SessionState.OPEN:
        raise SessionClosed(parent.code)
    rid = relay_id or f"relay-{code.lower()}"
    cfg = channel_config or ChannelConfig(delay=0.01)
    upstream_side, relay_side = duplex_transport_pair(cfg, clock, obs=obs)
    if isinstance(parent, HostedSession):
        parent.ah.add_participant(
            rid, upstream_side, rate_bps=rate_bps, is_group=True
        )
        detach = lambda: parent.ah.remove_participant(rid)  # noqa: E731
    elif isinstance(parent, HostedRelay):
        parent.relay.add_downstream(rid, upstream_side, rate_bps=rate_bps)
        detach = lambda: parent.relay.remove_downstream(rid)  # noqa: E731
    else:
        raise TypeError(
            "a relay chains under a HostedSession or another HostedRelay, "
            f"not {type(parent).__name__}"
        )
    node = RelayNode(
        rid, relay_side, clock=clock, config=relay_config,
        rng=rng, obs=obs,
    )
    return HostedRelay(
        code, parent, node, clock, detach,
        obs=obs, tick=tick, close_when_empty=close_when_empty,
        channel_config=cfg, rng=rng, supervisor=supervisor,
    )
