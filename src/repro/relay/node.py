"""The relay node: terminate feedback locally, forward media transparently.

A :class:`RelayNode` sits between an upstream source (the AH, or a
parent relay) and N downstream consumers (participants, or child
relays).  Media flows through **unmodified** — same SSRC, same
sequence numbers, same timestamps — so every viewer in an arbitrarily
deep tree observes the identical RTP stream and converges to the same
screen state as a directly-attached participant.

What the relay changes is the *feedback* plane.  Downstream NACKs and
PLIs terminate here:

* A NACK whose packets are still in the relay's
  :class:`~repro.sharing.retransmit.RetransmitCache` is served
  locally — the upstream never hears about it
  (``relay.absorbed_nacks``).
* A cache miss enrols the requester in a per-sequence waiter set and
  escalates **once** through the relay's own
  :class:`~repro.sharing.recovery.RecoveryManager`: a thousand viewers
  NACKing the same lost packet produce exactly one upstream NACK (plus
  capped retries), not a thousand (``relay.nacks_deduplicated``).
  When the repair arrives it is re-forwarded only to the waiters.
* PLIs are rate-limited: at most one upstream PLI per
  ``pli_min_interval`` regardless of how many viewers panic at once
  (``relay.plis_suppressed``).
* Receiver reports and SDES from downstream are absorbed entirely.

HIP (input) packets from downstream flow upstream verbatim — the relay
is transparent to the control plane, so floor control still happens at
the AH.  Upstream RTCP (the AH's SRs) fans out to every downstream so
leaf participants can keep estimating end-to-end latency.

Each downstream may carry its own token-bucket rate tier (section 4.3
of the paper applies per subtree): packets that exceed the tier queue
in FIFO order and drain as tokens refill; NACK retransmissions bypass
the limiter, exactly as the AH's own scheduler does.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..core.errors import ProtocolError
from ..health.liveness import LivenessConfig, LivenessTracker, PeerState
from ..net.ratecontrol import TokenBucket
from ..obs.clockutil import resolve_clock
from ..obs.instrumentation import resolve_obs
from ..rtp.clock import DEFAULT_CLOCK_RATE
from ..rtp.feedback import GenericNack, PictureLossIndication, aggregated_nacks
from ..rtp.packet import RtpPacket
from ..rtp.reports import (
    DEFAULT_INTERVAL as RTCP_DEFAULT_INTERVAL,
    RtcpReporter,
    from_ntp,
)
from ..rtp.rtcp import SenderReport, decode_compound
from ..rtp.sequence import SequenceExtender
from ..rtp.session import RtpReceiver, generate_ssrc
from ..sharing.config import PT_REMOTING
from ..sharing.recovery import (
    DEFAULT_BACKOFF,
    DEFAULT_INITIAL_INTERVAL,
    DEFAULT_MAX_ATTEMPTS,
    RecoveryManager,
)
from ..sharing.quarantine import QuarantinePolicy
from ..sharing.retransmit import RetransmitCache
from ..sharing.transport import PacketTransport, is_rtcp


@dataclass(frozen=True, slots=True)
class RelayConfig:
    """Tuning knobs for one relay node."""

    #: Encoded packets kept for local NACK service.  Bigger caches
    #: absorb NACKs further into the past; the AH-side default (2048)
    #: is doubled because a relay answers for many receivers at once.
    retransmit_cache_packets: int = 4096
    #: Upstream NACK retry schedule (mirrors the participant's).
    nack_retry_interval: float = DEFAULT_INITIAL_INTERVAL
    nack_backoff: float = DEFAULT_BACKOFF
    nack_max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Minimum spacing between upstream PLIs, however many downstream
    #: PLIs arrive (the anti-storm valve).
    pli_min_interval: float = 1.0
    #: Per-downstream FIFO depth while a rate tier is throttling;
    #: overflow drops the oldest queued packet (NACK recovery repairs
    #: the hole downstream).
    forward_queue_packets: int = 1024
    #: Extended sequence numbers remembered for duplicate suppression.
    forwarded_window: int = 4096
    #: Media clock rate for hop-latency estimation.
    clock_rate: int = DEFAULT_CLOCK_RATE
    #: Silence thresholds for upstream/downstream liveness; None keeps
    #: the historical behaviour (no silence-driven pruning, upstream
    #: death only visible through ``upstream.closed``).
    liveness: LivenessConfig | None = None
    #: Upstream RTCP heartbeat pacing.  None picks the RFC 3550 5 s
    #: default — unless ``liveness`` is set, in which case the interval
    #: shrinks to ``dead_after / 3`` so the parent hears roughly three
    #: heartbeats per dead window (the reporter jitters each interval
    #: by 0.5–1.5x, so the worst-case gap stays under ``dead_after``).
    #: Liveness thresholds shorter than the heartbeat interval declare
    #: healthy-but-quiet peers dead; keep ``dead_after`` above it.
    rtcp_interval: float | None = None
    #: Downstream-feedback quarantine knobs (mirror
    #: :class:`~repro.sharing.config.SharingConfig`): a downstream
    #: exceeding ``rejection_budget`` malformed packets inside
    #: ``rejection_window`` seconds is ignored for
    #: ``quarantine_cooldown`` seconds.
    rejection_budget: int = 16
    rejection_window: float = 5.0
    quarantine_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.retransmit_cache_packets < 0:
            raise ValueError("retransmit_cache_packets cannot be negative")
        if self.pli_min_interval < 0:
            raise ValueError("pli_min_interval cannot be negative")
        if self.forward_queue_packets < 1:
            raise ValueError("forward_queue_packets must be >= 1")
        if self.forwarded_window < 1:
            raise ValueError("forwarded_window must be >= 1")
        if self.clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        if self.rtcp_interval is not None and self.rtcp_interval <= 0:
            raise ValueError("rtcp_interval must be positive")

    @property
    def heartbeat_interval(self) -> float:
        """The effective upstream RTCP pacing (see ``rtcp_interval``)."""
        if self.rtcp_interval is not None:
            return self.rtcp_interval
        if self.liveness is not None:
            return self.liveness.dead_after / 3.0
        return RTCP_DEFAULT_INTERVAL


@dataclass(slots=True)
class RelayDownstream:
    """One downstream consumer (a participant or a child relay)."""

    downstream_id: str
    transport: PacketTransport
    limiter: TokenBucket | None = None
    #: FIFO of encoded packets awaiting rate-tier tokens.
    queue: deque = field(default_factory=deque)
    #: The configured tier, before any overload degradation scaling.
    base_rate_bps: int | None = None
    packets_sent: int = 0
    bytes_sent: int = 0
    retransmits_served: int = 0
    queue_drops: int = 0


class RelayNode:
    """One relay: upstream transport in, N downstream transports out."""

    def __init__(
        self,
        relay_id: str,
        upstream: PacketTransport,
        clock=None,
        config: RelayConfig | None = None,
        rng: random.Random | None = None,
        obs=None,
        now=None,
        instrumentation=None,
    ) -> None:
        self.id = relay_id
        self.upstream = upstream
        self.config = config or RelayConfig()
        self._now = resolve_clock(clock, now, "RelayNode", default=lambda: 0.0)
        self.obs = resolve_obs(obs, instrumentation, "RelayNode").scoped(
            peer=relay_id, side="relay"
        )
        r = rng or random.Random(0)
        #: Our RTCP identity when we originate upstream feedback.
        self.ssrc = generate_ssrc(r)
        #: The media SSRC we are relaying (learned from the stream).
        self.media_ssrc = 0
        self.receiver = RtpReceiver(
            clock_rate=self.config.clock_rate, now=self._now,
            instrumentation=self.obs,
        )
        self.cache = RetransmitCache(
            self.config.retransmit_cache_packets, instrumentation=self.obs
        )
        self.recovery = RecoveryManager(
            now=self._now,
            initial_interval=self.config.nack_retry_interval,
            backoff=self.config.nack_backoff,
            max_attempts=self.config.nack_max_attempts,
            instrumentation=self.obs,
        )
        #: Periodic upstream receiver reports: the relay's own RTCP
        #: presence on the parent link.  Beyond protocol correctness
        #: this is the *liveness heartbeat* — a healthy relay with idle
        #: downstreams would otherwise send nothing upstream and look
        #: dead to the parent's silence thresholds.
        self.reporter = RtcpReporter(
            self._now, receiver=self.receiver,
            cname=f"relay/{relay_id}", rng=r,
            interval=self.config.heartbeat_interval,
            instrumentation=self.obs,
        )
        #: Extended-sequence view of the forwarded stream, shared by the
        #: duplicate filter and the waiter table.
        self._extender = SequenceExtender()
        #: Extended seqs already fanned out (bounded by forwarded_window).
        self._forwarded: set[int] = set()
        #: Extended seq → downstream ids still waiting for it (cache
        #: misses pending upstream recovery).
        self._wanted: dict[int, set[str]] = {}
        self.downstreams: dict[str, RelayDownstream] = {}
        self._last_upstream_pli = float("-inf")
        self._last_sr: tuple[float, int] | None = None
        #: Downstream feedback quarantine (same policy every other
        #: ingress point uses).
        self.quarantine = QuarantinePolicy(
            now=self._now,
            budget=self.config.rejection_budget,
            window=self.config.rejection_window,
            cooldown=self.config.quarantine_cooldown,
            instrumentation=self.obs,
        )
        live_cfg = self.config.liveness
        #: Silence-driven pruning of dead downstreams.
        self.downstream_liveness = (
            LivenessTracker(self._now, live_cfg, instrumentation=self.obs)
            if live_cfg is not None else None
        )
        #: Parent-death detection (drives failover in the tree layer).
        self.upstream_liveness = (
            LivenessTracker(
                self._now, live_cfg,
                instrumentation=self.obs.scoped(link="upstream"),
            )
            if live_cfg is not None else None
        )
        if self.upstream_liveness is not None:
            self.upstream_liveness.track("upstream")
        #: True once :meth:`crash` ran (chaos scripting): the node is
        #: dead — pump() is a no-op and transports are closed.
        self.crashed = False
        #: Current overload degradation factor on downstream tiers.
        self.rate_scale = 1.0
        #: Failover interval awaiting its span mark: set by
        #: :meth:`replace_upstream`, consumed by the first forwarded
        #: update through the new parent.
        self._pending_failover: float | None = None

        self.packets_forwarded = 0
        self.downstreams_pruned = 0
        self.failovers = 0
        self.duplicates_dropped = 0
        self.malformed_dropped = 0
        self.nacks_received = 0
        self.absorbed_nacks = 0
        self.nacks_deduplicated = 0
        self.upstream_nacks = 0
        self.upstream_nacked_seqs = 0
        self.plis_received = 0
        self.upstream_plis = 0
        self.plis_suppressed = 0
        self.hip_forwarded = 0
        self.gave_up = 0

        obs_ = self.obs
        self._c_forwarded = obs_.counter("relay.forwarded_packets")
        self._c_fwd_bytes = obs_.counter("relay.forwarded_bytes")
        self._c_duplicates = obs_.counter("relay.duplicates_dropped")
        self._c_malformed = obs_.counter("relay.malformed_dropped")
        self._c_nacks_in = obs_.counter("relay.nacks_received")
        self._c_absorbed = obs_.counter("relay.absorbed_nacks")
        self._c_deduped = obs_.counter("relay.nacks_deduplicated")
        self._c_up_nacks = obs_.counter("relay.upstream_nacks")
        self._c_up_seqs = obs_.counter("relay.upstream_nacked_seqs")
        self._c_plis_in = obs_.counter("relay.plis_received")
        self._c_up_plis = obs_.counter("relay.upstream_plis")
        self._c_plis_suppressed = obs_.counter("relay.plis_suppressed")
        self._c_retx_served = obs_.counter("relay.retransmits_served")
        self._c_queue_drops = obs_.counter("relay.queue_drops")
        self._c_hip = obs_.counter("relay.hip_forwarded")
        self._c_gave_up = obs_.counter("relay.gave_up")
        self._g_downstreams = obs_.gauge("relay.downstreams")
        self._h_hop = obs_.histogram("relay.hop_seconds")
        self._c_pruned = {
            reason: obs_.counter("relay.downstream_pruned", reason=reason)
            for reason in ("closed", "dead")
        }
        self._c_failovers = obs_.counter("health.failovers")
        self._c_upstream_dead = obs_.counter("health.upstream_dead")

    # -- Topology ----------------------------------------------------------

    def add_downstream(
        self,
        downstream_id: str,
        transport: PacketTransport,
        rate_bps: int | None = None,
    ) -> RelayDownstream:
        """Attach one consumer, optionally inside a rate tier."""
        if downstream_id in self.downstreams:
            raise ValueError(
                f"downstream {downstream_id!r} already attached"
            )
        limiter = (
            TokenBucket(
                rate_bps, now=self._now,
                instrumentation=self.obs.scoped(downstream=downstream_id),
            )
            if rate_bps
            else None
        )
        downstream = RelayDownstream(
            downstream_id, transport, limiter, base_rate_bps=rate_bps
        )
        if limiter is not None and self.rate_scale != 1.0:
            # Joining a degraded relay puts you straight on the
            # degraded tier.
            limiter.rate_bps = max(1, int(rate_bps * self.rate_scale))
        self.downstreams[downstream_id] = downstream
        if self.downstream_liveness is not None:
            self.downstream_liveness.track(downstream_id)
        self._g_downstreams.set(len(self.downstreams))
        return downstream

    def remove_downstream(self, downstream_id: str) -> None:
        downstream = self.downstreams.pop(downstream_id, None)
        if downstream is None:
            return
        downstream.queue.clear()
        for ext in list(self._wanted):
            waiters = self._wanted[ext]
            waiters.discard(downstream_id)
            if not waiters:
                # Nobody else wants the packet: stop escalating for it.
                del self._wanted[ext]
        self.quarantine.forget(downstream_id)
        if self.downstream_liveness is not None:
            self.downstream_liveness.forget(downstream_id)
        self._g_downstreams.set(len(self.downstreams))

    def _prune_downstream(self, downstream_id: str, reason: str) -> None:
        """Evict one downstream the relay gave up on (closed or dead)."""
        if downstream_id not in self.downstreams:
            return
        self.remove_downstream(downstream_id)
        self.downstreams_pruned += 1
        self._c_pruned[reason].inc()
        if self.obs.enabled:
            self.obs.event(
                "relay.downstream_pruned",
                downstream=downstream_id, reason=reason,
            )

    def scale_rate_tiers(self, factor: float) -> None:
        """Scale every downstream tier (overload degradation ladder).

        ``factor`` multiplies the *configured* rates, so repeated calls
        do not compound and ``factor=1.0`` restores the original tiers.
        Downstreams without a tier are unaffected.
        """
        if factor <= 0:
            raise ValueError("rate scale factor must be positive")
        self.rate_scale = factor
        for downstream in self.downstreams.values():
            if downstream.limiter is not None and downstream.base_rate_bps:
                downstream.limiter.rate_bps = max(
                    1, int(downstream.base_rate_bps * factor)
                )

    def crash(self) -> None:
        """Chaos hook: the relay process dies right now.

        The node stops pumping and closes its transports.  Datagram
        peers have no FIN to observe — parents and children notice the
        death only through liveness silence, exactly as on a real UDP
        path."""
        self.crashed = True
        self.upstream.close()
        for downstream in self.downstreams.values():
            downstream.transport.close()

    def replace_upstream(
        self, transport: PacketTransport,
        failover_started: float | None = None,
    ) -> None:
        """Re-parent onto a new upstream path (failover).

        Resets upstream liveness, forces a PLI through regardless of
        the valve (the new parent must serve a full refresh so the
        orphaned subtree resyncs), and remembers the failover interval:
        the first update forwarded through the new parent carries a
        ``failover`` span stage from detection to that forward.
        """
        now = self._now()
        self.upstream = transport
        # The new parent is a new RTP sender — fresh SSRC and sequence
        # space — so the old stream's receive state must not chase the
        # new one: reset gap tracking, recovery, duplicate suppression
        # and the retransmit cache (16-bit seq lookups would otherwise
        # collide across streams and serve stale packets).
        self.receiver = RtpReceiver(
            clock_rate=self.config.clock_rate, now=self._now,
            instrumentation=self.obs,
        )
        self.recovery = RecoveryManager(
            now=self._now,
            initial_interval=self.config.nack_retry_interval,
            backoff=self.config.nack_backoff,
            max_attempts=self.config.nack_max_attempts,
            instrumentation=self.obs,
        )
        self.reporter.receiver = self.receiver
        self.cache = RetransmitCache(
            self.config.retransmit_cache_packets, instrumentation=self.obs
        )
        self._extender = SequenceExtender()
        self._forwarded.clear()
        self._wanted.clear()
        if self.upstream_liveness is not None:
            self.upstream_liveness.forget("upstream")
            self.upstream_liveness.track("upstream")
        self.failovers += 1
        self._c_failovers.inc()
        self._pending_failover = (
            failover_started if failover_started is not None else now
        )
        # A failover resync outranks the anti-storm valve.
        self._last_upstream_pli = float("-inf")
        self._request_upstream_pli()
        if self.obs.enabled:
            self.obs.event("health.failover", relay=self.id)

    @property
    def downstream_count(self) -> int:
        return len(self.downstreams)

    @property
    def upstream_closed(self) -> bool:
        return self.upstream.closed

    # -- The pump ----------------------------------------------------------

    def pump(self) -> int:
        """One service round: upstream in, feedback in, escalate, drain.

        Returns the number of upstream packets processed (media and
        RTCP), so callers can loop until quiescent.
        """
        if self.crashed:
            return 0
        processed = self._pump_upstream()
        self._pump_downstream()
        self._poll_escalation()
        self._drain_queues()
        report = self.reporter.poll()
        if report is not None:
            self.upstream.send_packet(report)
        self._poll_liveness()
        return processed

    def _pump_upstream(self) -> int:
        processed = 0
        for raw in self.upstream.receive_packets():
            processed += 1
            if self.upstream_liveness is not None:
                self.upstream_liveness.note_alive("upstream")
            if is_rtcp(raw):
                self._handle_upstream_rtcp(raw)
            else:
                self._handle_upstream_rtp(raw)
        return processed

    def _pump_downstream(self) -> None:
        departed = []
        for downstream in list(self.downstreams.values()):
            quarantined = self.quarantine.is_quarantined(
                downstream.downstream_id
            )
            packets = downstream.transport.receive_packets()
            if packets and self.downstream_liveness is not None:
                self.downstream_liveness.note_alive(
                    downstream.downstream_id
                )
            for raw in packets:
                if quarantined:
                    # Drain but ignore: a quarantined downstream still
                    # proves liveness, but its feedback is untrusted.
                    continue
                if is_rtcp(raw):
                    self._handle_downstream_rtcp(downstream, raw)
                else:
                    # HIP input: the relay is transparent to the
                    # control plane — forward upstream verbatim so
                    # floor control stays at the AH.
                    self.upstream.send_packet(raw)
                    self.hip_forwarded += 1
                    self._c_hip.inc()
            if downstream.transport.closed:
                departed.append(downstream.downstream_id)
        for downstream_id in departed:
            self._prune_downstream(downstream_id, "closed")

    def _poll_liveness(self) -> None:
        """Silence-driven eviction: prune dead downstreams, flag a dead
        parent for the tree layer's failover machinery."""
        if self.downstream_liveness is not None:
            report = self.downstream_liveness.poll()
            for downstream_id in report.newly_dead:
                self._prune_downstream(downstream_id, "dead")
        if self.upstream_liveness is not None:
            report = self.upstream_liveness.poll()
            if "upstream" in report.newly_dead:
                self._c_upstream_dead.inc()
                if self.obs.enabled:
                    self.obs.event("health.upstream_dead", relay=self.id)

    @property
    def upstream_dead(self) -> bool:
        """True when the parent path is known dead (silence or close).

        ``upstream.closed`` only fires for stream transports and local
        closes; on datagram paths death is visible purely through the
        liveness tracker's silence thresholds.
        """
        if self.upstream.closed:
            return True
        if self.upstream_liveness is None:
            return False
        return self.upstream_liveness.state_of("upstream") is PeerState.DEAD

    # -- Upstream media ----------------------------------------------------

    def _handle_upstream_rtp(self, raw: bytes) -> None:
        try:
            packet = RtpPacket.decode(raw)
        except ProtocolError:
            self.malformed_dropped += 1
            self._c_malformed.inc()
            return
        if packet.payload_type != PT_REMOTING:
            return
        self.media_ssrc = packet.ssrc
        seq = packet.sequence_number
        self.recovery.note_arrival(seq)
        self.receiver.receive(packet)
        ext = self._extender.extend(seq)
        waiters = self._wanted.pop(ext, None)
        if ext in self._forwarded:
            # Already fanned out once.  Re-forward only to waiters
            # whose copy aged out of the cache; otherwise this is
            # upstream duplicate noise and it stops here.
            if waiters:
                self.cache.store(seq, raw)
                for downstream_id in waiters:
                    downstream = self.downstreams.get(downstream_id)
                    if downstream is not None:
                        self._serve_retransmit(downstream, raw)
            else:
                self.duplicates_dropped += 1
                self._c_duplicates.inc()
            return
        self._forwarded.add(ext)
        self._trim_forwarded(ext)
        self.cache.store(seq, raw)
        spans = self.obs.spans
        if spans.enabled:
            span_id = spans.resolve(packet.ssrc, seq)
            if span_id is not None:
                spans.mark(span_id, "relay")
                if self._pending_failover is not None:
                    # First update through the new parent: the failover
                    # stage spans detection → this forward.
                    spans.mark(
                        span_id, "failover",
                        start=self._pending_failover, end=self._now(),
                    )
        self._pending_failover = None
        self._observe_hop_latency(packet.timestamp)
        for downstream in list(self.downstreams.values()):
            self._deliver(downstream, raw)
        self.packets_forwarded += 1
        self._c_forwarded.inc()
        self._c_fwd_bytes.inc(len(raw))

    def _handle_upstream_rtcp(self, raw: bytes) -> None:
        try:
            messages = decode_compound(raw)
        except ProtocolError:
            self.malformed_dropped += 1
            self._c_malformed.inc()
            return
        for message in messages:
            if isinstance(message, SenderReport):
                self._last_sr = (
                    from_ntp(message.ntp_timestamp), message.rtp_timestamp
                )
        # Fan the AH's RTCP to every downstream: leaf participants use
        # the SRs for latency estimation exactly as on a direct path.
        for downstream in list(self.downstreams.values()):
            self._deliver(downstream, raw)

    def _trim_forwarded(self, newest_ext: int) -> None:
        if len(self._forwarded) <= 2 * self.config.forwarded_window:
            return
        horizon = newest_ext - self.config.forwarded_window
        self._forwarded = {e for e in self._forwarded if e >= horizon}

    def _observe_hop_latency(self, rtp_timestamp: int) -> None:
        """Source-capture → this-hop-forward delay via the SR map."""
        if self._last_sr is None:
            return
        sr_wall, sr_rtp = self._last_sr
        diff = (rtp_timestamp - sr_rtp) & 0xFFFF_FFFF
        if diff >= 1 << 31:
            diff -= 1 << 32
        sent_wall = sr_wall + diff / self.config.clock_rate
        latency = self._now() - sent_wall
        if 0.0 <= latency < 60.0:
            self._h_hop.observe(latency)

    # -- Downstream feedback -----------------------------------------------

    def _handle_downstream_rtcp(
        self, downstream: RelayDownstream, raw: bytes
    ) -> None:
        try:
            messages = decode_compound(raw)
        except ProtocolError as exc:
            self.malformed_dropped += 1
            self._c_malformed.inc()
            self.quarantine.record_rejection(
                downstream.downstream_id, "relay-rtcp", exc
            )
            return
        for message in messages:
            if isinstance(message, GenericNack):
                self._handle_nack(downstream, message)
            elif isinstance(message, PictureLossIndication):
                self.plis_received += 1
                self._c_plis_in.inc()
                self._request_upstream_pli()
            # RRs and SDES are absorbed: the upstream never sees
            # per-viewer reception reports.

    def _handle_nack(
        self, downstream: RelayDownstream, nack: GenericNack
    ) -> None:
        self.nacks_received += 1
        self._c_nacks_in.inc()
        for seq in nack.sequence_numbers():
            encoded = self.cache.lookup(seq)
            if encoded is not None:
                self._serve_retransmit(downstream, encoded)
                self.absorbed_nacks += 1
                self._c_absorbed.inc()
                continue
            # Cache miss: remember who wants it; the recovery machine
            # escalates each missing seq upstream exactly once (then on
            # its own retry schedule), however many viewers ask.
            ext = self._extender.extend(seq)
            waiters = self._wanted.get(ext)
            if waiters is None:
                self._wanted[ext] = {downstream.downstream_id}
            else:
                waiters.add(downstream.downstream_id)
                self.nacks_deduplicated += 1
                self._c_deduped.inc()

    def _request_upstream_pli(self) -> None:
        now = self._now()
        if now - self._last_upstream_pli < self.config.pli_min_interval:
            self.plis_suppressed += 1
            self._c_plis_suppressed.inc()
            return
        self._last_upstream_pli = now
        pli = PictureLossIndication(self.ssrc, self.media_ssrc)
        self.upstream.send_packet(pli.encode())
        self.upstream_plis += 1
        self._c_up_plis.inc()

    # -- Escalation --------------------------------------------------------

    def _poll_escalation(self) -> None:
        """Advance the single upstream recovery machine.

        Its missing set is the union of the relay's own reception gaps
        and every cache-missed downstream request — one state machine,
        so one upstream NACK per missing packet regardless of fan-in.
        """
        missing = set(self.receiver.missing_sequence_numbers())
        missing.update(ext & 0xFFFF for ext in self._wanted)
        if not missing and not self.recovery.pending:
            return
        actions = self.recovery.poll(missing)
        if actions.nack_now:
            for nack in aggregated_nacks(
                self.ssrc, self.media_ssrc, actions.nack_now
            ):
                self.upstream.send_packet(nack.encode())
                self.upstream_nacks += 1
                self._c_up_nacks.inc()
            self.upstream_nacked_seqs += len(actions.nack_now)
            self._c_up_seqs.inc(len(actions.nack_now))
        if actions.gave_up:
            for seq in actions.gave_up:
                self.receiver.gaps.acknowledge(seq)
                self._wanted.pop(self._extender.extend(seq), None)
            self.gave_up += len(actions.gave_up)
            self._c_gave_up.inc(len(actions.gave_up))
            # Retries exhausted: the subtree can only heal via a full
            # refresh, which the PLI valve still rate-limits.
            self._request_upstream_pli()

    # -- Downstream delivery -----------------------------------------------

    def _deliver(self, downstream: RelayDownstream, raw: bytes) -> None:
        if downstream.limiter is not None and (
            downstream.queue
            or not downstream.limiter.try_consume(len(raw))
        ):
            downstream.queue.append(raw)
            if len(downstream.queue) > self.config.forward_queue_packets:
                downstream.queue.popleft()
                downstream.queue_drops += 1
                self._c_queue_drops.inc()
            return
        self._send_now(downstream, raw)

    def _serve_retransmit(
        self, downstream: RelayDownstream, raw: bytes
    ) -> None:
        # Retransmissions bypass the rate tier, matching the AH's own
        # scheduler: repair latency beats strict pacing.
        self._send_now(downstream, raw)
        downstream.retransmits_served += 1
        self._c_retx_served.inc()

    def _send_now(self, downstream: RelayDownstream, raw: bytes) -> None:
        downstream.transport.send_packet(raw)
        downstream.packets_sent += 1
        downstream.bytes_sent += len(raw)

    def _drain_queues(self) -> None:
        for downstream in list(self.downstreams.values()):
            limiter = downstream.limiter
            queue = downstream.queue
            while queue:
                raw = queue[0]
                if limiter is not None and not limiter.try_consume(len(raw)):
                    break
                queue.popleft()
                self._send_now(downstream, raw)

    # -- Introspection -----------------------------------------------------

    @property
    def bytes_forwarded(self) -> int:
        return sum(d.bytes_sent for d in self.downstreams.values())

    def snapshot(self) -> dict:
        """Flat counters for reports and the hosted-relay describe()."""
        return {
            "relay_id": self.id,
            "downstreams": len(self.downstreams),
            "downstreams_pruned": self.downstreams_pruned,
            "failovers": self.failovers,
            "rate_scale": self.rate_scale,
            "crashed": self.crashed,
            "upstream_dead": self.upstream_dead,
            "quarantined": self.quarantine.quarantined_peers,
            "packets_forwarded": self.packets_forwarded,
            "duplicates_dropped": self.duplicates_dropped,
            "nacks_received": self.nacks_received,
            "absorbed_nacks": self.absorbed_nacks,
            "nacks_deduplicated": self.nacks_deduplicated,
            "upstream_nacks": self.upstream_nacks,
            "upstream_nacked_seqs": self.upstream_nacked_seqs,
            "plis_received": self.plis_received,
            "upstream_plis": self.upstream_plis,
            "plis_suppressed": self.plis_suppressed,
            "hip_forwarded": self.hip_forwarded,
            "gave_up": self.gave_up,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
        }
