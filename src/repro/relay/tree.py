"""Topology builders: wire relay trees over the simulated network.

The cascade rule is uniform: a :class:`~repro.relay.node.RelayNode`
takes any :class:`~repro.sharing.transport.PacketTransport` as its
upstream, so the same node works directly under the AH or under
another relay, to any depth.  These helpers create the duplex lossy
channel for one hop, register the downstream end on the parent, and
hand back the attached node (or participant).

:class:`RelayTree` is a convenience container for benchmarks and
integration tests: it remembers the relays level by level so one
``pump()`` call services the whole cascade in topological order
(parents first — a packet can traverse every zero-delay hop in a
single round).

The tree also owns **failover**: it records each relay's parent and
upstream rate tier, so when a relay's parent dies (crash or partition,
detected through upstream liveness silence), :meth:`RelayTree.pump`
re-parents the orphan onto its nearest alive ancestor — normally the
grandparent, ultimately the AH.  The orphan keeps its whole subtree:
children and viewers never notice, and the forced PLI resync through
the new parent repairs whatever the dead hop swallowed.  Pump order
stays valid because an orphan only ever moves *up* the tree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from ..net.channel import ChannelConfig, FaultProfile, duplex_lossy
from ..obs.instrumentation import NULL
from ..sharing.ah import ApplicationHost
from ..sharing.participant import Participant
from ..sharing.transport import DatagramTransport
from .node import RelayConfig, RelayNode


def duplex_transport_pair(
    config: ChannelConfig,
    now,
    obs=None,
    faults: FaultProfile | None = None,
    back_faults: FaultProfile | None = None,
) -> tuple[DatagramTransport, DatagramTransport]:
    """One simulated UDP association: (upstream side, downstream side)."""
    link = duplex_lossy(
        config, now, instrumentation=obs, faults=faults,
        back_faults=back_faults,
    )
    upstream_side = DatagramTransport(link.forward, link.backward)
    downstream_side = DatagramTransport(link.backward, link.forward)
    return upstream_side, downstream_side


def attach_relay_to_ah(
    ah: ApplicationHost,
    relay_id: str,
    clock,
    channel_config: ChannelConfig | None = None,
    rate_bps: int | None = None,
    relay_config: RelayConfig | None = None,
    rng=None,
    obs=None,
    faults: FaultProfile | None = None,
) -> RelayNode:
    """Hang a relay directly under the AH (the tree root hop).

    The AH sees the relay as one ``is_group`` destination — one RTP
    session, one retransmit cache entry stream, one rate tier —
    however many viewers sit in the subtree behind it.
    """
    cfg = channel_config or ChannelConfig(delay=0.01)
    ah_side, relay_side = duplex_transport_pair(
        cfg, clock, obs=obs, faults=faults
    )
    ah.add_participant(relay_id, ah_side, rate_bps=rate_bps, is_group=True)
    return RelayNode(
        relay_id, relay_side, clock=clock, config=relay_config,
        rng=rng, obs=obs,
    )


def attach_relay_to_relay(
    parent: RelayNode,
    relay_id: str,
    clock,
    channel_config: ChannelConfig | None = None,
    rate_bps: int | None = None,
    relay_config: RelayConfig | None = None,
    rng=None,
    obs=None,
    faults: FaultProfile | None = None,
) -> RelayNode:
    """Chain a child relay under ``parent`` (one interior tree hop)."""
    cfg = channel_config or ChannelConfig(delay=0.01)
    parent_side, child_side = duplex_transport_pair(
        cfg, clock, obs=obs, faults=faults
    )
    parent.add_downstream(relay_id, parent_side, rate_bps=rate_bps)
    return RelayNode(
        relay_id, child_side, clock=clock, config=relay_config,
        rng=rng, obs=obs,
    )


def attach_viewer(
    relay: RelayNode,
    viewer_id: str,
    clock,
    channel_config: ChannelConfig | None = None,
    rate_bps: int | None = None,
    obs=None,
    faults: FaultProfile | None = None,
    join: bool = True,
    **participant_kwargs,
) -> Participant:
    """Attach a leaf :class:`Participant` under ``relay``.

    ``join=True`` (default) sends the participant's join PLI at once;
    the relay's PLI valve forwards the first one upstream, so a batch
    of simultaneous joiners costs the AH a single full refresh.
    """
    cfg = channel_config or ChannelConfig(delay=0.01)
    relay_side, viewer_side = duplex_transport_pair(
        cfg, clock, obs=obs, faults=faults
    )
    relay.add_downstream(viewer_id, relay_side, rate_bps=rate_bps)
    participant = Participant(
        viewer_id, viewer_side, clock=clock, obs=obs, **participant_kwargs
    )
    if join:
        participant.join()
    return participant


@dataclass
class RelayTree:
    """A built cascade: the AH, relays by level, and leaf participants."""

    ah: ApplicationHost
    #: ``levels[0]`` hangs off the AH; ``levels[i]`` off ``levels[i-1]``.
    levels: list[list[RelayNode]] = field(default_factory=list)
    viewers: list[Participant] = field(default_factory=list)
    #: The shared clock, needed to wire replacement links on failover.
    clock: object | None = None
    obs: object = NULL
    #: relay id → parent relay id (None = directly under the AH).
    parent_of: dict[str, str | None] = field(default_factory=dict)
    #: Rate tier each relay's upstream link was attached with.
    upstream_rate: dict[str, int | None] = field(default_factory=dict)
    #: Fresh channel config per new link (seeded independently);
    #: defaults to a plain 10 ms hop when unset.
    link_config: Callable[[], ChannelConfig] | None = None
    #: Failover log: ``(orphan_id, new_parent_id_or_None)`` in order.
    failover_log: list[tuple[str, str | None]] = field(default_factory=list)

    @property
    def relays(self) -> list[RelayNode]:
        return [relay for level in self.levels for relay in level]

    @property
    def leaves(self) -> list[RelayNode]:
        return self.levels[-1] if self.levels else []

    @property
    def nodes(self) -> dict[str, RelayNode]:
        return {relay.id: relay for relay in self.relays}

    def register(
        self,
        relay: RelayNode,
        parent: RelayNode | None,
        rate_bps: int | None = None,
    ) -> None:
        """Record ``relay``'s position for failover bookkeeping."""
        self.parent_of[relay.id] = parent.id if parent is not None else None
        self.upstream_rate[relay.id] = rate_bps

    def pump(self, failover: bool = True) -> int:
        """Service every relay once, parents before children.

        With ``failover`` (the default) orphaned relays are re-parented
        first, so the same round already pumps them on their new path.
        """
        if failover:
            self.failover_orphans()
        processed = 0
        for level in self.levels:
            for relay in level:
                processed += relay.pump()
        return processed

    def pump_viewers(self) -> int:
        applied = 0
        for viewer in self.viewers:
            applied += viewer.process_incoming()
        return applied

    # -- Failover ----------------------------------------------------------

    def _nearest_alive_ancestor(
        self, relay_id: str, nodes: dict[str, RelayNode]
    ) -> str | None:
        """Climb ``parent_of`` past dead relays; None means the AH."""
        ancestor = self.parent_of.get(relay_id)
        while ancestor is not None:
            node = nodes.get(ancestor)
            if node is not None and not node.crashed and not node.upstream_dead:
                return ancestor
            ancestor = self.parent_of.get(ancestor)
        return None

    def failover_orphans(self) -> list[str]:
        """Re-parent every relay whose upstream path is dead.

        Each orphan gets a fresh duplex link to its nearest alive
        ancestor (grandparent, great-grandparent, … the AH as the
        root fallback), keeping its original rate tier.
        :meth:`RelayNode.replace_upstream` then forces the PLI resync
        and stamps the ``failover`` span stage.  Returns the ids that
        failed over this call.
        """
        if self.clock is None:
            return []
        nodes = self.nodes
        healed: list[str] = []
        for relay in self.relays:
            if relay.crashed or not relay.upstream_dead:
                continue
            started = None
            if relay.upstream_liveness is not None:
                started = relay.upstream_liveness.died_at("upstream")
            new_parent_id = self._nearest_alive_ancestor(relay.id, nodes)
            cfg = (
                self.link_config() if self.link_config is not None
                else ChannelConfig(delay=0.01)
            )
            parent_side, child_side = duplex_transport_pair(
                cfg, self.clock, obs=self.obs
            )
            rate = self.upstream_rate.get(relay.id)
            if new_parent_id is None:
                self.ah.add_participant(
                    relay.id, parent_side, rate_bps=rate, is_group=True
                )
            else:
                nodes[new_parent_id].add_downstream(
                    relay.id, parent_side, rate_bps=rate
                )
            relay.replace_upstream(child_side, failover_started=started)
            self.parent_of[relay.id] = new_parent_id
            self.failover_log.append((relay.id, new_parent_id))
            healed.append(relay.id)
        return healed


def build_relay_tree(
    ah: ApplicationHost,
    clock,
    fanouts: tuple[int, ...] = (2, 2),
    viewers_per_leaf: int = 2,
    channel_config: ChannelConfig | None = None,
    relay_config: RelayConfig | None = None,
    rate_bps: int | None = None,
    viewer_faults: FaultProfile | None = None,
    obs=None,
    rng=None,
    **participant_kwargs,
) -> RelayTree:
    """Build a uniform tree: ``fanouts[i]`` relays per level-``i`` parent.

    ``fanouts=(2, 3)`` puts 2 relays under the AH and 3 under each of
    those (6 leaves); ``viewers_per_leaf`` participants then hang off
    every leaf relay.  ``viewer_faults`` impairs only the last hop —
    the classic relay payoff: loss near the edge is repaired from the
    leaf relay's cache without upstream traffic.
    """
    base = channel_config or ChannelConfig(delay=0.01)
    links = iter(range(0, 1 << 30, 2))

    def link_config() -> ChannelConfig:
        # Each hop gets its own seed pair so loss realisations are
        # independent across links (duplex_lossy burns seed and seed+1).
        return dataclasses.replace(base, seed=base.seed + next(links))

    tree = RelayTree(
        ah, clock=clock,
        obs=obs if obs is not None else NULL,
        link_config=link_config,
    )
    parents: list[RelayNode] | None = None
    for depth, fanout in enumerate(fanouts):
        level: list[RelayNode] = []
        if parents is None:
            for i in range(fanout):
                relay = attach_relay_to_ah(
                    ah, f"relay-0-{i}", clock,
                    channel_config=link_config(), rate_bps=rate_bps,
                    relay_config=relay_config, rng=rng, obs=obs,
                )
                tree.register(relay, None, rate_bps=rate_bps)
                level.append(relay)
        else:
            for p_index, parent in enumerate(parents):
                for i in range(fanout):
                    relay = attach_relay_to_relay(
                        parent, f"relay-{depth}-{p_index}-{i}", clock,
                        channel_config=link_config(), rate_bps=rate_bps,
                        relay_config=relay_config, rng=rng, obs=obs,
                    )
                    tree.register(relay, parent, rate_bps=rate_bps)
                    level.append(relay)
        tree.levels.append(level)
        parents = level
    for leaf_index, leaf in enumerate(tree.leaves):
        for i in range(viewers_per_leaf):
            tree.viewers.append(attach_viewer(
                leaf, f"viewer-{leaf_index}-{i}", clock,
                channel_config=link_config(), obs=obs,
                faults=viewer_faults, **participant_kwargs,
            ))
    return tree
