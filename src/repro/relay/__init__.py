"""repro.relay — the cascaded fan-out tier.

One AH cannot serve tens of thousands of UDP viewers: its egress
bandwidth scales with N and, worse, so does the *feedback* it absorbs —
at 2% loss, 10k viewers NACK hundreds of times per second and every
join or loss burst is a PLI storm.  A :class:`RelayNode` breaks both
axes: it terminates RTP/RTCP from its upstream (the AH or a parent
relay), re-serves the identical stream to its downstreams out of its
own retransmit cache, and only escalates a *deduplicated* NACK (or a
rate-limited PLI) when it is itself missing a packet.  Relays chain
into trees, so AH egress and AH-visible feedback are both O(root
fan-out), independent of audience size.

* :mod:`repro.relay.node` — the relay itself (feedback absorption,
  duplicate suppression, per-downstream rate tiers).
* :mod:`repro.relay.tree` — topology builders over the simulated
  network, and :class:`RelayTree` for benchmarks/tests.
* :mod:`repro.relay.hosted` — relays as registry-first-class endpoints
  of the :class:`~repro.sharing.server.SessionServer`
  (``host_relay`` / ``join_relay``).

See ``docs/RELAY.md`` for the design and ``benchmarks/
bench_relay_tree.py`` for the 10k-viewer egress/feedback gates.
"""

from .hosted import HostedRelay, attach_hosted_relay
from .node import RelayConfig, RelayDownstream, RelayNode
from .tree import (
    RelayTree,
    attach_relay_to_ah,
    attach_relay_to_relay,
    attach_viewer,
    build_relay_tree,
    duplex_transport_pair,
)

__all__ = [
    "HostedRelay",
    "RelayConfig",
    "RelayDownstream",
    "RelayNode",
    "RelayTree",
    "attach_hosted_relay",
    "attach_relay_to_ah",
    "attach_relay_to_relay",
    "attach_viewer",
    "build_relay_tree",
    "duplex_transport_pair",
]
