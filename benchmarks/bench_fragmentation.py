"""E7 — fragmentation across MTUs (section 5.2.2, Table 2).

Updates from 4 KiB to 1 MiB are fragmented for 576/1500/9000-byte
payload budgets.  Rows report packet counts, header overhead, and the
reassembly round-trip time; correctness of every combination is
asserted inline.
"""

import pytest

from repro.core.fragmentation import UpdateReassembler, fragment_update
from repro.core.registry import MSG_REGION_UPDATE

SIZES = {
    "4KiB": 4 * 1024,
    "64KiB": 64 * 1024,
    "1MiB": 1024 * 1024,
}
MTUS = [576, 1500, 9000]


def _payload_budget(mtu: int) -> int:
    """RTP payload budget for a given IP MTU (IP+UDP+RTP = 40 bytes)."""
    return mtu - 40


@pytest.mark.parametrize("mtu", MTUS)
@pytest.mark.parametrize("size_name", sorted(SIZES))
def test_fragment_and_reassemble(benchmark, experiment, mtu, size_name):
    recorder = experiment("E7", "fragmentation across update sizes and MTUs")
    data = bytes(range(256)) * (SIZES[size_name] // 256)
    budget = _payload_budget(mtu)

    def roundtrip():
        fragments = fragment_update(
            MSG_REGION_UPDATE, 1, 96, 0, 0, data, budget
        )
        reassembler = UpdateReassembler()
        result = None
        for fragment in fragments:
            result = reassembler.push(fragment.payload, fragment.marker, 7)
        return fragments, result

    fragments, result = benchmark(roundtrip)
    assert result is not None and result.data == data
    wire = sum(f.size for f in fragments)
    recorder.row(
        update=size_name,
        mtu=mtu,
        packets=len(fragments),
        overhead_pct=100 * (wire - len(data)) / len(data),
    )
