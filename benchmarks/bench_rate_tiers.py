"""E11 — rate-tiered UDP distribution (section 4.3).

"Several simultaneous multicast sessions with different transmission
rates can be created at the AH."  Four participants watch the same
animation behind 0.5/1/2/4 Mb/s token buckets.  Rows report achieved
egress rate against the configured tier and how stale each tier's view
runs — slower tiers coalesce more and skip intermediate frames rather
than falling behind.
"""

import pytest

from repro.apps.animation import AnimationApp
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from sessions import add_udp_participant

SECONDS = 5.0
DT = 1 / 30
TIERS = {
    "0.5Mbps": 500_000,
    "1Mbps": 1_000_000,
    "2Mbps": 2_000_000,
    "4Mbps": 4_000_000,
}


def _tiered_session():
    clock = SimulatedClock()
    ah = ApplicationHost(config=SharingConfig(), clock=clock.now)
    win = ah.windows.create_window(Rect(0, 0, 320, 240))
    ah.apps.attach(AnimationApp(win, fps=30, balls=3))
    participants = {}
    for name, rate in TIERS.items():
        participants[name] = add_udp_participant(
            clock, ah, name, seed=hash(name) % 100, rate_bps=rate
        )
    rounds = int(SECONDS / DT)
    for _ in range(rounds):
        ah.advance(DT)
        clock.advance(DT)
        for participant in participants.values():
            participant.process_incoming()
    return clock, ah, participants


def test_rate_tiers(benchmark, experiment):
    recorder = experiment("E11", "rate-tiered distribution of one animation")
    clock, ah, participants = benchmark.pedantic(
        _tiered_session, rounds=1, iterations=1
    )
    for name, rate in TIERS.items():
        scheduler = ah.sessions[name].scheduler
        achieved = scheduler.bytes_sent * 8 / clock.now()
        staleness = scheduler.updates_sent_stale_after
        p95 = 0.0
        if staleness:
            ordered = sorted(staleness)
            p95 = ordered[int(0.95 * (len(ordered) - 1))]
        recorder.row(
            tier=name,
            target_mbps=rate / 1e6,
            achieved_mbps=achieved / 1e6,
            utilisation_pct=100 * achieved / rate,
            frames_coalesced=scheduler.frames_coalesced,
            updates_applied=participants[name].updates_applied,
            staleness_p95_ms=p95 * 1000,
        )
        # Pacing must never overshoot the tier (beyond the burst).
        assert achieved <= rate * 1.15
