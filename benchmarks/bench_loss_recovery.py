"""E5 — loss recovery: Generic NACK retransmission vs PLI-only (section 5.3).

Sweeps packet loss from 1 % to 10 % over an editing session and
compares the two recovery modes the draft defines: NACK-driven
retransmission (when the AH advertises ``retransmissions=yes``) and
full-refresh PLI as the only tool.  Reports recovery traffic overhead
and whether the participant converges.
"""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from sessions import run_rounds, udp_session

EDIT_ROUNDS = 360


def _lossy_session(loss_rate: float, retransmissions: bool, seed: int = 33):
    config = SharingConfig(retransmissions=retransmissions)
    clock, ah, participant = udp_session(
        config=config, loss_rate=loss_rate, seed=seed
    )
    win = ah.windows.create_window(Rect(40, 40, 400, 300))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)

    def drive(i):
        if i % 6 == 0 and i < EDIT_ROUNDS - 120:
            editor.type_text(f"line {i} under loss\n")

    run_rounds(clock, ah, [participant], EDIT_ROUNDS, per_round=drive)
    run_rounds(clock, ah, [participant], 200)  # recovery tail
    return ah, participant


@pytest.mark.parametrize("loss_pct", [1, 5, 10])
@pytest.mark.parametrize("mode", ["nack-rtx", "pli-only"])
def test_loss_recovery(benchmark, experiment, loss_pct, mode):
    recorder = experiment("E5", "NACK retransmission vs PLI-only recovery")
    ah, participant = benchmark.pedantic(
        _lossy_session,
        args=(loss_pct / 100, mode == "nack-rtx"),
        rounds=1,
        iterations=1,
    )
    retransmit_kib = sum(
        s.scheduler.encoder.stats.retransmit.wire_bytes
        for s in ah.sessions.values()
    ) / 1024
    recorder.row(
        loss_pct=loss_pct,
        mode=mode,
        converged=participant.converged_with(ah.windows),
        nacks=participant.nacks_sent,
        plis=participant.plis_sent,
        retransmit_kib=retransmit_kib,
        total_sent_kib=ah.total_bytes_sent() / 1024,
        updates_dropped=participant._reassembler.updates_dropped,
    )
