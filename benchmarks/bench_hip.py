"""E9 — HIP event throughput, latency, and the legitimacy check (sections 4.1, 6).

A participant fires a storm of mouse/keyboard events; rows report
end-to-end event latency over the simulated path, AH-side validation
throughput, and the rejection rate for events falling outside shared
windows.
"""

import pytest

from repro.apps.base import AppHost
from repro.apps.whiteboard import WhiteboardApp
from repro.core.hip import KeyTyped, MouseMoved, MousePressed, MouseReleased
from repro.sharing.config import SharingConfig
from repro.sharing.events import EventInjector
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager

from sessions import run_rounds, tcp_session

EVENTS = 2000


def test_injector_throughput(benchmark, experiment):
    """Pure AH-side validation + regeneration rate."""
    recorder = experiment("E9", "HIP event processing")
    wm = WindowManager(1280, 1024)
    apps = AppHost(wm)
    win = wm.create_window(Rect(100, 100, 600, 400))
    apps.attach(WhiteboardApp(win))
    injector = EventInjector(wm, apps)
    messages = [
        MouseMoved(win.window_id, 100 + (i % 600), 100 + (i * 7) % 400)
        for i in range(EVENTS)
    ]

    def storm():
        for message in messages:
            injector.inject("p1", message)

    benchmark(storm)
    recorder.row(
        metric="AH validation+regeneration",
        events=injector.stats.accepted,
        rejected=injector.stats.rejected_out_of_window,
    )


def test_legitimacy_rejection_rate(benchmark, experiment):
    """Half the storm aims outside any shared window (must be rejected)."""
    recorder = experiment("E9", "HIP event processing")
    wm = WindowManager(1280, 1024)
    apps = AppHost(wm)
    win = wm.create_window(Rect(100, 100, 200, 200))
    apps.attach(WhiteboardApp(win))
    injector = EventInjector(wm, apps)
    inside = MousePressed(win.window_id, 1, 150, 150)
    outside = MousePressed(win.window_id, 1, 900, 900)

    def storm():
        for i in range(EVENTS):
            injector.inject("p1", inside if i % 2 == 0 else outside)

    benchmark(storm)
    total = injector.stats.accepted + injector.stats.rejected_out_of_window
    recorder.row(
        metric="legitimacy check (50% spoofed)",
        events=total,
        rejected=injector.stats.rejected_out_of_window,
    )


def _event_latency_session():
    clock, ah, participant = tcp_session(delay=0.02)
    win = ah.windows.create_window(Rect(50, 50, 600, 400))
    board = WhiteboardApp(win)
    ah.apps.attach(board)
    run_rounds(clock, ah, [participant], 20)

    # One drag stroke: press, many moves, release; measure time until
    # the AH has handled each batch.
    sent_at = clock.now()
    participant.press_mouse(win.window_id, 10, 10)
    for i in range(100):
        participant.move_mouse(win.window_id, 10 + i, 10 + i % 50)
    participant.release_mouse(win.window_id, 110, 59)
    rounds = 0
    while board.strokes_completed == 0 and rounds < 200:
        ah.advance(0.005)
        clock.advance(0.005)
        participant.process_incoming()
        rounds += 1
    latency = clock.now() - sent_at
    return board, latency


def test_event_latency(benchmark, experiment):
    recorder = experiment("E9", "HIP event processing")
    board, latency = benchmark.pedantic(
        _event_latency_session, rounds=1, iterations=1
    )
    assert board.strokes_completed == 1
    recorder.row(
        metric="drag stroke e2e (102 events, 20ms path)",
        events=board.events_handled,
        latency_ms=latency * 1000,
    )


def test_key_typed_encode_decode(benchmark):
    """Wire-level KeyTyped throughput for a paste-sized string."""
    message = KeyTyped(1, "lorem ipsum dolor sit amet " * 8)

    def roundtrip():
        return KeyTyped.decode(message.encode())

    assert benchmark(roundtrip).text == message.text
