"""Asyncio SessionServer capacity benchmark + regression gate.

Hosts ``--sessions`` concurrent sharing sessions (default 220) inside
one :class:`repro.sharing.server.SessionServer`, joins one SIP-signalled
participant to each, then drives a scrolling-terminal workload for
``--sim-seconds`` of shared virtual time.  Headline numbers:

* ``sessions_per_core`` — session-seconds of simulation delivered per
  core-second of CPU (``sessions * sim_seconds / cpu_seconds``); the
  hardware-robust capacity figure the gate rides on.
* ``p95_update_s`` — 95th-percentile update.sent→update.applied latency
  in *virtual* time, reconstructed from the obs trace; this measures
  protocol behaviour, not host speed, so it is near-deterministic.
* ``converged`` — sessions whose participant is pixel-exact at the end.

Usage::

    PYTHONPATH=src python benchmarks/bench_session_server.py \
        --json BENCH_sessions.new.json --baseline BENCH_sessions.json

Exits non-zero when the run hosts fewer sessions than the baseline's
``gate.min_sessions``, delivers less than ``gate.min_sessions_per_core``,
or exceeds ``gate.max_p95_update_s``.  Refresh the committed seed with
``--json BENCH_sessions.json`` (no ``--baseline``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.terminal import TerminalApp  # noqa: E402
from repro.obs import Instrumentation  # noqa: E402
from repro.sharing import SharingConfig  # noqa: E402
from repro.sharing.server import SessionServer  # noqa: E402
from repro.surface.geometry import Rect  # noqa: E402

TICK = 0.05  # virtual seconds advanced per scheduling round
LINE_EVERY = 0.5  # terminal output cadence, virtual seconds


async def run_bench(sessions: int, sim_seconds: float, obs) -> dict:
    async with SessionServer(tick=TICK, obs=obs) as server:
        t_host0 = time.perf_counter()
        apps = []
        for _ in range(sessions):
            code = server.host(
                screen_width=160,
                screen_height=120,
                config=SharingConfig(adaptive_codec=False),
            )
            session = server.session(code)
            window = session.ah.windows.create_window(Rect(4, 4, 140, 100))
            terminal = TerminalApp(window)
            session.ah.apps.attach(terminal)
            apps.append((code, terminal))
        joined = await asyncio.gather(
            *(server.join(code, "viewer", timeout=30) for code, _ in apps)
        )
        host_join_wall = time.perf_counter() - t_host0

        t_end = server.clock.now() + sim_seconds
        next_line = server.clock.now()
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        while server.clock.now() < t_end:
            if server.clock.now() >= next_line:
                stamp = f"[{server.clock.now():6.2f}] build output line"
                for _, terminal in apps:
                    terminal.append_line(stamp)
                next_line += LINE_EVERY
            await asyncio.sleep(0)
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0

        converged = sum(
            1
            for (code, _), j in zip(apps, joined)
            if j.participant.converged_with(server.session(code).ah.windows)
        )
        latency = obs.update_latencies()
        return {
            "sessions": sessions,
            "sim_seconds": sim_seconds,
            "host_join_wall_s": host_join_wall,
            "run_wall_s": wall,
            "run_cpu_s": cpu,
            "sessions_per_core": sessions * sim_seconds / cpu,
            "sessions_per_wall": sessions * sim_seconds / wall,
            "p95_update_s": latency.percentile(95),
            "mean_update_s": latency.mean(),
            "update_samples": latency.count,
            "converged": converged,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write results to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_sessions.json to gate against")
    parser.add_argument("--sessions", type=int, default=220)
    parser.add_argument("--sim-seconds", type=float, default=5.0)
    args = parser.parse_args(argv)

    obs = Instrumentation()
    run = asyncio.run(run_bench(args.sessions, args.sim_seconds, obs))
    results = {
        "bench": "session-server",
        "gate": {
            "min_sessions": 200,
            "min_sessions_per_core": 60.0,
            "max_p95_update_s": 0.5,
        },
        "run": run,
    }

    print(
        f"{run['sessions']} sessions x {run['sim_seconds']:.1f}s virtual:"
        f" hosted+joined in {run['host_join_wall_s']:.2f}s wall"
    )
    print(
        f"  capacity: {run['sessions_per_core']:.1f} session-s/core-s"
        f" ({run['sessions_per_wall']:.1f} per wall-s,"
        f" cpu {run['run_cpu_s']:.2f}s / wall {run['run_wall_s']:.2f}s)"
    )
    print(
        f"  update latency: p95 {run['p95_update_s'] * 1e3:.1f} ms"
        f" (mean {run['mean_update_s'] * 1e3:.1f} ms,"
        f" n={run['update_samples']})"
    )
    print(f"  converged: {run['converged']}/{run['sessions']}")

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.baseline:
        gate = json.loads(args.baseline.read_text()).get("gate", {})
        failures = []
        if run["sessions"] < gate.get("min_sessions", 200):
            failures.append(
                f"hosted {run['sessions']} sessions,"
                f" gate needs >= {gate['min_sessions']}"
            )
        floor = float(gate.get("min_sessions_per_core", 0.0))
        if run["sessions_per_core"] < floor:
            failures.append(
                f"{run['sessions_per_core']:.1f} session-s/core-s"
                f" below the {floor:.1f} floor"
            )
        cap = float(gate.get("max_p95_update_s", float("inf")))
        if run["p95_update_s"] > cap:
            failures.append(
                f"p95 update latency {run['p95_update_s']:.3f}s"
                f" above the {cap:.3f}s cap"
            )
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}")
            return 1
        print(
            f"gate ok: {run['sessions']} sessions,"
            f" {run['sessions_per_core']:.1f} session-s/core-s,"
            f" p95 {run['p95_update_s']:.3f}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
