"""E4 — backlog-aware coalescing prevents screen latency (section 7).

"Application hosts shouldn't blindly send every screen update ... only
send the most recent screen data when there is no backlog.  This will
prevent screen latency for rapidly-changing images."

A 30 fps animation is pushed into a 2 Mb/s TCP path.  With coalescing,
blocked frames merge and the freshest pixels ship when the pipe clears;
without it, every stale frame queues behind the bottleneck and display
lag grows unboundedly.  Staleness = (send time - capture time) of each
transmitted packet.
"""

import pytest

from repro.apps.animation import AnimationApp
from repro.obs import Instrumentation
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from sessions import run_rounds, tcp_session

SECONDS = 6.0
DT = 1 / 30


def _animation_session(coalescing: bool):
    config = SharingConfig(backlog_coalescing=coalescing, adaptive_codec=True)
    obs = Instrumentation()
    clock, ah, participant = tcp_session(
        config=config, bandwidth_bps=2_000_000, send_buffer=64 * 1024,
        instrumentation=obs,
    )
    win = ah.windows.create_window(Rect(0, 0, 480, 360))
    ah.apps.attach(AnimationApp(win, fps=30, balls=4))
    rounds = int(SECONDS / DT)
    run_rounds(clock, ah, [participant], rounds, dt=DT)
    scheduler = ah.sessions["p1"].scheduler
    # The scheduler's staleness histogram is maintained by the shared
    # Instrumentation — no hand-built recorder needed.
    (staleness,) = obs.registry.find(
        "scheduler.update_staleness_seconds", peer="p1"
    )
    return scheduler, staleness


@pytest.mark.parametrize("mode", ["coalescing", "queue-all"])
def test_rapid_animation_latency(benchmark, experiment, mode):
    recorder = experiment("E4", "backlog coalescing vs queue-all (30fps anim, 2Mb/s)")
    scheduler, staleness = benchmark.pedantic(
        _animation_session, args=(mode == "coalescing",), rounds=1, iterations=1
    )
    summary = staleness.summary()
    recorder.row(
        mode=mode,
        packets_sent=scheduler.packets_sent,
        frames_coalesced=scheduler.frames_coalesced,
        queue_left=scheduler.queue_depth,
        staleness_p50_ms=summary["p50"] * 1000,
        staleness_p95_ms=summary["p95"] * 1000,
        staleness_max_ms=summary["max"] * 1000,
    )
