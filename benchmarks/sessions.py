"""Shared session builders for the benchmark experiments.

Every builder accepts ``instrumentation=``: pass an
:class:`repro.Instrumentation` built on no clock (the builder binds it
to the session clock) and the whole stack — scheduler, RTP, jitter
buffer, rate control, channels — reports into one snapshot.
"""

from __future__ import annotations

from repro.net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.sharing.participant import Participant
from repro.sharing.transport import DatagramTransport, StreamTransport


def tcp_session(
    config: SharingConfig | None = None,
    delay: float = 0.01,
    bandwidth_bps: int = 0,
    send_buffer: int = 256 * 1024,
    screen=(1280, 1024),
    instrumentation=None,
):
    """(clock, ah, participant) over one simulated TCP link."""
    clock = SimulatedClock()
    if instrumentation is not None:
        instrumentation.bind_clock(clock)
    cfg = config or SharingConfig()
    ah = ApplicationHost(
        screen_width=screen[0], screen_height=screen[1], config=cfg,
        clock=clock, instrumentation=instrumentation,
    )
    link = duplex_reliable(
        ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps),
        clock.now,
        send_buffer=send_buffer,
        instrumentation=instrumentation,
    )
    ah.add_participant("p1", StreamTransport(link.forward, link.backward))
    participant = Participant(
        "p1",
        StreamTransport(link.backward, link.forward),
        clock=clock,
        config=cfg,
        instrumentation=instrumentation,
    )
    participant.join()
    return clock, ah, participant


def udp_session(
    config: SharingConfig | None = None,
    delay: float = 0.02,
    loss_rate: float = 0.0,
    seed: int = 0,
    rate_bps: int | None = None,
    reorder_wait: float = 0.25,
    instrumentation=None,
):
    """(clock, ah, participant) over one simulated UDP path."""
    clock = SimulatedClock()
    if instrumentation is not None:
        instrumentation.bind_clock(clock)
    cfg = config or SharingConfig()
    ah = ApplicationHost(
        config=cfg, clock=clock, instrumentation=instrumentation
    )
    link = duplex_lossy(
        ChannelConfig(delay=delay, loss_rate=loss_rate, seed=seed), clock.now,
        instrumentation=instrumentation,
    )
    ah.add_participant(
        "p1", DatagramTransport(link.forward, link.backward), rate_bps=rate_bps
    )
    participant = Participant(
        "p1",
        DatagramTransport(link.backward, link.forward),
        clock=clock,
        config=cfg,
        ah_supports_retransmissions=cfg.retransmissions,
        reorder_wait=reorder_wait,
        instrumentation=instrumentation,
    )
    participant.join()
    return clock, ah, participant


def add_udp_participant(
    clock,
    ah,
    name: str,
    loss_rate: float = 0.0,
    delay: float = 0.02,
    seed: int = 0,
    rate_bps: int | None = None,
    instrumentation=None,
):
    obs = instrumentation if instrumentation is not None else ah.obs
    link = duplex_lossy(
        ChannelConfig(delay=delay, loss_rate=loss_rate, seed=seed), clock.now,
        instrumentation=obs.scoped(peer=name),
    )
    ah.add_participant(
        name, DatagramTransport(link.forward, link.backward), rate_bps=rate_bps
    )
    participant = Participant(
        name,
        DatagramTransport(link.backward, link.forward),
        clock=clock,
        config=ah.config,
        ah_supports_retransmissions=ah.config.retransmissions,
        instrumentation=obs,
    )
    participant.join()
    return participant


def add_tcp_participant(clock, ah, name: str, delay: float = 0.01,
                        bandwidth_bps: int = 0, instrumentation=None):
    obs = instrumentation if instrumentation is not None else ah.obs
    link = duplex_reliable(
        ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps), clock.now,
        instrumentation=obs.scoped(peer=name),
    )
    ah.add_participant(name, StreamTransport(link.forward, link.backward))
    participant = Participant(
        name,
        StreamTransport(link.backward, link.forward),
        clock=clock,
        config=ah.config,
        instrumentation=obs,
    )
    participant.join()
    return participant


def run_rounds(clock, ah, participants, rounds: int, dt: float = 0.02,
               per_round=None):
    for i in range(rounds):
        if per_round is not None:
            per_round(i)
        ah.advance(dt)
        clock.advance(dt)
        for participant in participants:
            participant.process_incoming()
