"""Shared session builders for the benchmark experiments."""

from __future__ import annotations

from repro.net.channel import ChannelConfig, duplex_lossy, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.sharing.participant import Participant
from repro.sharing.transport import DatagramTransport, StreamTransport


def tcp_session(
    config: SharingConfig | None = None,
    delay: float = 0.01,
    bandwidth_bps: int = 0,
    send_buffer: int = 256 * 1024,
    screen=(1280, 1024),
):
    """(clock, ah, participant) over one simulated TCP link."""
    clock = SimulatedClock()
    cfg = config or SharingConfig()
    ah = ApplicationHost(
        screen_width=screen[0], screen_height=screen[1], config=cfg,
        now=clock.now,
    )
    link = duplex_reliable(
        ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps),
        clock.now,
        send_buffer=send_buffer,
    )
    ah.add_participant("p1", StreamTransport(link.forward, link.backward))
    participant = Participant(
        "p1",
        StreamTransport(link.backward, link.forward),
        now=clock.now,
        config=cfg,
    )
    participant.join()
    return clock, ah, participant


def udp_session(
    config: SharingConfig | None = None,
    delay: float = 0.02,
    loss_rate: float = 0.0,
    seed: int = 0,
    rate_bps: int | None = None,
    reorder_wait: float = 0.25,
):
    """(clock, ah, participant) over one simulated UDP path."""
    clock = SimulatedClock()
    cfg = config or SharingConfig()
    ah = ApplicationHost(config=cfg, now=clock.now)
    link = duplex_lossy(
        ChannelConfig(delay=delay, loss_rate=loss_rate, seed=seed), clock.now
    )
    ah.add_participant(
        "p1", DatagramTransport(link.forward, link.backward), rate_bps=rate_bps
    )
    participant = Participant(
        "p1",
        DatagramTransport(link.backward, link.forward),
        now=clock.now,
        config=cfg,
        ah_supports_retransmissions=cfg.retransmissions,
        reorder_wait=reorder_wait,
    )
    participant.join()
    return clock, ah, participant


def add_udp_participant(
    clock,
    ah,
    name: str,
    loss_rate: float = 0.0,
    delay: float = 0.02,
    seed: int = 0,
    rate_bps: int | None = None,
):
    link = duplex_lossy(
        ChannelConfig(delay=delay, loss_rate=loss_rate, seed=seed), clock.now
    )
    ah.add_participant(
        name, DatagramTransport(link.forward, link.backward), rate_bps=rate_bps
    )
    participant = Participant(
        name,
        DatagramTransport(link.backward, link.forward),
        now=clock.now,
        config=ah.config,
        ah_supports_retransmissions=ah.config.retransmissions,
    )
    participant.join()
    return participant


def add_tcp_participant(clock, ah, name: str, delay: float = 0.01,
                        bandwidth_bps: int = 0):
    link = duplex_reliable(
        ChannelConfig(delay=delay, bandwidth_bps=bandwidth_bps), clock.now
    )
    ah.add_participant(name, StreamTransport(link.forward, link.backward))
    participant = Participant(
        name,
        StreamTransport(link.backward, link.forward),
        now=clock.now,
        config=ah.config,
    )
    participant.join()
    return participant


def run_rounds(clock, ah, participants, rounds: int, dt: float = 0.02,
               per_round=None):
    for i in range(rounds):
        if per_round is not None:
            per_round(i)
        ah.advance(dt)
        clock.advance(dt)
        for participant in participants:
            participant.process_incoming()
