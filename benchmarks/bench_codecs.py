"""E1 — codec suitability per content class (section 4.2).

The draft's claim: lossless PNG is "more suitable for computer
generated images", a JPEG-class lossy codec for photographic ones.
Rows report compressed size, ratio, and codec speed per (codec,
content) pair, plus the per-row adaptive-filter ablation the PNG
encoder exposes.
"""

import pytest

from repro.apps.photo import synthetic_photo, ui_screenshot
from repro.codecs import LossyDctCodec, PngCodec, RawCodec, ZlibCodec

SIZE = (480, 640)  # height, width

CONTENT = {
    "ui-screenshot": ui_screenshot(SIZE[1], SIZE[0], seed=1),
    "photo": synthetic_photo(SIZE[1], SIZE[0], seed=1),
}

CODECS = {
    "raw": RawCodec(),
    "zlib": ZlibCodec(),
    "png": PngCodec(),
    "lossy-dct-q75": LossyDctCodec(quality=75),
}


@pytest.mark.parametrize("content_name", sorted(CONTENT))
@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_encode(benchmark, experiment, codec_name, content_name):
    recorder = experiment("E1", "codec suitability per content class")
    codec = CODECS[codec_name]
    pixels = CONTENT[content_name]
    encoded = benchmark(codec.encode, pixels)
    ratio = pixels.nbytes / len(encoded)
    row = dict(
        codec=codec_name,
        content=content_name,
        raw_kib=pixels.nbytes / 1024,
        encoded_kib=len(encoded) / 1024,
        ratio=ratio,
        lossless=codec.lossless,
    )
    if not codec.lossless:
        row["psnr_db"] = codec.psnr(pixels, codec.decode(encoded))
    recorder.row(**row)


@pytest.mark.parametrize("content_name", sorted(CONTENT))
def test_decode_png(benchmark, content_name):
    codec = PngCodec()
    encoded = codec.encode(CONTENT[content_name])
    benchmark(codec.decode, encoded)


@pytest.mark.parametrize(
    "mode", ["adaptive", "fixed-none", "fixed-up", "fixed-paeth"]
)
def test_png_filter_ablation(benchmark, experiment, mode):
    """DESIGN.md ablation: per-row MSAD heuristic vs fixed filters."""
    from repro.codecs.png import FILTER_NONE, FILTER_PAETH, FILTER_UP

    recorder = experiment("E1a", "PNG filter-selection ablation (UI frame)")
    fixed = {
        "fixed-none": FILTER_NONE,
        "fixed-up": FILTER_UP,
        "fixed-paeth": FILTER_PAETH,
    }
    if mode == "adaptive":
        codec = PngCodec(adaptive_filter=True)
    else:
        codec = PngCodec(adaptive_filter=False, fixed_filter=fixed[mode])
    pixels = CONTENT["ui-screenshot"]
    encoded = benchmark(codec.encode, pixels)
    recorder.row(
        filter_mode=mode,
        encoded_kib=len(encoded) / 1024,
        ratio=pixels.nbytes / len(encoded),
    )


@pytest.mark.parametrize("quality", [20, 50, 75, 95])
def test_lossy_quality_sweep(benchmark, experiment, quality):
    recorder = experiment("E1b", "lossy quality/rate sweep (photo frame)")
    codec = LossyDctCodec(quality=quality)
    pixels = CONTENT["photo"]
    encoded = benchmark(codec.encode, pixels)
    recorder.row(
        quality=quality,
        encoded_kib=len(encoded) / 1024,
        ratio=pixels.nbytes / len(encoded),
        psnr_db=codec.psnr(pixels, codec.decode(encoded)),
    )
