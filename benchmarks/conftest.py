"""Benchmark harness plumbing.

Experiments record result rows through the ``experiment`` fixture; a
terminal-summary hook prints one table per experiment id at the end of
the run (so ``pytest benchmarks/ --benchmark-only`` shows the
paper-style rows even with output capture on).
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.obs import Instrumentation

_ROWS: "OrderedDict[str, list[dict]]" = OrderedDict()


@pytest.fixture
def instrumentation():
    """A fresh Instrumentation; the session builders bind its clock."""
    return Instrumentation()


def snapshot_fields(snap: dict, *names: str) -> dict:
    """Flatten selected metric totals from a snapshot into row fields.

    Each ``name`` is summed across label sets (``scheduler.bytes_sent``
    matches every ``scheduler.bytes_sent{...}`` series), so experiment
    rows can quote session-wide totals without hand-walking the dict.
    """
    out: dict[str, float] = {}
    for name in names:
        total = 0
        prefix = name + "{"
        for table in ("counters", "gauges"):
            for key, value in snap.get(table, {}).items():
                if key == name or key.startswith(prefix):
                    total += value
        out[name] = total
    return out


class ExperimentRecorder:
    """Accumulates labelled result rows for one experiment id."""

    def __init__(self, experiment_id: str, title: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        key = f"{experiment_id} — {title}"
        self._rows = _ROWS.setdefault(key, [])

    def row(self, **fields) -> None:
        self._rows.append(fields)


@pytest.fixture
def experiment():
    """Factory: ``experiment("E3", "MoveRectangle vs re-encode")``."""
    return ExperimentRecorder


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("EXPERIMENT RESULTS (paper-style rows; see EXPERIMENTS.md)")
    write("=" * 78)
    for key, rows in _ROWS.items():
        if not rows:
            continue
        write("")
        write(f"--- {key} ---")
        columns: list[str] = []
        for row in rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        widths = {
            c: max(len(c), *(len(_format_value(r.get(c, ""))) for r in rows))
            for c in columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        write(header)
        write("-" * len(header))
        for row in rows:
            write(
                "  ".join(
                    _format_value(row.get(c, "")).ljust(widths[c])
                    for c in columns
                )
            )
    write("")
