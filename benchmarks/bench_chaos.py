"""Chaos benchmark: kill a mid-tree relay, measure reconvergence.

Exercises the ``repro.health`` failure-handling path end to end: one
AH feeds a 2-level relay tree (``--fanout`` roots, ``--fanout`` leaves
each, ``--viewers-per-leaf`` viewers per leaf) over 2%-lossy hops,
then a scripted **crash** kills one level-0 relay mid-run — orphaning
a third of the audience behind its child relays.

What must happen next, with no operator in the loop:

1. each orphaned leaf relay's upstream :class:`LivenessTracker` marks
   the dead parent after ``dead_after`` seconds of silence;
2. :meth:`RelayTree.failover_orphans` re-parents the orphans onto the
   nearest alive ancestor (here: the AH) and forces a PLI resync;
3. the AH's own liveness evicts the crashed relay's destination, so
   egress toward the corpse stops;
4. viewers behind the orphaned subtree resynchronise onto the new
   stream (new SSRC + sequence space) and end the run gap-free.

Viewers are the same feedback-faithful :class:`SimViewer` the fan-out
benchmark uses, extended with RFC 3550-style SSRC-change resets so the
post-failover stream restarts their gap tracking.

Headline numbers: fraction of orphaned viewers that reconverge, the
p50/p95 recovery time (crash → orphaned viewer gap-free on the new
stream), failover count, and the unaffected subtrees' health.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --json BENCH_chaos.new.json --baseline BENCH_chaos.json

Exits non-zero when fewer than ``gate.min_reconverged_fraction`` of
the orphaned viewers reconverge, recovery-time p95 exceeds
``gate.max_recovery_p95_s`` virtual seconds, the failover machinery
did not fire, or the unaffected viewers dropped below
``gate.min_unaffected_fraction`` complete.  Refresh the committed seed
with ``--json BENCH_chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.text_editor import TextEditorApp  # noqa: E402
from repro.health.liveness import LivenessConfig  # noqa: E402
from repro.net.channel import ChannelConfig  # noqa: E402
from repro.relay import build_relay_tree  # noqa: E402
from repro.relay.node import RelayConfig  # noqa: E402
from repro.relay.tree import duplex_transport_pair  # noqa: E402
from repro.rtp.clock import SimulatedClock  # noqa: E402
from repro.rtp.feedback import (  # noqa: E402
    PictureLossIndication,
    nacks_for,
)
from repro.rtp.packet import RtpPacket  # noqa: E402
from repro.rtp.reports import RtcpReporter  # noqa: E402
from repro.rtp.session import RtpReceiver  # noqa: E402
from repro.sharing.ah import ApplicationHost  # noqa: E402
from repro.sharing.config import PT_REMOTING, SharingConfig  # noqa: E402
from repro.sharing.recovery import RecoveryManager  # noqa: E402
from repro.sharing.transport import is_rtcp  # noqa: E402
from repro.surface.geometry import Rect  # noqa: E402

DT = 0.05  # virtual seconds per simulation round
LOSS = 0.02  # loss rate on every hop
EDIT_EVERY = 0.5  # virtual seconds between edits
SCREEN = (320, 240)
WINDOW = Rect(8, 8, 280, 200)

#: Relay-tier silence thresholds: a parent silent for 2.5 virtual
#: seconds is dead (healthy links carry media + RTCP far more often).
RELAY_LIVENESS = LivenessConfig(suspect_after=1.0, dead_after=2.5)
#: AH-tier thresholds for evicting the crashed relay's destination.
AH_LIVENESS = LivenessConfig(suspect_after=2.0, dead_after=5.0)


class SimViewer:
    """A feedback-faithful viewer that survives an upstream failover.

    Real :class:`RtpReceiver` + :class:`RecoveryManager` (loss is
    detected, NACKed, retried and given up exactly like a
    participant), plus the RFC 3550 restart rule: a new media SSRC
    resets the per-stream state, because the post-failover parent is a
    different RTP sender.
    """

    __slots__ = (
        "transport", "receiver", "recovery", "now", "ssrc", "media_ssrc",
        "reporter", "nacks_sent", "plis_sent", "streams_seen",
    )

    def __init__(self, transport, now, ssrc: int,
                 rtcp_interval: float) -> None:
        self.transport = transport
        self.now = now
        self.receiver = RtpReceiver(now=now)
        self.recovery = RecoveryManager(now=now)
        self.ssrc = ssrc
        self.media_ssrc = 0
        # The liveness heartbeat: without periodic RRs a loss-free
        # viewer sends nothing and the leaf relay's silence thresholds
        # would (correctly!) evict it.
        self.reporter = RtcpReporter(
            now, receiver=self.receiver, cname=f"viewer/{ssrc}",
            interval=rtcp_interval, rng=random.Random(ssrc),
        )
        self.nacks_sent = 0
        self.plis_sent = 0
        self.streams_seen = 0

    def join(self) -> None:
        self.transport.send_packet(
            PictureLossIndication(self.ssrc, self.media_ssrc).encode()
        )
        self.plis_sent += 1

    def _reset_stream(self, new_ssrc: int) -> None:
        self.media_ssrc = new_ssrc
        self.receiver = RtpReceiver(now=self.now)
        self.recovery = RecoveryManager(now=self.now)
        self.reporter.receiver = self.receiver
        self.streams_seen += 1

    def pump(self) -> None:
        for raw in self.transport.receive_packets():
            if is_rtcp(raw):
                continue
            try:
                packet = RtpPacket.decode(raw)
            except Exception:
                continue
            if packet.payload_type != PT_REMOTING:
                continue
            if packet.ssrc != self.media_ssrc:
                self._reset_stream(packet.ssrc)
            self.recovery.note_arrival(packet.sequence_number)
            self.receiver.receive(packet)
        actions = self.recovery.poll(self.receiver.missing_sequence_numbers())
        if actions.nack_now:
            nack = nacks_for(self.ssrc, self.media_ssrc, actions.nack_now)
            if nack is not None:
                self.transport.send_packet(nack.encode())
                self.nacks_sent += 1
        for seq in actions.gave_up:
            self.receiver.gaps.acknowledge(seq)
        report = self.reporter.poll()
        if report is not None:
            self.transport.send_packet(report)

    @property
    def complete(self) -> bool:
        return (
            self.receiver.packets_received > 0
            and not self.receiver.missing_sequence_numbers()
        )


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_chaos(fanout: int, viewers_per_leaf: int, crash_at: float,
              sim_seconds: float) -> dict:
    clock = SimulatedClock()
    ah = ApplicationHost(
        screen_width=SCREEN[0], screen_height=SCREEN[1],
        config=SharingConfig(adaptive_codec=False),
        clock=clock,
        liveness=AH_LIVENESS,
    )
    window = ah.windows.create_window(WINDOW)
    editor = TextEditorApp(window)
    ah.apps.attach(editor)

    tree = build_relay_tree(
        ah, clock, fanouts=(fanout, fanout), viewers_per_leaf=0,
        channel_config=ChannelConfig(delay=0.01, loss_rate=LOSS, seed=11),
        relay_config=RelayConfig(liveness=RELAY_LIVENESS),
    )
    victim = tree.levels[0][0]
    orphan_leaves = {
        relay.id for relay in tree.leaves
        if tree.parent_of[relay.id] == victim.id
    }

    rng = random.Random(97)
    viewers: list[SimViewer] = []
    orphaned: list[SimViewer] = []
    link_seed = 100_000
    for leaf in tree.leaves:
        for i in range(viewers_per_leaf):
            near, far = duplex_transport_pair(
                ChannelConfig(delay=0.01, loss_rate=LOSS, seed=link_seed),
                clock.now,
            )
            link_seed += 2
            leaf.add_downstream(f"{leaf.id}/v{i}", near)
            viewer = SimViewer(
                far, clock.now, rng.randrange(1, 1 << 32),
                rtcp_interval=RELAY_LIVENESS.dead_after / 3.0,
            )
            viewer.join()
            viewers.append(viewer)
            if leaf.id in orphan_leaves:
                orphaned.append(viewer)

    cpu0 = time.process_time()
    crashed = False
    recovery_times: dict[int, float] = {}
    packets_at_crash: dict[int, int] = {}
    t_end = clock.now() + sim_seconds
    edit_until = t_end - 5.0  # quiet tail so gap-free is reachable
    next_edit = clock.now()
    while clock.now() < t_end:
        now = clock.now()
        if not crashed and now >= crash_at:
            victim.crash()
            crashed = True
            for index, viewer in enumerate(orphaned):
                packets_at_crash[index] = viewer.receiver.packets_received
        if now <= edit_until and now >= next_edit:
            editor.type_text(f"[{now:6.2f}] shared edit line\n")
            next_edit += EDIT_EVERY
        ah.advance(DT)
        tree.pump()  # includes failover_orphans()
        ah.poll_liveness()
        for viewer in viewers:
            viewer.pump()
        if crashed:
            for index, viewer in enumerate(orphaned):
                if index in recovery_times:
                    continue
                if (
                    viewer.streams_seen > 1
                    and viewer.receiver.packets_received > 0
                    and viewer.complete
                ):
                    recovery_times[index] = clock.now() - crash_at
        clock.advance(DT)
    cpu = time.process_time() - cpu0

    unaffected = [v for v in viewers if v not in orphaned]
    reconverged = sum(
        1 for index, viewer in enumerate(orphaned)
        if viewer.streams_seen > 1 and viewer.complete
    )
    times = sorted(recovery_times.values())
    return {
        "viewers": len(viewers),
        "orphaned_viewers": len(orphaned),
        "reconverged_viewers": reconverged,
        "unaffected_viewers": len(unaffected),
        "unaffected_complete": sum(1 for v in unaffected if v.complete),
        "failovers": sum(r.failovers for r in tree.relays),
        "failover_log": [list(entry) for entry in tree.failover_log],
        "downstreams_pruned": sum(r.downstreams_pruned for r in tree.relays),
        "ah_participants_evicted": ah.participants_evicted,
        "recovery_times": times,
        "recovery_p50_s": percentile(times, 0.50),
        "recovery_p95_s": percentile(times, 0.95),
        "cpu_s": cpu,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write results to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_chaos.json to gate against")
    parser.add_argument("--fanout", type=int, default=3,
                        help="relays per level (tree is fanout x fanout)")
    parser.add_argument("--viewers-per-leaf", type=int, default=12)
    parser.add_argument("--crash-at", type=float, default=6.0,
                        help="virtual seconds before the level-0 crash")
    parser.add_argument("--sim-seconds", type=float, default=30.0)
    args = parser.parse_args(argv)

    run = run_chaos(
        args.fanout, args.viewers_per_leaf, args.crash_at, args.sim_seconds
    )
    reconverged_fraction = run["reconverged_viewers"] / max(
        1, run["orphaned_viewers"]
    )
    unaffected_fraction = run["unaffected_complete"] / max(
        1, run["unaffected_viewers"]
    )
    results = {
        "bench": "chaos-failover",
        "gate": {
            "min_reconverged_fraction": 0.99,
            "max_recovery_p95_s": 8.0,
            "min_failovers": 1,
            "min_unaffected_fraction": 0.99,
        },
        "run": {
            "sim_seconds": args.sim_seconds,
            "crash_at": args.crash_at,
            "loss_rate": LOSS,
            "reconverged_fraction": reconverged_fraction,
            "unaffected_fraction": unaffected_fraction,
            **run,
        },
    }

    print(
        f"chaos: crashed 1 of {args.fanout} level-0 relays at"
        f" t={args.crash_at:.1f}s, orphaning"
        f" {run['orphaned_viewers']}/{run['viewers']} viewers"
        f" behind {len(run['failover_log'])} leaf relays"
    )
    moves = ", ".join(
        f"{orphan}->{parent or 'AH'}" for orphan, parent in run["failover_log"]
    )
    print(
        f"failover: {run['failovers']} re-parents ({moves}),"
        f" {run['downstreams_pruned']} downstreams pruned,"
        f" {run['ah_participants_evicted']} AH eviction(s)"
    )
    print(
        f"reconvergence: {run['reconverged_viewers']}"
        f"/{run['orphaned_viewers']} orphans"
        f" ({reconverged_fraction:.1%}), recovery p50"
        f" {run['recovery_p50_s']:.2f}s / p95 {run['recovery_p95_s']:.2f}s;"
        f" unaffected {run['unaffected_complete']}"
        f"/{run['unaffected_viewers']} complete"
    )

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.baseline:
        gate = json.loads(args.baseline.read_text()).get("gate", {})
        failures = []
        for key, value, kind in (
            ("min_reconverged_fraction", reconverged_fraction, "floor"),
            ("max_recovery_p95_s", run["recovery_p95_s"], "cap"),
            ("min_failovers", run["failovers"], "floor"),
            ("min_unaffected_fraction", unaffected_fraction, "floor"),
        ):
            bound = gate.get(key)
            if bound is None:
                continue
            bound = float(bound)
            if kind == "floor" and value < bound:
                failures.append(f"{key}: {value:.3f} below the {bound} floor")
            if kind == "cap" and value > bound:
                failures.append(f"{key}: {value:.3f} above the {bound} cap")
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}")
            return 1
        print(
            f"gate ok: {reconverged_fraction:.1%} reconverged,"
            f" p95 {run['recovery_p95_s']:.2f}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
