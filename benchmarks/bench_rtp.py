"""E12 — RTP/RTCP substrate micro-costs.

Per-packet costs on the hot path: RTP header encode/decode, RFC 4571
stream deframing, Generic NACK BLP packing, and jitter-buffer insertion
— the fixed overheads every experiment above pays per packet.
"""

import random

import pytest

from repro.rtp.clock import SimulatedClock
from repro.rtp.feedback import pack_nack_entries
from repro.rtp.framing import StreamDeframer, frame_many
from repro.rtp.jitter_buffer import JitterBuffer
from repro.rtp.packet import RtpPacket
from repro.rtp.session import RtpSender

PAYLOAD = bytes(range(256)) * 4  # a typical 1 KiB fragment


def test_rtp_encode(benchmark, experiment):
    recorder = experiment("E12", "RTP/RTCP substrate micro-costs")
    packet = RtpPacket(99, 1000, 123456, 42, PAYLOAD, marker=True)
    encoded = benchmark(packet.encode)
    recorder.row(operation="rtp-encode-1KiB", wire_bytes=len(encoded))


def test_rtp_decode(benchmark, experiment):
    recorder = experiment("E12", "RTP/RTCP substrate micro-costs")
    data = RtpPacket(99, 1000, 123456, 42, PAYLOAD, marker=True).encode()
    decoded = benchmark(RtpPacket.decode, data)
    assert decoded.payload == PAYLOAD
    recorder.row(operation="rtp-decode-1KiB", wire_bytes=len(data))


def test_stream_deframe(benchmark, experiment):
    recorder = experiment("E12", "RTP/RTCP substrate micro-costs")
    packets = [
        RtpPacket(99, seq, seq, 42, PAYLOAD).encode() for seq in range(64)
    ]
    stream = frame_many(packets)

    def deframe():
        deframer = StreamDeframer()
        return deframer.feed(stream)

    out = benchmark(deframe)
    assert len(out) == 64
    recorder.row(operation="rfc4571-deframe-64pkt", wire_bytes=len(stream))


def test_nack_packing(benchmark, experiment):
    recorder = experiment("E12", "RTP/RTCP substrate micro-costs")
    rng = random.Random(5)
    missing = sorted(rng.sample(range(4096), 200))

    entries = benchmark(pack_nack_entries, missing)
    covered = set()
    for entry in entries:
        covered.update(entry.sequence_numbers())
    assert set(missing) <= covered
    recorder.row(
        operation="nack-blp-pack-200-losses",
        wire_bytes=4 * len(entries) + 12,
    )


def test_jitter_buffer_churn(benchmark, experiment):
    recorder = experiment("E12", "RTP/RTCP substrate micro-costs")
    clock = SimulatedClock()
    sender = RtpSender(99, now=clock.now, rng=random.Random(1))
    packets = [sender.next_packet(b"x" * 64) for _ in range(256)]
    # Lightly shuffled arrival order.
    order = list(range(256))
    rng = random.Random(2)
    for i in range(0, 250, 5):
        j = i + rng.randrange(5)
        order[i], order[j] = order[j], order[i]

    def churn():
        buf = JitterBuffer(now=clock.now, max_wait=1.0)
        released = 0
        for index in order:
            buf.insert(packets[index])
            released += len(buf.pop_ready())
        return released

    released = benchmark(churn)
    assert released == 256
    recorder.row(operation="jitter-buffer-256pkt-reordered", wire_bytes="-")
