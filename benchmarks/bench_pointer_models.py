"""E13 — the two mouse-pointer models under cursor motion (section 4.2).

"Mouse pointer images can be transmitted as RegionUpdate messages or
they may be transmitted seperately as MousePointerInfo messages."
A participant waves the mouse across the shared window; rows compare
the bytes each model spends.  Explicit mode ships 12-byte position
messages; in-band mode re-encodes the pixels under the old and new
pointer footprints every move.
"""

import pytest

from repro.apps.whiteboard import WhiteboardApp
from repro.sharing.config import PointerMode, SharingConfig
from repro.surface.geometry import Rect

from sessions import run_rounds, tcp_session

MOVES = 120


def _wave_session(mode: PointerMode):
    config = SharingConfig(pointer_mode=mode, adaptive_codec=False)
    clock, ah, participant = tcp_session(config=config)
    win = ah.windows.create_window(Rect(50, 50, 500, 400))
    ah.apps.attach(WhiteboardApp(win))
    run_rounds(clock, ah, [participant], 30)
    base = ah.total_bytes_sent()
    step = 0

    def drive(i):
        nonlocal step
        if i % 2 == 0 and step < MOVES:
            x = 10 + (step * 7) % 480
            y = 10 + (step * 5) % 380
            participant.move_mouse(win.window_id, x, y)
            step += 1

    run_rounds(clock, ah, [participant], MOVES * 2 + 40, per_round=drive)
    run_rounds(clock, ah, [participant], 40)
    return ah, participant, ah.total_bytes_sent() - base


@pytest.mark.parametrize("mode", [PointerMode.EXPLICIT, PointerMode.IN_BAND])
def test_pointer_motion_cost(benchmark, experiment, mode):
    recorder = experiment("E13", "pointer models under cursor motion")
    ah, participant, sent = benchmark.pedantic(
        _wave_session, args=(mode,), rounds=1, iterations=1
    )
    recorder.row(
        model=mode.value,
        moves=MOVES,
        pointer_msgs=participant.stats.pointer.packets,
        pointer_kib=participant.stats.pointer.wire_bytes / 1024,
        update_kib=participant.stats.region_update.wire_bytes / 1024,
        total_sent_kib=sent / 1024,
        bytes_per_move=sent / MOVES,
    )
