"""E10 — BFCP floor moderation: FIFO fairness and grant latency (App. A).

Eight participants contend for the HID floor; each holds it briefly and
releases.  Rows verify strict FIFO service order and report the grant
processing cost.
"""

import pytest

from repro.bfcp.client import FloorControlClient
from repro.bfcp.messages import BfcpMessage
from repro.bfcp.server import FloorControlServer
from repro.rtp.clock import SimulatedClock

CONTENDERS = 8


def _contention_round():
    clock = SimulatedClock()
    server = FloorControlServer(now=clock.now)
    clients = {}
    to_server: list[tuple[str, bytes]] = []
    for i in range(CONTENDERS):
        name = f"p{i}"
        clients[name] = FloorControlClient(
            user_id=i + 1,
            send=lambda data, n=name: to_server.append((n, data)),
        )

    grant_order: list[str] = []

    def pump():
        while to_server:
            name, data = to_server.pop(0)
            server.handle_message(name, data)
        for name, data in server.drain_outbound():
            clients[name].handle_message(data)

    # Everyone requests in order.
    for name in clients:
        clients[name].request()
        pump()

    # Serve the queue: each holder releases as soon as granted.
    for _ in range(CONTENDERS):
        holder = server.holder_participant()
        assert holder is not None
        grant_order.append(holder)
        clients[holder].release()
        pump()
    return grant_order, clients


def test_fifo_service(benchmark, experiment):
    recorder = experiment("E10", "BFCP floor moderation (8 contenders)")
    grant_order, clients = benchmark.pedantic(
        _contention_round, rounds=1, iterations=1
    )
    expected = [f"p{i}" for i in range(CONTENDERS)]
    assert grant_order == expected, "FIFO order violated"
    recorder.row(
        contenders=CONTENDERS,
        fifo_order_preserved=grant_order == expected,
        grants_delivered=sum(c.grants_received for c in clients.values()),
    )


def test_message_codec_throughput(benchmark, experiment):
    recorder = experiment("E10", "BFCP floor moderation (8 contenders)")
    from repro.bfcp.messages import floor_request_status

    message = floor_request_status(1, 2, 3, 4, status=3, hid_status=3)
    encoded = message.encode()

    def roundtrip():
        return BfcpMessage.decode(encoded)

    decoded = benchmark(roundtrip)
    assert decoded.primitive == message.primitive
    recorder.row(
        contenders="-",
        fifo_order_preserved="-",
        grants_delivered=f"codec roundtrip, {len(encoded)}B msg",
    )
