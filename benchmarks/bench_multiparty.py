"""E8 — one AH, many participants, mixed transports (section 4.2).

"The AH can share an application to TCP participants, UDP participants,
and several multicast addresses in the same sharing session."  Scales
the participant count and reports AH egress and service time per frame.
Unicast egress grows linearly; a multicast group encodes once per
update regardless of group size.
"""

import time

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.net.channel import ChannelConfig
from repro.net.multicast import MulticastGroup
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.sharing.participant import Participant
from repro.sharing.transport import (
    MulticastReceiverTransport,
    MulticastSenderTransport,
)
from repro.surface.geometry import Rect

from sessions import add_tcp_participant, add_udp_participant

ROUNDS = 120


def _unicast_fleet(n: int):
    clock = SimulatedClock()
    ah = ApplicationHost(config=SharingConfig(), clock=clock.now)
    win = ah.windows.create_window(Rect(0, 0, 400, 300))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)
    participants = []
    for i in range(n):
        if i % 2 == 0:
            participants.append(add_tcp_participant(clock, ah, f"tcp-{i}"))
        else:
            participants.append(
                add_udp_participant(clock, ah, f"udp-{i}", seed=i)
            )
    wall_start = time.perf_counter()
    for i in range(ROUNDS):
        if i % 4 == 0:
            editor.type_text(f"round {i}\n")
        ah.advance(0.02)
        clock.advance(0.02)
        for participant in participants:
            participant.process_incoming()
    wall = time.perf_counter() - wall_start
    assert all(p.converged_with(ah.windows) for p in participants)
    return ah, wall


@pytest.mark.parametrize("n", [1, 4, 8, 16])
def test_unicast_scaling(benchmark, experiment, n):
    recorder = experiment("E8", "participant scaling: unicast vs multicast")
    ah, wall = benchmark.pedantic(_unicast_fleet, args=(n,), rounds=1,
                                  iterations=1)
    recorder.row(
        mode="unicast-mixed",
        participants=n,
        egress_kib=ah.total_bytes_sent() / 1024,
        egress_kib_per_participant=ah.total_bytes_sent() / 1024 / n,
        ah_wall_ms_per_frame=wall * 1000 / ROUNDS,
    )


def _multicast_fleet(n: int):
    clock = SimulatedClock()
    ah = ApplicationHost(config=SharingConfig(), clock=clock.now)
    win = ah.windows.create_window(Rect(0, 0, 400, 300))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)
    group = MulticastGroup(ChannelConfig(delay=0.01), clock.now)
    ah.add_participant("group", MulticastSenderTransport(group), is_group=True)
    from repro.net.channel import duplex_lossy

    participants = []
    feedbacks = []
    for i in range(n):
        member = group.subscribe(f"m{i}")
        feedback = duplex_lossy(ChannelConfig(delay=0.01, seed=i), clock.now)
        feedbacks.append(feedback)
        participant = Participant(
            f"m{i}",
            MulticastReceiverTransport(member, feedback.backward),
            clock=clock.now,
            config=ah.config,
        )
        participant.join()
        participants.append(participant)

    session = ah.sessions["group"]
    wall_start = time.perf_counter()
    for i in range(ROUNDS):
        for feedback in feedbacks:
            for packet in feedback.backward.receive_ready():
                ah._handle_rtcp(session, packet)
        if i % 4 == 0:
            editor.type_text(f"round {i}\n")
        ah.advance(0.02)
        clock.advance(0.02)
        for participant in participants:
            participant.process_incoming()
    wall = time.perf_counter() - wall_start
    assert all(p.converged_with(ah.windows) for p in participants)
    return ah, wall


@pytest.mark.parametrize("n", [4, 16])
def test_multicast_scaling(benchmark, experiment, n):
    recorder = experiment("E8", "participant scaling: unicast vs multicast")
    ah, wall = benchmark.pedantic(_multicast_fleet, args=(n,), rounds=1,
                                  iterations=1)
    recorder.row(
        mode="multicast",
        participants=n,
        egress_kib=ah.total_bytes_sent() / 1024,
        egress_kib_per_participant=ah.total_bytes_sent() / 1024 / n,
        ah_wall_ms_per_frame=wall * 1000 / ROUNDS,
    )
