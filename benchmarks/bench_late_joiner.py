"""E6 — late-joiner bootstrap cost (sections 4.3/4.4).

A session runs for a while, then a new participant joins.  UDP joiners
send a PLI and receive WindowManagerInfo plus the full shared image;
TCP joiners get the same sync on connect.  Rows report the time and
bytes from join to the first pixel-exact convergence, as the amount of
pre-join history grows (history should NOT matter — the joiner pays for
current state only).
"""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from sessions import add_tcp_participant, add_udp_participant, run_rounds, udp_session


def _late_join(history_rounds: int, transport: str):
    clock, ah, early = udp_session(config=SharingConfig(), seed=3)
    win = ah.windows.create_window(Rect(30, 30, 500, 380))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)

    def drive(i):
        if i % 4 == 0:
            editor.type_text(f"history row {i}\n")

    run_rounds(clock, ah, [early], history_rounds, per_round=drive)

    join_time = clock.now()
    if transport == "udp":
        late = add_udp_participant(clock, ah, "late", seed=9)
    else:
        late = add_tcp_participant(clock, ah, "late")

    converge_time = None
    for _ in range(400):
        ah.advance(0.02)
        clock.advance(0.02)
        early.process_incoming()
        late.process_incoming()
        if converge_time is None and late.converged_with(ah.windows):
            converge_time = clock.now()
            break
    assert converge_time is not None, "late joiner never converged"
    # Everything this session ever sent IS the joiner's sync cost
    # (the TCP connect-time refresh included).
    sync_bytes = ah.sessions["late"].scheduler.bytes_sent
    return converge_time - join_time, sync_bytes


@pytest.mark.parametrize("history_rounds", [50, 200, 600])
@pytest.mark.parametrize("transport", ["udp", "tcp"])
def test_late_joiner(benchmark, experiment, history_rounds, transport):
    recorder = experiment("E6", "late-joiner sync cost vs session history")
    sync_seconds, sync_bytes = benchmark.pedantic(
        _late_join, args=(history_rounds, transport), rounds=1, iterations=1
    )
    recorder.row(
        transport=transport,
        history_s=history_rounds * 0.02,
        time_to_sync_s=sync_seconds,
        sync_kib=sync_bytes / 1024,
    )
