"""Capture→encode hot-path benchmark + regression gate.

Measures the vectorised pipeline against the retained scalar reference
**on the same machine, in the same run**, so the headline number — the
encode speedup ratio — is hardware-independent and can be gated in CI
(same pattern as the BENCH_trace e2e gate).

Three sections:

* ``encode``  — ``encode_png`` vs ``encode_png_scalar`` per corpus
  image; the gate applies to the screen-content ratio.
* ``decode``  — whole-image ``unfilter_image`` vs the row-at-a-time
  scalar reconstruction (reported, not gated).
* ``pipeline`` — TileDiffer damage pass + cached re-encode of repeated
  screen frames: what a steady-state sharing session actually runs.
* ``parallel`` — the worker-process band pipeline
  (``repro.codecs.parallel``) vs the single-threaded vector path, with
  byte-identity verified before timing and pool teardown asserted
  after (leaked workers or shared memory fail the run loudly).
* ``fanout``  — the same frame encoded for 1 vs 8 destinations through
  the shared cache; misses scaling with destinations is a fatal error.

Usage::

    PYTHONPATH=src python benchmarks/bench_encode_path.py \
        --json BENCH_encode.new.json --baseline BENCH_encode.json

Exits non-zero when the measured encode ratio falls below the
baseline's ``gate.min_encode_ratio``, or — on machines with at least
``gate.parallel_gate_min_cpus`` cores — when the multi-core photo
ratio falls below ``gate.min_parallel_ratio``.  Refresh the committed
seed with ``--json BENCH_encode.json`` (no ``--baseline``).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.photo import synthetic_photo, ui_screenshot  # noqa: E402
from repro.codecs.cache import EncodeCache  # noqa: E402
from repro.codecs.png.decoder import decode_png  # noqa: E402
from repro.codecs.png.encoder import encode_png  # noqa: E402
from repro.codecs.png.filters import BPP, unfilter_image  # noqa: E402
from repro.codecs.png.reference import (  # noqa: E402
    encode_png_scalar,
    unfilter_rows_scalar,
)
from repro.surface.damage import TileDiffer  # noqa: E402
from repro.surface.framebuffer import Framebuffer  # noqa: E402

SIZE = (480, 640)  # height, width — the canonical screen-content frame


def corpus() -> dict[str, np.ndarray]:
    h, w = SIZE
    return {
        # Screen content is what the paper shares; the gate rides on it.
        "ui-screenshot": ui_screenshot(w, h, seed=1),
        # Photographic content keeps zlib honest (worst case for the
        # filter stage's share of total time).
        "photo": synthetic_photo(w, h, seed=1),
    }


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_encode(images: dict[str, np.ndarray], repeats: int) -> dict:
    out: dict[str, dict] = {}
    for name, img in images.items():
        fast = encode_png(img)
        slow = encode_png_scalar(img)
        if fast != slow:
            raise SystemExit(
                f"FATAL: vectorised encode of {name} is not byte-identical"
            )
        vec = best_of(lambda: encode_png(img), repeats)
        scalar = best_of(lambda: encode_png_scalar(img), max(2, repeats // 2))
        out[name] = {
            "vector_ms": vec * 1e3,
            "scalar_ms": scalar * 1e3,
            "ratio": scalar / vec,
            "encoded_kib": len(fast) / 1024,
        }
    return out


def bench_decode(images: dict[str, np.ndarray], repeats: int) -> dict:
    import zlib

    out: dict[str, dict] = {}
    for name, img in images.items():
        h, w = img.shape[:2]
        stride = w * BPP
        data = encode_png(img)
        # Pre-split so both sides time only the unfilter stage.
        from repro.codecs.png.chunks import TYPE_IDAT, iter_chunks

        idat = b"".join(
            c.data for c in iter_chunks(data) if c.type == TYPE_IDAT
        )
        raw = zlib.decompress(idat)
        scan = np.frombuffer(raw, dtype=np.uint8).reshape(h, 1 + stride)
        vec = best_of(
            lambda: unfilter_image(scan[:, 0], scan[:, 1:]), repeats
        )
        scalar = best_of(
            lambda: unfilter_rows_scalar(raw, h, stride),
            max(2, repeats // 2),
        )
        full = best_of(lambda: decode_png(data), repeats)
        out[name] = {
            "vector_ms": vec * 1e3,
            "scalar_ms": scalar * 1e3,
            "ratio": scalar / vec,
            "decode_png_ms": full * 1e3,
        }
    return out


def bench_pipeline(repeats: int) -> dict:
    """Steady-state loop: damage-diff each frame, encode changed tiles.

    Frame 2 repeats frame 1's content (cursor-blink style), so the
    differ's no-change pass and the encode cache both engage — the
    combination is the real hot loop of a sharing session.
    """
    h, w = SIZE
    base = ui_screenshot(w, h, seed=1)
    dirty = base.copy()
    dirty[100:164, 200:264] ^= 0xFF  # one 64x64 tile of damage

    def run(cache: EncodeCache | None) -> float:
        def one_pass() -> None:
            fb = Framebuffer(w, h)
            differ = TileDiffer(w, h)
            for frame in (base, dirty, base, dirty):
                fb.array[:] = frame
                region = differ.diff(fb)
                for rect in region.rects:
                    block = np.ascontiguousarray(
                        fb.array[rect.top:rect.bottom, rect.left:rect.right]
                    )
                    if cache is None:
                        encode_png(block)
                        continue
                    key = cache.key(block)
                    if cache.get(key) is None:
                        cache.put(key, 0, encode_png(block))

        return best_of(one_pass, repeats)

    cache = EncodeCache(max_entries=512)
    cached = run(cache)
    uncached = run(None)
    return {
        "cached_ms": cached * 1e3,
        "uncached_ms": uncached * 1e3,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "ratio": uncached / cached,
    }


def bench_parallel(images: dict[str, np.ndarray], repeats: int) -> dict:
    """Worker-pool band encode vs the single-threaded vector path.

    Verifies the byte-identity contract before timing anything, and
    asserts complete pool teardown after: CI fails loudly on leaked
    worker processes or shared-memory blocks.
    """
    from repro.codecs.lossy import LossyDctCodec
    from repro.codecs.parallel import (
        EncodePool,
        encode_lossy_parallel,
        encode_png_parallel,
    )
    from repro.codecs.png.encoder import filtered_scanlines

    cpu = os.cpu_count() or 1
    workers = max(1, cpu - 1)
    out: dict = {"cpu_count": cpu, "workers": workers}
    pool = EncodePool(workers)
    try:
        for name, img in images.items():
            serial = encode_png(img)
            parallel = encode_png_parallel(img, pool)
            if not np.array_equal(decode_png(parallel), decode_png(serial)):
                raise SystemExit(
                    f"FATAL: parallel PNG of {name} decodes differently"
                )
            scan = pool.filtered_scanline_bands(img)
            if scan is not None and scan != filtered_scanlines(img).tobytes():
                raise SystemExit(
                    f"FATAL: parallel scanline stream of {name} is not"
                    " byte-identical to the vector path"
                )
            t_par = best_of(lambda: encode_png_parallel(img, pool), repeats)
            t_ser = best_of(lambda: encode_png(img), repeats)
            out[name] = {
                "parallel_ms": t_par * 1e3,
                "serial_ms": t_ser * 1e3,
                "ratio": t_ser / t_par,
            }
        codec = LossyDctCodec(75)
        photo = images["photo"]
        t_par = best_of(
            lambda: encode_lossy_parallel(photo, pool, quality=75), repeats
        )
        t_ser = best_of(lambda: codec.encode(photo), repeats)
        out["photo-lossy"] = {
            "parallel_ms": t_par * 1e3,
            "serial_ms": t_ser * 1e3,
            "ratio": t_ser / t_par,
        }
        out["fallbacks"] = pool.snapshot()["fallbacks"]
    finally:
        pool.close()
    after = pool.snapshot()
    if after["workers"] != 0 or after["shm_bytes"] != 0:
        raise SystemExit(f"FATAL: pool teardown leaked state: {after}")
    leaked = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("encode-worker")
    ]
    if leaked:
        raise SystemExit(
            f"FATAL: {len(leaked)} encode worker(s) survived pool close"
        )
    return out


def bench_fanout(destinations: int = 8) -> dict:
    """Cache-miss flatness as destinations scale (N sinks, one encode).

    The content+params key makes every destination of a session hash a
    block to the same entry, so misses must not grow with N.
    """
    h, w = SIZE
    base = ui_screenshot(w, h, seed=2)
    blocks = [
        np.ascontiguousarray(base[y : y + 64, x : x + 64])
        for y in range(0, 256, 64)
        for x in range(0, 256, 64)
    ]
    params = b"bench:png:6"

    def run(n: int) -> EncodeCache:
        cache = EncodeCache(max_entries=512)
        for _dest in range(n):
            for block in blocks:
                key = cache.key(block, params)
                if cache.get(key) is None:
                    cache.put(key, 0, encode_png(block))
        return cache

    single = run(1)
    fanned = run(destinations)
    if fanned.misses != single.misses:
        raise SystemExit(
            f"FATAL: cache misses scale with destinations"
            f" ({single.misses} -> {fanned.misses} at N={destinations})"
        )
    return {
        "destinations": destinations,
        "blocks": len(blocks),
        "misses_single": single.misses,
        "misses_fanout": fanned.misses,
        "hits_fanout": fanned.hits,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write results to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_encode.json to gate against")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    images = corpus()
    results = {
        "bench": "encode-path",
        "size": {"height": SIZE[0], "width": SIZE[1]},
        "gate": {
            "min_encode_ratio": 3.0,
            # The multi-core floor applies only where multiple cores
            # exist: band-parallel encode cannot beat the vector path
            # on 1-2 cores (CI runners have 4).
            "min_parallel_ratio": 2.0,
            "parallel_gate_min_cpus": 3,
        },
        "encode": bench_encode(images, args.repeats),
        "decode": bench_decode(images, args.repeats),
        "pipeline": bench_pipeline(max(2, args.repeats // 2)),
        "parallel": bench_parallel(images, args.repeats),
        "fanout": bench_fanout(),
    }

    screen_ratio = results["encode"]["ui-screenshot"]["ratio"]
    print(f"encode speedup (screen content): {screen_ratio:.2f}x")
    for name, row in results["encode"].items():
        print(
            f"  encode {name:>14}: {row['vector_ms']:7.2f} ms vectorised"
            f" vs {row['scalar_ms']:8.2f} ms scalar ({row['ratio']:.2f}x)"
        )
    for name, row in results["decode"].items():
        print(
            f"  decode {name:>14}: {row['vector_ms']:7.2f} ms vectorised"
            f" vs {row['scalar_ms']:8.2f} ms scalar ({row['ratio']:.2f}x)"
        )
    pipe = results["pipeline"]
    print(
        f"  pipeline (diff+encode, 4 frames): {pipe['cached_ms']:.2f} ms"
        f" cached vs {pipe['uncached_ms']:.2f} ms uncached"
        f" ({pipe['cache_hits']} hits)"
    )
    par = results["parallel"]
    for name in (*images, "photo-lossy"):
        row = par[name]
        print(
            f"  parallel {name:>12}: {row['parallel_ms']:7.2f} ms"
            f" ({par['workers']} workers) vs {row['serial_ms']:7.2f} ms"
            f" serial ({row['ratio']:.2f}x)"
        )
    fan = results["fanout"]
    print(
        f"  fanout: {fan['misses_fanout']} misses at"
        f" {fan['destinations']} destinations"
        f" (single-destination: {fan['misses_single']})"
    )

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.baseline:
        baseline = json.loads(args.baseline.read_text())
        gate = baseline.get("gate", {})
        floor = float(gate.get("min_encode_ratio", 3.0))
        if screen_ratio < floor:
            print(
                f"GATE FAIL: screen-content encode ratio {screen_ratio:.2f}x"
                f" is below the committed floor {floor:.2f}x"
            )
            return 1
        print(f"gate ok: {screen_ratio:.2f}x >= {floor:.2f}x floor")

        parallel_floor = float(gate.get("min_parallel_ratio", 0.0))
        min_cpus = int(gate.get("parallel_gate_min_cpus", 3))
        cpu = results["parallel"]["cpu_count"]
        photo_ratio = results["parallel"]["photo"]["ratio"]
        if parallel_floor and cpu >= min_cpus:
            if photo_ratio < parallel_floor:
                print(
                    f"GATE FAIL: multi-core photo encode ratio"
                    f" {photo_ratio:.2f}x is below the committed floor"
                    f" {parallel_floor:.2f}x ({cpu} cpus)"
                )
                return 1
            print(
                f"parallel gate ok: {photo_ratio:.2f}x >="
                f" {parallel_floor:.2f}x floor ({cpu} cpus)"
            )
        elif parallel_floor:
            print(
                f"parallel gate skipped: {cpu} cpu(s) <"
                f" {min_cpus} (measured {photo_ratio:.2f}x, not gated)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
