"""Capture→encode hot-path benchmark + regression gate.

Measures the vectorised pipeline against the retained scalar reference
**on the same machine, in the same run**, so the headline number — the
encode speedup ratio — is hardware-independent and can be gated in CI
(same pattern as the BENCH_trace e2e gate).

Three sections:

* ``encode``  — ``encode_png`` vs ``encode_png_scalar`` per corpus
  image; the gate applies to the screen-content ratio.
* ``decode``  — whole-image ``unfilter_image`` vs the row-at-a-time
  scalar reconstruction (reported, not gated).
* ``pipeline`` — TileDiffer damage pass + cached re-encode of repeated
  screen frames: what a steady-state sharing session actually runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_encode_path.py \
        --json BENCH_encode.new.json --baseline BENCH_encode.json

Exits non-zero when the measured encode ratio falls below the
baseline's ``gate.min_encode_ratio``.  Refresh the committed seed with
``--json BENCH_encode.json`` (no ``--baseline``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.photo import synthetic_photo, ui_screenshot  # noqa: E402
from repro.codecs.cache import EncodeCache  # noqa: E402
from repro.codecs.png.decoder import decode_png  # noqa: E402
from repro.codecs.png.encoder import encode_png  # noqa: E402
from repro.codecs.png.filters import BPP, unfilter_image  # noqa: E402
from repro.codecs.png.reference import (  # noqa: E402
    encode_png_scalar,
    unfilter_rows_scalar,
)
from repro.surface.damage import TileDiffer  # noqa: E402
from repro.surface.framebuffer import Framebuffer  # noqa: E402

SIZE = (480, 640)  # height, width — the canonical screen-content frame


def corpus() -> dict[str, np.ndarray]:
    h, w = SIZE
    return {
        # Screen content is what the paper shares; the gate rides on it.
        "ui-screenshot": ui_screenshot(w, h, seed=1),
        # Photographic content keeps zlib honest (worst case for the
        # filter stage's share of total time).
        "photo": synthetic_photo(w, h, seed=1),
    }


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_encode(images: dict[str, np.ndarray], repeats: int) -> dict:
    out: dict[str, dict] = {}
    for name, img in images.items():
        fast = encode_png(img)
        slow = encode_png_scalar(img)
        if fast != slow:
            raise SystemExit(
                f"FATAL: vectorised encode of {name} is not byte-identical"
            )
        vec = best_of(lambda: encode_png(img), repeats)
        scalar = best_of(lambda: encode_png_scalar(img), max(2, repeats // 2))
        out[name] = {
            "vector_ms": vec * 1e3,
            "scalar_ms": scalar * 1e3,
            "ratio": scalar / vec,
            "encoded_kib": len(fast) / 1024,
        }
    return out


def bench_decode(images: dict[str, np.ndarray], repeats: int) -> dict:
    import zlib

    out: dict[str, dict] = {}
    for name, img in images.items():
        h, w = img.shape[:2]
        stride = w * BPP
        data = encode_png(img)
        # Pre-split so both sides time only the unfilter stage.
        from repro.codecs.png.chunks import TYPE_IDAT, iter_chunks

        idat = b"".join(
            c.data for c in iter_chunks(data) if c.type == TYPE_IDAT
        )
        raw = zlib.decompress(idat)
        scan = np.frombuffer(raw, dtype=np.uint8).reshape(h, 1 + stride)
        vec = best_of(
            lambda: unfilter_image(scan[:, 0], scan[:, 1:]), repeats
        )
        scalar = best_of(
            lambda: unfilter_rows_scalar(raw, h, stride),
            max(2, repeats // 2),
        )
        full = best_of(lambda: decode_png(data), repeats)
        out[name] = {
            "vector_ms": vec * 1e3,
            "scalar_ms": scalar * 1e3,
            "ratio": scalar / vec,
            "decode_png_ms": full * 1e3,
        }
    return out


def bench_pipeline(repeats: int) -> dict:
    """Steady-state loop: damage-diff each frame, encode changed tiles.

    Frame 2 repeats frame 1's content (cursor-blink style), so the
    differ's no-change pass and the encode cache both engage — the
    combination is the real hot loop of a sharing session.
    """
    h, w = SIZE
    base = ui_screenshot(w, h, seed=1)
    dirty = base.copy()
    dirty[100:164, 200:264] ^= 0xFF  # one 64x64 tile of damage

    def run(cache: EncodeCache | None) -> float:
        def one_pass() -> None:
            fb = Framebuffer(w, h)
            differ = TileDiffer(w, h)
            for frame in (base, dirty, base, dirty):
                fb.array[:] = frame
                region = differ.diff(fb)
                for rect in region.rects:
                    block = np.ascontiguousarray(
                        fb.array[rect.top:rect.bottom, rect.left:rect.right]
                    )
                    if cache is None:
                        encode_png(block)
                        continue
                    key = cache.key(block)
                    if cache.get(key) is None:
                        cache.put(key, 0, encode_png(block))

        return best_of(one_pass, repeats)

    cache = EncodeCache(max_entries=512)
    cached = run(cache)
    uncached = run(None)
    return {
        "cached_ms": cached * 1e3,
        "uncached_ms": uncached * 1e3,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "ratio": uncached / cached,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write results to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_encode.json to gate against")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    images = corpus()
    results = {
        "bench": "encode-path",
        "size": {"height": SIZE[0], "width": SIZE[1]},
        "gate": {"min_encode_ratio": 3.0},
        "encode": bench_encode(images, args.repeats),
        "decode": bench_decode(images, args.repeats),
        "pipeline": bench_pipeline(max(2, args.repeats // 2)),
    }

    screen_ratio = results["encode"]["ui-screenshot"]["ratio"]
    print(f"encode speedup (screen content): {screen_ratio:.2f}x")
    for name, row in results["encode"].items():
        print(
            f"  encode {name:>14}: {row['vector_ms']:7.2f} ms vectorised"
            f" vs {row['scalar_ms']:8.2f} ms scalar ({row['ratio']:.2f}x)"
        )
    for name, row in results["decode"].items():
        print(
            f"  decode {name:>14}: {row['vector_ms']:7.2f} ms vectorised"
            f" vs {row['scalar_ms']:8.2f} ms scalar ({row['ratio']:.2f}x)"
        )
    pipe = results["pipeline"]
    print(
        f"  pipeline (diff+encode, 4 frames): {pipe['cached_ms']:.2f} ms"
        f" cached vs {pipe['uncached_ms']:.2f} ms uncached"
        f" ({pipe['cache_hits']} hits)"
    )

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.baseline:
        baseline = json.loads(args.baseline.read_text())
        floor = float(baseline.get("gate", {}).get("min_encode_ratio", 3.0))
        if screen_ratio < floor:
            print(
                f"GATE FAIL: screen-content encode ratio {screen_ratio:.2f}x"
                f" is below the committed floor {floor:.2f}x"
            )
            return 1
        print(f"gate ok: {screen_ratio:.2f}x >= {floor:.2f}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
