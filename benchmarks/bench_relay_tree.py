"""Relay-tree fan-out benchmark + regression gate.

Answers the scaling question behind ``repro.relay``: what does serving
a huge audience cost the AH *with* a cascade versus direct unicast?

Two arms, one deterministic virtual clock, same edit workload, 2%
loss on every hop:

* **tree** — one AH feeds a 2-level relay tree (``--fanout`` roots,
  ``--fanout`` leaves each, ``--viewers-per-leaf`` lightweight viewers
  per leaf: 10 x 10 x 100 = 10,000 by default).  Viewer NACKs/PLIs
  terminate at the leaf relays; only relay-level escalations reach
  the AH.
* **direct** — the same AH serves ``--direct-viewers`` unicast UDP
  participants (default 1,000).  Egress bytes and AH-heard NACKs are
  *linear in viewer count by construction* (every viewer gets its own
  copy of the stream and NACKs independently at 2% loss), so the
  direct arm extrapolates per-viewer cost to the tree's audience size;
  the factor is reported in the JSON.

Viewers are :class:`SimViewer` — a real RTP receiver + gap detector +
NACK/PLI recovery machine, minus pixel state — so loss detection and
feedback behave exactly like a participant's while 10k of them fit in
one process.

Headline numbers: AH egress bytes/viewer, AH-heard NACKs, the
tree-vs-direct reduction factors, and CPU per viewer-second.

Usage::

    PYTHONPATH=src python benchmarks/bench_relay_tree.py \
        --json BENCH_relay.new.json --baseline BENCH_relay.json

Exits non-zero when the egress or NACK reduction falls below the
baseline's ``gate.min_egress_reduction`` / ``gate.min_nack_reduction``
(the >= 10x claim), the AH spends more than
``gate.max_ah_bytes_per_viewer`` on egress, the AH hears more than
``gate.max_upstream_nack_ratio`` of the viewers' NACKs, or fewer than
``gate.min_complete_fraction`` of tree viewers end with a gap-free
stream.  Refresh the committed seed with ``--json BENCH_relay.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.text_editor import TextEditorApp  # noqa: E402
from repro.net.channel import ChannelConfig  # noqa: E402
from repro.relay import build_relay_tree  # noqa: E402
from repro.relay.tree import duplex_transport_pair  # noqa: E402
from repro.rtp.clock import SimulatedClock  # noqa: E402
from repro.rtp.feedback import (  # noqa: E402
    PictureLossIndication,
    nacks_for,
)
from repro.rtp.packet import RtpPacket  # noqa: E402
from repro.rtp.session import RtpReceiver  # noqa: E402
from repro.sharing.ah import ApplicationHost  # noqa: E402
from repro.sharing.config import PT_REMOTING, SharingConfig  # noqa: E402
from repro.sharing.recovery import RecoveryManager  # noqa: E402
from repro.sharing.transport import is_rtcp  # noqa: E402
from repro.surface.geometry import Rect  # noqa: E402

DT = 0.05  # virtual seconds per simulation round
LOSS = 0.02  # loss rate on every hop
EDIT_EVERY = 0.5  # virtual seconds between edits
SCREEN = (320, 240)
WINDOW = Rect(8, 8, 280, 200)


class SimViewer:
    """A feedback-faithful viewer without pixel state.

    Real :class:`RtpReceiver` + :class:`RecoveryManager`, so gaps are
    detected, NACKed, retried and given up exactly like a participant
    — but nothing is reassembled or painted, which is what lets 10k of
    them share one process.
    """

    __slots__ = (
        "transport", "receiver", "recovery", "ssrc", "media_ssrc",
        "nacks_sent", "plis_sent",
    )

    def __init__(self, transport, now, ssrc: int) -> None:
        self.transport = transport
        self.receiver = RtpReceiver(now=now)
        self.recovery = RecoveryManager(now=now)
        self.ssrc = ssrc
        self.media_ssrc = 0
        self.nacks_sent = 0
        self.plis_sent = 0

    def join(self) -> None:
        """A UDP viewer announces itself with a PLI (section 4.3)."""
        self.transport.send_packet(
            PictureLossIndication(self.ssrc, self.media_ssrc).encode()
        )
        self.plis_sent += 1

    def pump(self) -> None:
        for raw in self.transport.receive_packets():
            if is_rtcp(raw):
                continue
            try:
                packet = RtpPacket.decode(raw)
            except Exception:
                continue
            if packet.payload_type != PT_REMOTING:
                continue
            self.media_ssrc = packet.ssrc
            self.recovery.note_arrival(packet.sequence_number)
            self.receiver.receive(packet)
        actions = self.recovery.poll(self.receiver.missing_sequence_numbers())
        if actions.nack_now:
            nack = nacks_for(self.ssrc, self.media_ssrc, actions.nack_now)
            if nack is not None:
                self.transport.send_packet(nack.encode())
                self.nacks_sent += 1
        for seq in actions.gave_up:
            self.receiver.gaps.acknowledge(seq)

    @property
    def complete(self) -> bool:
        """Received something and holds no outstanding gaps."""
        return (
            self.receiver.packets_received > 0
            and not self.receiver.missing_sequence_numbers()
        )


def make_workload(clock) -> tuple[ApplicationHost, TextEditorApp]:
    ah = ApplicationHost(
        screen_width=SCREEN[0], screen_height=SCREEN[1],
        config=SharingConfig(adaptive_codec=False),
        clock=clock,
    )
    window = ah.windows.create_window(WINDOW)
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    return ah, editor


def drive(clock, ah, editor, viewers, pump_middle, sim_seconds: float,
          edit_until: float) -> float:
    """Run the edit workload plus a drain tail; returns CPU seconds."""
    cpu0 = time.process_time()
    t_end = clock.now() + sim_seconds
    next_edit = clock.now()
    while clock.now() < t_end:
        if clock.now() <= edit_until and clock.now() >= next_edit:
            editor.type_text(f"[{clock.now():6.2f}] shared edit line\n")
            next_edit += EDIT_EVERY
        ah.advance(DT)
        pump_middle()
        for viewer in viewers:
            viewer.pump()
        clock.advance(DT)
    return time.process_time() - cpu0


def run_tree_arm(fanout: int, viewers_per_leaf: int,
                 sim_seconds: float) -> dict:
    clock = SimulatedClock()
    ah, editor = make_workload(clock)
    tree = build_relay_tree(
        ah, clock, fanouts=(fanout, fanout), viewers_per_leaf=0,
        channel_config=ChannelConfig(delay=0.01, loss_rate=LOSS, seed=11),
    )
    rng = random.Random(97)
    viewers: list[SimViewer] = []
    link_seed = 100_000
    for leaf in tree.leaves:
        for i in range(viewers_per_leaf):
            near, far = duplex_transport_pair(
                ChannelConfig(delay=0.01, loss_rate=LOSS, seed=link_seed),
                clock.now,
            )
            link_seed += 2
            name = f"{leaf.id}/v{i}"
            leaf.add_downstream(name, near)
            viewer = SimViewer(far, clock.now, rng.randrange(1, 1 << 32))
            viewer.join()
            viewers.append(viewer)

    cpu = drive(
        clock, ah, editor, viewers, tree.pump, sim_seconds,
        edit_until=sim_seconds * 0.6,
    )
    viewer_nacks = sum(v.nacks_sent for v in viewers)
    leaf_level = tree.levels[-1]
    return {
        "viewers": len(viewers),
        "relays": len(tree.relays),
        "ah_egress_bytes": ah.total_bytes_sent(),
        "ah_nacks_heard": ah.nacks_received,
        "ah_plis_heard": ah.plis_received,
        "viewer_nacks_sent": viewer_nacks,
        "relay_absorbed_nacks": sum(r.absorbed_nacks for r in tree.relays),
        "relay_deduplicated_nacks": sum(
            r.nacks_deduplicated for r in tree.relays
        ),
        "leaf_plis_received": sum(r.plis_received for r in leaf_level),
        "cpu_s": cpu,
        "complete_viewers": sum(1 for v in viewers if v.complete),
    }


def run_direct_arm(direct_viewers: int, sim_seconds: float) -> dict:
    clock = SimulatedClock()
    ah, editor = make_workload(clock)
    rng = random.Random(53)
    viewers: list[SimViewer] = []
    for i in range(direct_viewers):
        near, far = duplex_transport_pair(
            ChannelConfig(delay=0.01, loss_rate=LOSS, seed=7 + 2 * i),
            clock.now,
        )
        ah.add_participant(f"v{i}", near)
        viewer = SimViewer(far, clock.now, rng.randrange(1, 1 << 32))
        viewer.join()
        viewers.append(viewer)

    cpu = drive(
        clock, ah, editor, viewers, lambda: None, sim_seconds,
        edit_until=sim_seconds * 0.6,
    )
    return {
        "viewers": len(viewers),
        "ah_egress_bytes": ah.total_bytes_sent(),
        "ah_nacks_heard": ah.nacks_received,
        "ah_plis_heard": ah.plis_received,
        "viewer_nacks_sent": sum(v.nacks_sent for v in viewers),
        "cpu_s": cpu,
        "complete_viewers": sum(1 for v in viewers if v.complete),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write results to this path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_relay.json to gate against")
    parser.add_argument("--fanout", type=int, default=10,
                        help="relays per level (tree is fanout x fanout)")
    parser.add_argument("--viewers-per-leaf", type=int, default=100)
    parser.add_argument("--direct-viewers", type=int, default=1000)
    parser.add_argument("--sim-seconds", type=float, default=6.0)
    args = parser.parse_args(argv)

    tree = run_tree_arm(args.fanout, args.viewers_per_leaf, args.sim_seconds)
    direct = run_direct_arm(args.direct_viewers, args.sim_seconds)

    # Direct-unicast cost is linear in viewer count (one stream copy
    # and one independent NACK process per viewer), so per-viewer
    # figures extrapolate to the tree's audience.
    scale = tree["viewers"] / direct["viewers"]
    direct_egress_at_scale = direct["ah_egress_bytes"] * scale
    direct_nacks_at_scale = direct["ah_nacks_heard"] * scale
    egress_reduction = direct_egress_at_scale / max(
        1, tree["ah_egress_bytes"]
    )
    nack_reduction = direct_nacks_at_scale / max(1, tree["ah_nacks_heard"])
    upstream_nack_ratio = tree["ah_nacks_heard"] / max(
        1, tree["viewer_nacks_sent"]
    )
    results = {
        "bench": "relay-tree",
        "gate": {
            "min_viewers": 10_000,
            "min_egress_reduction": 10.0,
            "min_nack_reduction": 10.0,
            "max_ah_bytes_per_viewer": 2_000.0,
            "max_upstream_nack_ratio": 0.10,
            "min_complete_fraction": 0.99,
        },
        "run": {
            "sim_seconds": args.sim_seconds,
            "loss_rate": LOSS,
            "tree": tree,
            "direct": direct,
            "extrapolation_factor": scale,
            "direct_egress_bytes_at_scale": direct_egress_at_scale,
            "direct_nacks_at_scale": direct_nacks_at_scale,
            "egress_reduction": egress_reduction,
            "nack_reduction": nack_reduction,
            "ah_bytes_per_viewer": tree["ah_egress_bytes"] / tree["viewers"],
            "upstream_nack_ratio": upstream_nack_ratio,
            "complete_fraction": tree["complete_viewers"] / tree["viewers"],
            "cpu_s_per_viewer": tree["cpu_s"] / tree["viewers"],
        },
    }
    run = results["run"]

    print(
        f"tree: {tree['viewers']} viewers behind {tree['relays']} relays,"
        f" AH egress {tree['ah_egress_bytes'] / 1e6:.2f} MB"
        f" ({run['ah_bytes_per_viewer']:.0f} B/viewer),"
        f" AH heard {tree['ah_nacks_heard']} NACKs"
        f" of {tree['viewer_nacks_sent']} sent"
        f" (ratio {run['upstream_nack_ratio']:.4f})"
    )
    print(
        f"direct: {direct['viewers']} viewers, AH egress"
        f" {direct['ah_egress_bytes'] / 1e6:.2f} MB,"
        f" {direct['ah_nacks_heard']} NACKs heard"
        f" -> x{scale:.0f} = {direct_egress_at_scale / 1e6:.1f} MB,"
        f" {direct_nacks_at_scale:.0f} NACKs at tree scale"
    )
    print(
        f"reduction: egress x{egress_reduction:.0f},"
        f" NACKs x{nack_reduction:.0f};"
        f" complete {tree['complete_viewers']}/{tree['viewers']};"
        f" cpu {tree['cpu_s']:.1f}s tree / {direct['cpu_s']:.1f}s direct"
    )

    if args.json:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.baseline:
        gate = json.loads(args.baseline.read_text()).get("gate", {})
        failures = []
        if tree["viewers"] < gate.get("min_viewers", 0):
            failures.append(
                f"{tree['viewers']} tree viewers below the"
                f" {gate['min_viewers']} floor"
            )
        for key, value, kind in (
            ("min_egress_reduction", egress_reduction, "floor"),
            ("min_nack_reduction", nack_reduction, "floor"),
            ("max_ah_bytes_per_viewer", run["ah_bytes_per_viewer"], "cap"),
            ("max_upstream_nack_ratio", run["upstream_nack_ratio"], "cap"),
            ("min_complete_fraction", run["complete_fraction"], "floor"),
        ):
            bound = gate.get(key)
            if bound is None:
                continue
            bound = float(bound)
            if kind == "floor" and value < bound:
                failures.append(f"{key}: {value:.3f} below the {bound} floor")
            if kind == "cap" and value > bound:
                failures.append(f"{key}: {value:.3f} above the {bound} cap")
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}")
            return 1
        print(
            f"gate ok: x{egress_reduction:.0f} egress,"
            f" x{nack_reduction:.0f} NACK reduction at"
            f" {tree['viewers']} viewers"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
