"""E3 — MoveRectangle for scrolls vs re-encoding (section 5.2.3).

"MoveRectangle instructs the participant to move a region from one
place to another, which is efficient for some drawing operations like
scrolls."  A terminal emitting build output scrolls a 600x400 viewport;
with scroll detection on, each scroll becomes one 28-byte MoveRectangle
plus a one-line RegionUpdate instead of re-encoding the whole viewport.
"""

import pytest

from repro.apps.terminal import TerminalApp
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from sessions import run_rounds, tcp_session

LINES = 80


def _scroll_session(scroll_detection: bool):
    config = SharingConfig(scroll_detection=scroll_detection)
    clock, ah, participant = tcp_session(config=config)
    win = ah.windows.create_window(Rect(20, 20, 600, 400))
    terminal = TerminalApp(win)
    # Fill the viewport so every further line scrolls.
    terminal.run_build_output(terminal.rows)
    run_rounds(clock, ah, [participant], 30)
    base_bytes = ah.total_bytes_sent()
    emitted = 0

    def drive(i):
        nonlocal emitted
        if i % 2 == 0 and emitted < LINES:
            terminal.run_build_output(1, start=terminal.rows + emitted)
            emitted += 1

    run_rounds(clock, ah, [participant], LINES * 2 + 40, per_round=drive)
    run_rounds(clock, ah, [participant], 60)
    assert participant.converged_with(ah.windows)
    return ah, participant, ah.total_bytes_sent() - base_bytes


@pytest.mark.parametrize("mode", ["move-rectangle", "reencode-all"])
def test_scroll_workload(benchmark, experiment, mode):
    recorder = experiment("E3", "scroll via MoveRectangle vs re-encoding")
    ah, participant, sent = benchmark.pedantic(
        _scroll_session, args=(mode == "move-rectangle",), rounds=1,
        iterations=1,
    )
    recorder.row(
        mode=mode,
        scrolled_lines=LINES,
        moves_applied=participant.moves_applied,
        update_kib=participant.stats.region_update.wire_bytes / 1024,
        move_kib=participant.stats.move_rectangle.wire_bytes / 1024,
        total_sent_kib=sent / 1024,
        kib_per_line=sent / 1024 / LINES,
    )
