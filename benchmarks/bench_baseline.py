"""E14 — RTP push sharing vs client-pull remote framebuffer (VNC-style).

The paper's architectural bet: pushing damage-driven RegionUpdates over
RTP beats the incumbent pull model.  Both systems share the same
virtual desktop, workload and simulated 20 ms link; rows compare bytes
moved and update freshness.  Two structural advantages should show:

* the push side knows per-window damage (no whole-screen tile diffing,
  pixels hidden under other windows are never encoded);
* a pull client pays at least one round trip per update, plus its poll
  cadence, before seeing a change.
"""

import pytest

from repro.apps.terminal import TerminalApp
from repro.apps.text_editor import TextEditorApp
from repro.baseline.session import BaselineSession
from repro.net.channel import ChannelConfig, duplex_reliable
from repro.rtp.clock import SimulatedClock
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager

from sessions import run_rounds, tcp_session

ROUNDS = 300
DT = 0.01
DELAY = 0.02


def _drive_apps(editor, terminal, i):
    if i % 10 == 0 and i < 200:
        editor.type_text(f"push vs pull {i} ")
    if i % 14 == 0 and i < 200:
        terminal.append_line(f"$ job {i}")


def _rtp_push_session():
    clock, ah, participant = tcp_session(
        config=SharingConfig(adaptive_codec=False), delay=DELAY, bandwidth_bps=0
    )
    editor = TextEditorApp(ah.windows.create_window(Rect(10, 10, 300, 200)))
    terminal = TerminalApp(ah.windows.create_window(Rect(330, 10, 300, 200)))
    ah.apps.attach(editor)
    ah.apps.attach(terminal)
    run_rounds(clock, ah, [participant], 30, dt=DT)
    base = ah.total_bytes_sent()

    def drive(i):
        _drive_apps(editor, terminal, i)

    run_rounds(clock, ah, [participant], ROUNDS, dt=DT, per_round=drive)
    run_rounds(clock, ah, [participant], 50, dt=DT)
    assert participant.screen_converged_with(ah.windows)
    scheduler = ah.sessions["p1"].scheduler
    staleness = sorted(scheduler.updates_sent_stale_after)
    p95 = staleness[int(0.95 * (len(staleness) - 1))] if staleness else 0.0
    # Push freshness: capture→send lag plus one-way path delay.
    return ah.total_bytes_sent() - base, p95 + DELAY


def _pull_baseline_session():
    clock = SimulatedClock()
    wm = WindowManager(1280, 1024)
    editor = TextEditorApp(wm.create_window(Rect(10, 10, 300, 200)))
    terminal = TerminalApp(wm.create_window(Rect(330, 10, 300, 200)))
    link = duplex_reliable(ChannelConfig(delay=DELAY), clock.now)
    session = BaselineSession(wm, link, clock.now)
    # Warm-up: first full-screen pull.
    for _ in range(30):
        session.tick()
        clock.advance(DT)
    base = session.server.bytes_sent
    for i in range(ROUNDS):
        _drive_apps(editor, terminal, i)
        session.tick()
        clock.advance(DT)
    for _ in range(50):
        session.tick()
        clock.advance(DT)
    assert session.client.matches(wm)
    rtts = sorted(session.update_round_trips)
    p95 = rtts[int(0.95 * (len(rtts) - 1))] if rtts else 0.0
    return session.server.bytes_sent - base, p95


@pytest.mark.parametrize("system", ["rtp-push", "pull-baseline"])
def test_push_vs_pull(benchmark, experiment, system):
    recorder = experiment("E14", "RTP push vs client-pull framebuffer")
    runner = _rtp_push_session if system == "rtp-push" else _pull_baseline_session
    sent, freshness_p95 = benchmark.pedantic(runner, rounds=1, iterations=1)
    recorder.row(
        system=system,
        workload_s=ROUNDS * DT,
        sent_kib=sent / 1024,
        update_freshness_p95_ms=freshness_p95 * 1000,
    )
