"""E2 — damage tracking vs full-frame shipping (section 2).

"large areas of the screen that remain unchanged for long periods of
time, while others change rapidly" — shipping only damaged rectangles
should beat re-sending the frame by orders of magnitude on an editing
workload.  Includes the tile-size ablation for the pixel-diff detector.
"""

import numpy as np
import pytest

from repro.apps.text_editor import TextEditorApp
from repro.codecs import PngCodec
from repro.sharing.config import SharingConfig
from repro.surface.damage import TileDiffer
from repro.surface.framebuffer import Framebuffer
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager

from sessions import run_rounds, tcp_session

FRAMES = 120


def _editor_session(damage_tracking: bool):
    """Run an editing session; return bytes sent downstream."""
    clock, ah, participant = tcp_session(config=SharingConfig())
    win = ah.windows.create_window(Rect(50, 50, 640, 480))
    editor = TextEditorApp(win)
    ah.apps.attach(editor)
    run_rounds(clock, ah, [participant], 20)  # initial sync
    base = ah.total_bytes_sent()

    def drive(i):
        if i % 2 == 0:
            editor.type_text("the quick brown fox ")
        if not damage_tracking:
            # Ablation: pretend the capture layer cannot localise the
            # change — the whole window is damaged every frame.
            win.add_damage(win.local_bounds)

    run_rounds(clock, ah, [participant], FRAMES, per_round=drive)
    # Drain the coalesced backlog.
    run_rounds(clock, ah, [participant], 100)
    assert participant.converged_with(ah.windows)
    return ah.total_bytes_sent() - base


@pytest.mark.parametrize("mode", ["damage-rects", "full-window"])
def test_damage_vs_full(benchmark, experiment, mode):
    recorder = experiment("E2", "damage tracking vs full-window shipping")
    total = benchmark.pedantic(
        _editor_session, args=(mode == "damage-rects",), rounds=1, iterations=1
    )
    recorder.row(
        mode=mode,
        frames=FRAMES,
        sent_kib=total / 1024,
        kib_per_frame=total / 1024 / FRAMES,
    )


@pytest.mark.parametrize("tile", [16, 32, 64, 128])
def test_tile_size_ablation(benchmark, experiment, tile):
    """DESIGN.md ablation: tile size for the pixel-diff detector."""
    recorder = experiment("E2a", "tile-size ablation (pixel diff detector)")
    wm = WindowManager(1280, 1024)
    win = wm.create_window(Rect(0, 0, 640, 480))
    editor = TextEditorApp(win)
    codec = PngCodec()
    differ = TileDiffer(640, 480, tile=tile)
    differ.diff(win.surface)  # baseline frame

    def frame_cycle():
        editor.type_text("x")
        return differ.diff(win.surface)

    # Measure detection cost; separately account detected bytes.
    benchmark(frame_cycle)
    editor.type_text("sample line for size accounting")
    damage = differ.diff(win.surface)
    encoded = sum(
        len(codec.encode(win.surface.read_rect(r))) for r in damage
    )
    recorder.row(
        tile_px=tile,
        damage_rects=len(damage),
        damage_area_px=damage.area,
        encoded_bytes=encoded,
    )
