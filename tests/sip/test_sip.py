"""Tests for the SIP session-setup subset."""

import random

import pytest

from repro.sdp import build_ah_offer, negotiate, parse_sdp
from repro.sip.dialog import DialogState, SipEndpoint
from repro.sip.messages import SipError, SipMessage


class TestMessageFormat:
    def test_request_roundtrip(self):
        msg = SipMessage.request(
            "INVITE",
            "sip:participant@example.com",
            {"Call-Id": "abc@host", "Cseq": "1 INVITE", "From": "<sip:ah@h>;tag=1",
             "To": "<sip:participant@example.com>", "Via": "SIP/2.0/TCP h"},
            body="v=0\r\n",
        )
        parsed = SipMessage.parse(msg.serialize())
        assert parsed.method == "INVITE"
        assert parsed.uri == "sip:participant@example.com"
        assert parsed.body == "v=0\r\n"
        assert parsed.header("call-id") == "abc@host"

    def test_response_roundtrip(self):
        msg = SipMessage.response(200, "OK", {"Cseq": "1 INVITE"})
        parsed = SipMessage.parse(msg.serialize())
        assert parsed.status_code == 200
        assert parsed.reason == "OK"
        assert not parsed.is_request

    def test_content_length_written(self):
        msg = SipMessage.request("BYE", "sip:x@y", {}, body="hello")
        assert "Content-Length: 5" in msg.serialize()

    def test_sdp_content_type_defaulted(self):
        msg = SipMessage.request("INVITE", "sip:x@y", {}, body="v=0")
        assert "Content-Type: application/sdp" in msg.serialize()

    def test_header_name_folding(self):
        msg = SipMessage.parse("INVITE sip:a@b SIP/2.0\r\nCALL-ID: x\r\n\r\n")
        assert msg.header("Call-Id") == "x"

    def test_cseq_parse(self):
        msg = SipMessage.response(200, "OK", {"Cseq": "42 INVITE"})
        assert msg.cseq() == (42, "INVITE")

    def test_bad_method_rejected(self):
        with pytest.raises(SipError):
            SipMessage.request("REGISTER", "sip:x@y", {})

    def test_malformed_start_line(self):
        with pytest.raises(SipError):
            SipMessage.parse("NOT A SIP LINE\r\n\r\n")

    def test_missing_required_header(self):
        msg = SipMessage.parse("INVITE sip:a@b SIP/2.0\r\n\r\n")
        with pytest.raises(SipError):
            msg.require_header("Call-Id")


def wired_pair():
    """Two endpoints connected by direct in-memory delivery."""
    inboxes = {"ah": [], "p": []}
    ah = SipEndpoint(
        "sip:ah@host-a", send=lambda t: inboxes["p"].append(t),
        rng=random.Random(1),
    )
    participant = SipEndpoint(
        "sip:p@host-b", send=lambda t: inboxes["ah"].append(t),
        rng=random.Random(2),
    )

    def pump():
        progressed = True
        while progressed:
            progressed = False
            while inboxes["ah"]:
                ah.receive(inboxes["ah"].pop(0))
                progressed = True
            while inboxes["p"]:
                participant.receive(inboxes["p"].pop(0))
                progressed = True

    return ah, participant, pump


class TestDialog:
    def test_full_call_setup(self):
        ah, participant, pump = wired_pair()
        offer = build_ah_offer().to_string()
        ah.invite("sip:p@host-b", offer)
        pump()
        assert participant.state is DialogState.RINGING
        assert participant.remote_sdp == offer
        # Participant negotiates and answers.
        agreed = negotiate(parse_sdp(participant.remote_sdp))
        answer = f"v=0\r\n; negotiated transport={agreed.transport}"
        participant.accept(answer)
        pump()
        assert ah.state is DialogState.ESTABLISHED
        assert participant.state is DialogState.ESTABLISHED
        assert ah.remote_sdp == answer

    def test_established_callbacks_fire(self):
        got = {}
        ah, participant, pump = wired_pair()
        ah.on_established = lambda sdp: got.setdefault("ah", sdp)
        participant.on_established = lambda sdp: got.setdefault("p", sdp)
        ah.invite("sip:p@host-b", "OFFER")
        pump()
        participant.accept("ANSWER")
        pump()
        assert got == {"ah": "ANSWER", "p": "OFFER"}

    def test_reject_terminates(self):
        ah, participant, pump = wired_pair()
        ah.invite("sip:p@host-b", "OFFER")
        pump()
        participant.reject()
        pump()
        assert ah.state is DialogState.TERMINATED
        assert participant.state is DialogState.TERMINATED

    def test_bye_teardown(self):
        ended = []
        ah, participant, pump = wired_pair()
        participant.on_terminated = lambda: ended.append("p")
        ah.invite("sip:p@host-b", "OFFER")
        pump()
        participant.accept("ANSWER")
        pump()
        ah.bye()
        pump()
        assert ah.state is DialogState.TERMINATED
        assert participant.state is DialogState.TERMINATED
        assert ended == ["p"]

    def test_cannot_invite_twice(self):
        ah, _participant, pump = wired_pair()
        ah.invite("sip:p@host-b", "OFFER")
        with pytest.raises(SipError):
            ah.invite("sip:p@host-b", "OFFER")

    def test_cannot_accept_without_invite(self):
        _ah, participant, _pump = wired_pair()
        with pytest.raises(SipError):
            participant.accept("ANSWER")

    def test_cannot_bye_before_established(self):
        ah, _participant, _pump = wired_pair()
        with pytest.raises(SipError):
            ah.bye()

    def test_dialog_identifiers_consistent(self):
        ah, participant, pump = wired_pair()
        ah.invite("sip:p@host-b", "OFFER")
        pump()
        participant.accept("ANSWER")
        pump()
        assert ah.call_id == participant.call_id
        assert ah.remote_tag == participant.local_tag
        assert participant.remote_tag == ah.local_tag


class TestSipPlusSharingSession:
    def test_sdp_negotiated_via_sip_builds_session(self):
        """Full setup flow: SIP handshake carries the section 10 SDP,
        and the negotiated parameters configure a working session."""
        from repro import quick_session

        ah_sip, p_sip, pump = wired_pair()
        result = {}
        p_sip.on_established = lambda sdp: result.setdefault("offer", sdp)
        ah_sip.invite("sip:p@host-b", build_ah_offer().to_string())
        pump()
        agreed = negotiate(parse_sdp(p_sip.remote_sdp), prefer_transport="tcp")
        p_sip.accept("v=0\r\n")
        pump()
        assert agreed.transport == "tcp"
        # Build the media session the SDP described (simulated link).
        ah, participant, clock = quick_session()
        from repro.surface import Rect

        ah.windows.create_window(Rect(0, 0, 50, 40))
        for _ in range(30):
            ah.advance(0.02)
            clock.advance(0.02)
            participant.process_incoming()
        assert participant.converged_with(ah.windows)
