"""The fuzz harness itself: deterministic, covering, self-checking."""

import pytest

from repro.fuzz import (
    MEMORY_BUDGET_BYTES,
    SURFACE_DRIVERS,
    build_corpus,
    run_fuzz,
)
from repro.fuzz.mutate import mutate
import random


class TestCorpus:
    def test_every_surface_has_seed_packets(self):
        corpus = build_corpus()
        assert set(corpus) == set(SURFACE_DRIVERS)
        for surface, packets in corpus.items():
            assert packets, f"empty corpus for {surface}"

    def test_corpus_is_deterministic(self):
        assert build_corpus() == build_corpus()


class TestMutators:
    def test_same_seed_same_mutations(self):
        corpus = [b"hello world", b"\x00\x01\x02\x03" * 8]
        first = [mutate(random.Random("s"), corpus) for _ in range(1)]
        second = [mutate(random.Random("s"), corpus) for _ in range(1)]
        assert first == second

    def test_mutations_differ_across_draws(self):
        corpus = [bytes(range(64))]
        rng = random.Random("s")
        outputs = {mutate(rng, corpus)[1] for _ in range(50)}
        assert len(outputs) > 10


class TestRunner:
    def test_smoke_run_is_clean(self):
        report = run_fuzz(seed=0, iterations=40)
        assert report.ok
        assert report.total_iterations == 40 * (len(SURFACE_DRIVERS) + 1)
        assert report.memory_peak <= MEMORY_BUDGET_BYTES
        surfaces = {s.surface for s in report.surfaces}
        assert "participant-e2e" in surfaces
        for surface in report.surfaces:
            assert surface.failures == []
            assert surface.accepted + surface.rejected == surface.iterations

    def test_same_seed_reproduces_exactly(self):
        first = run_fuzz(seed=7, iterations=25, surfaces=["rtp", "rtcp"],
                         e2e=False)
        second = run_fuzz(seed=7, iterations=25, surfaces=["rtp", "rtcp"],
                          e2e=False)
        stats = lambda r: [
            (s.surface, s.accepted, s.rejected) for s in r.surfaces
        ]
        assert stats(first) == stats(second)

    def test_different_seeds_differ(self):
        a = run_fuzz(seed=1, iterations=60, surfaces=["rtp"], e2e=False)
        b = run_fuzz(seed=2, iterations=60, surfaces=["rtp"], e2e=False)
        assert (a.surfaces[0].accepted, a.surfaces[0].rejected) != (
            b.surfaces[0].accepted, b.surfaces[0].rejected,
        )

    def test_unknown_surface_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(surfaces=["nonsense"])


class TestCli:
    def test_selftest_exit_code_zero(self):
        from repro.fuzz.__main__ import main

        assert main(["--iterations", "30", "--seed", "3"]) == 0

    def test_single_surface_flag(self, capsys):
        from repro.fuzz.__main__ import main

        assert main(["--surface", "rtp", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "rtp" in out
        assert "participant-e2e" not in out
