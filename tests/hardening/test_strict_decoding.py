"""Table-driven strict-decoding properties for every wire format.

The contract: a decoder fed arbitrary bytes either returns a value or
raises :class:`ProtocolError` (or a domain subclass).  ``struct.error``,
``IndexError``, ``UnicodeDecodeError``, ``zlib.error`` or a bare
``ValueError`` escaping a decoder is a hardening bug — those are the
exceptions that turn one hostile datagram into a crashed session.
"""

import pytest

from repro.bfcp.messages import BfcpMessage
from repro.core.errors import (
    BadMagicError,
    MessageOverflowError,
    ProtocolError,
    SemanticError,
    TruncatedMessageError,
    classify,
)
from repro.core.hip import decode_hip
from repro.core.move_rectangle import MoveRectangle
from repro.core.region_update import RegionUpdate
from repro.core.window_info import WindowManagerInfo
from repro.fuzz.corpus import build_corpus
from repro.fuzz.drivers import SURFACE_DRIVERS
from repro.rtp.packet import RtpPacket
from repro.rtp.rtcp import decode_compound

CORPUS = build_corpus()

ALL_SURFACES = sorted(SURFACE_DRIVERS)


def _drive(surface: str, data: bytes) -> None:
    """Run one surface's driver; only ProtocolError may escape."""
    _, driver = SURFACE_DRIVERS[surface]
    try:
        driver(data)
    except ProtocolError:
        pass


class TestStrictPrefixes:
    """Every strict prefix of every valid packet must be handled."""

    @pytest.mark.parametrize("surface", ALL_SURFACES)
    def test_every_prefix_decodes_or_raises_protocol_error(self, surface):
        for packet in CORPUS[surface]:
            for cut in range(len(packet)):
                _drive(surface, packet[:cut])

    @pytest.mark.parametrize("surface", ALL_SURFACES)
    def test_whole_corpus_packets_decode(self, surface):
        _, driver = SURFACE_DRIVERS[surface]
        for packet in CORPUS[surface]:
            driver(packet)  # a valid packet must not raise at all


class TestInflatedFields:
    """Any integer field inflated to its maximum must be survivable.

    Sliding a saturated 2- or 4-byte window across the whole packet
    hits every length, count and dimension field the format has.
    """

    @pytest.mark.parametrize("surface", ALL_SURFACES)
    @pytest.mark.parametrize("width,fill", [(2, b"\xff\xff"),
                                            (4, b"\xff\xff\xff\xff"),
                                            (4, b"\x7f\xff\xff\xff")])
    def test_saturated_windows(self, surface, width, fill):
        for packet in CORPUS[surface]:
            for offset in range(max(0, len(packet) - width) + 1):
                mutated = packet[:offset] + fill + packet[offset + width:]
                _drive(surface, mutated)


class TestGarbageInput:
    """Inputs with no structure at all."""

    @pytest.mark.parametrize("surface", ALL_SURFACES)
    def test_empty_and_junk(self, surface):
        for data in (b"", b"\x00", b"\xff" * 3, b"\x00" * 64,
                     b"\xff" * 64, bytes(range(256))):
            _drive(surface, data)


class TestRoundTrips:
    """decode(encode(x)) == x, and re-encoding is byte-exact."""

    def test_rtp_round_trip(self):
        for raw in CORPUS["rtp"]:
            assert RtpPacket.decode(raw).encode() == raw

    def test_rtcp_compound_round_trip(self):
        from repro.rtp.rtcp import encode_compound

        for raw in CORPUS["rtcp"][:3]:  # the compound datagrams
            packets = decode_compound(raw)
            assert encode_compound(packets) == raw

    def test_hip_round_trip(self):
        for raw in CORPUS["hip"]:
            assert decode_hip(raw).encode() == raw

    def test_remoting_round_trip(self):
        update = RegionUpdate.decode_single(CORPUS["remoting"][0])
        assert update.encode_single() == CORPUS["remoting"][0]
        move = MoveRectangle.decode(CORPUS["remoting"][1])
        assert move.encode() == CORPUS["remoting"][1]
        info = WindowManagerInfo.decode(CORPUS["remoting"][2])
        assert info.encode() == CORPUS["remoting"][2]

    def test_bfcp_round_trip(self):
        for raw in CORPUS["bfcp"]:
            assert BfcpMessage.decode(raw).encode() == raw


class TestTaxonomy:
    """The reason labels decoders attach drive the rejection metrics."""

    def test_reasons_classify(self):
        assert classify(TruncatedMessageError("x")) == "truncated"
        assert classify(MessageOverflowError("x")) == "overflow"
        assert classify(BadMagicError("x")) == "bad_magic"
        assert classify(SemanticError("x")) == "semantic"
        assert classify(ProtocolError("x")) == "malformed"
        assert classify(ProtocolError("x", reason="overflow")) == "overflow"
        assert classify(RuntimeError("x")) == "malformed"

    def test_truncated_rtp_reports_truncated(self):
        with pytest.raises(ProtocolError) as excinfo:
            RtpPacket.decode(b"\x80\x63\x00")
        assert excinfo.value.reason == "truncated"

    def test_geometry_outside_desktop_reports_semantic(self):
        payload = RegionUpdate(1, 5000, 5000, 3, b"x").encode_single()
        with pytest.raises(ProtocolError) as excinfo:
            RegionUpdate.decode_single(payload, bounds=(1280, 1024))
        assert excinfo.value.reason == "semantic"

    def test_move_rectangle_outside_desktop_rejected(self):
        payload = MoveRectangle(1, 0, 0, 2000, 10, 0, 0).encode()
        with pytest.raises(ProtocolError):
            MoveRectangle.decode(payload, bounds=(1280, 1024))
        MoveRectangle.decode(payload)  # without bounds: accepted
