"""QuarantinePolicy unit behaviour: budgets, windows, cool-downs."""

import pytest

from repro.core.errors import ProtocolError
from repro.obs.instrumentation import Instrumentation
from repro.sharing.quarantine import QuarantinePolicy


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


class TestBudget:
    def test_below_budget_never_quarantines(self, clock):
        policy = QuarantinePolicy(clock, budget=5, window=10.0, cooldown=30.0)
        for _ in range(4):
            assert policy.record_rejection("p1", "rtp") is False
        assert not policy.is_quarantined("p1")

    def test_budget_trip_quarantines(self, clock):
        policy = QuarantinePolicy(clock, budget=5, window=10.0, cooldown=30.0)
        tripped = [policy.record_rejection("p1", "rtp") for _ in range(5)]
        assert tripped == [False] * 4 + [True]
        assert policy.is_quarantined("p1")
        assert policy.quarantined_peers == ["p1"]

    def test_peers_are_independent(self, clock):
        policy = QuarantinePolicy(clock, budget=2, window=10.0, cooldown=30.0)
        policy.record_rejection("bad", "rtp")
        policy.record_rejection("bad", "rtp")
        policy.record_rejection("good", "rtp")
        assert policy.is_quarantined("bad")
        assert not policy.is_quarantined("good")

    def test_budget_validation(self, clock):
        with pytest.raises(ValueError):
            QuarantinePolicy(clock, budget=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(clock, window=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(clock, cooldown=-1)


class TestSlidingWindow:
    def test_old_rejections_age_out(self, clock):
        policy = QuarantinePolicy(clock, budget=3, window=5.0, cooldown=30.0)
        policy.record_rejection("p1", "rtp")
        policy.record_rejection("p1", "rtp")
        clock.t = 6.0  # both rejections now outside the window
        assert policy.record_rejection("p1", "rtp") is False
        assert not policy.is_quarantined("p1")

    def test_sustained_garbage_trips_across_time(self, clock):
        policy = QuarantinePolicy(clock, budget=3, window=5.0, cooldown=30.0)
        for step in range(3):
            clock.t = step * 1.0  # all inside one window
            policy.record_rejection("p1", "rtp")
        assert policy.is_quarantined("p1")


class TestCooldown:
    def test_quarantine_expires(self, clock):
        policy = QuarantinePolicy(clock, budget=1, window=5.0, cooldown=10.0)
        policy.record_rejection("p1", "rtp")
        assert policy.is_quarantined("p1")
        clock.t = 9.99
        assert policy.is_quarantined("p1")
        clock.t = 10.0
        assert not policy.is_quarantined("p1")

    def test_rejections_during_quarantine_do_not_extend_it(self, clock):
        policy = QuarantinePolicy(clock, budget=1, window=5.0, cooldown=10.0)
        policy.record_rejection("p1", "rtp")
        clock.t = 5.0
        assert policy.record_rejection("p1", "rtp") is False
        clock.t = 10.0
        assert not policy.is_quarantined("p1")

    def test_forget_clears_everything(self, clock):
        policy = QuarantinePolicy(clock, budget=1, window=5.0, cooldown=10.0)
        policy.record_rejection("p1", "rtp")
        policy.forget("p1")
        assert not policy.is_quarantined("p1")
        assert policy.quarantined_peers == []


class TestMetrics:
    def test_counters_carry_surface_and_reason(self, clock):
        obs = Instrumentation()
        policy = QuarantinePolicy(clock, budget=2, window=5.0, cooldown=10.0,
                                  instrumentation=obs)
        policy.record_rejection(
            "p1", "rtp", ProtocolError("x", reason="truncated")
        )
        policy.record_rejection(
            "p1", "rtcp", ProtocolError("x", reason="overflow")
        )
        counters = obs.snapshot()["counters"]
        assert counters[
            "hardening.packets_rejected{reason=truncated,surface=rtp}"
        ] == 1
        assert counters[
            "hardening.packets_rejected{reason=overflow,surface=rtcp}"
        ] == 1
        assert counters["hardening.peers_quarantined"] == 1
        assert policy.packets_rejected == 2
        assert policy.peers_quarantined == 1

    def test_rejection_without_exception_counts_as_malformed(self, clock):
        obs = Instrumentation()
        policy = QuarantinePolicy(clock, instrumentation=obs)
        policy.record_rejection("p1", "bfcp")
        counters = obs.snapshot()["counters"]
        assert counters[
            "hardening.packets_rejected{reason=malformed,surface=bfcp}"
        ] == 1
