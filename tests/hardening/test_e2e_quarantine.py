"""End-to-end: a hostile peer is quarantined, an honest one converges.

The acceptance scenario for the hardening work: two participants share
one AH; one sends a sustained stream of garbage.  The AH must count the
rejections in the obs registry, quarantine the hostile peer, and keep
serving the well-behaved one — one bad apple must not wedge the
session.
"""

import pytest

from repro.apps.text_editor import TextEditorApp
from repro.obs.instrumentation import Instrumentation
from repro.rtp.clock import SimulatedClock
from repro.sharing.ah import ApplicationHost
from repro.sharing.config import SharingConfig
from repro.surface.geometry import Rect

from ..integration.helpers import settle, tcp_pair

GARBAGE = [
    b"",
    b"\x00",
    b"\xff" * 40,
    b"\x80\x63garbage-that-looks-rtp-ish" + b"\x00" * 8,
    bytes(range(64)),
]


@pytest.fixture
def clock():
    return SimulatedClock()


def _session(clock, obs, budget=8):
    config = SharingConfig(
        rejection_budget=budget, rejection_window=60.0,
        quarantine_cooldown=30.0,
    )
    ah = ApplicationHost(config=config, clock=clock.now, instrumentation=obs)
    window = ah.windows.create_window(Rect(40, 40, 300, 200))
    editor = TextEditorApp(window)
    ah.apps.attach(editor)
    honest = tcp_pair(clock, ah, "honest")
    hostile = tcp_pair(clock, ah, "hostile")
    settle(clock, ah, [honest, hostile], 40)
    return ah, editor, honest, hostile


class TestHostilePeerQuarantine:
    def test_hostile_peer_quarantined_honest_peer_converges(self, clock):
        obs = Instrumentation(clock=clock)
        ah, editor, honest, hostile = _session(clock, obs)
        assert honest.converged_with(ah.windows)

        # The hostile peer floods garbage; the honest one keeps working.
        for round_index in range(4):
            for junk in GARBAGE:
                hostile.transport.send_packet(junk)
            editor.type_text("x")
            settle(clock, ah, [honest, hostile], 10)

        assert ah.quarantine.is_quarantined("hostile")
        assert not ah.quarantine.is_quarantined("honest")

        # The honest participant still tracks AH state exactly.
        editor.type_text("still alive")
        settle(clock, ah, [honest, hostile], 40)
        assert honest.converged_with(ah.windows)

        # And the obs registry recorded the story.
        counters = obs.snapshot()["counters"]
        rejected = sum(
            count for key, count in counters.items()
            if key.startswith("hardening.packets_rejected{")
        )
        assert rejected >= ah.config.rejection_budget
        assert counters["hardening.peers_quarantined"] == 1

    def test_quarantine_expires_and_peer_recovers(self, clock):
        obs = Instrumentation(clock=clock)
        ah, editor, honest, hostile = _session(clock, obs, budget=4)
        for _ in range(2):
            for junk in GARBAGE:
                hostile.transport.send_packet(junk)
            settle(clock, ah, [honest, hostile], 10)
        assert ah.quarantine.is_quarantined("hostile")

        # Ride out the cool-down; the peer is served again afterwards.
        settle(clock, ah, [honest, hostile],
               rounds=int(ah.config.quarantine_cooldown / 0.02) + 10)
        assert not ah.quarantine.is_quarantined("hostile")
        editor.type_text("back")
        settle(clock, ah, [honest, hostile], 40)
        assert hostile.converged_with(ah.windows)

    def test_departing_peer_forgotten(self, clock):
        obs = Instrumentation(clock=clock)
        ah, editor, honest, hostile = _session(clock, obs, budget=4)
        for _ in range(2):
            for junk in GARBAGE:
                hostile.transport.send_packet(junk)
            settle(clock, ah, [honest, hostile], 10)
        assert ah.quarantine.is_quarantined("hostile")
        ah.remove_participant("hostile")
        assert ah.quarantine.quarantined_peers == []
