"""KeyTyped multi-packet UTF-8 reassembly and its ingress wiring."""

import pytest

from repro.apps.base import AppHost
from repro.apps.text_editor import TextEditorApp
from repro.core.errors import ProtocolError
from repro.core.header import CommonHeader
from repro.core.hip import KeyTyped, KeyTypedAssembler, MouseMoved
from repro.core.registry import MSG_KEY_TYPED
from repro.obs.instrumentation import Instrumentation
from repro.sharing.events import EventInjector
from repro.surface.geometry import Rect
from repro.surface.window import WindowManager


class TestAssembler:
    def test_whole_text_passes_through(self):
        assembler = KeyTypedAssembler()
        assert assembler.push("héllo ✓".encode("utf-8")) == "héllo ✓"
        assert assembler.pending == 0

    def test_sequence_torn_across_packets_reassembles(self):
        raw = "é".encode("utf-8")  # 2 bytes
        assembler = KeyTypedAssembler()
        assert assembler.push(raw[:1]) == ""
        assert assembler.pending == 1
        assert assembler.push(raw[1:]) == "é"
        assert assembler.pending == 0

    def test_four_byte_sequence_one_byte_at_a_time(self):
        raw = "🎉".encode("utf-8")
        assembler = KeyTypedAssembler()
        for byte in raw[:-1]:
            assert assembler.push(bytes([byte])) == ""
        assert assembler.push(raw[-1:]) == "🎉"

    def test_pending_is_bounded_by_construction(self):
        assembler = KeyTypedAssembler()
        assembler.push(b"\xf0\x9f\x8e")  # 3 of 4 bytes of an emoji
        assert assembler.pending <= 3

    def test_overlong_encoding_rejected(self):
        # 0xC0 0xAF is the classic overlong '/' — must never decode.
        assembler = KeyTypedAssembler()
        with pytest.raises(ProtocolError) as excinfo:
            assembler.push(b"\xc0\xaf")
        assert excinfo.value.reason == "semantic"

    def test_invalid_continuation_rejected_and_state_reset(self):
        assembler = KeyTypedAssembler()
        assembler.push(b"\xc3")  # first half of 'é'
        with pytest.raises(ProtocolError):
            assembler.push(b"\xff")
        # After the reset a clean push works.
        assert assembler.push(b"ok") == "ok"
        assert assembler.pending == 0

    def test_oversized_body_rejected(self):
        from repro.core.hip import MAX_KEY_TYPED_BYTES

        assembler = KeyTypedAssembler()
        with pytest.raises(ProtocolError) as excinfo:
            assembler.push(b"a" * (MAX_KEY_TYPED_BYTES + 1))
        assert excinfo.value.reason == "overflow"


def _injector(obs=None, rejections=None):
    manager = WindowManager(800, 600)
    window = manager.create_window(Rect(0, 0, 300, 200))
    apps = AppHost(manager)
    editor = TextEditorApp(window)
    apps.attach(editor)
    injector = EventInjector(
        manager, apps, instrumentation=obs,
        on_malformed=(
            None if rejections is None
            else lambda pid, exc: rejections.append((pid, exc.reason))
        ),
    )
    # Give the window keyboard focus via a click.
    injector.inject("p1", KeyTyped(window.window_id, ""))
    return injector, editor, window


def _key_typed_packet(window_id: int, body: bytes) -> bytes:
    return CommonHeader(MSG_KEY_TYPED, 0, window_id).encode() + body


class TestInjectorReassembly:
    def test_torn_sequence_reaches_app_once_complete(self):
        injector, editor, window = _injector()
        raw = "é".encode("utf-8")
        first = _key_typed_packet(window.window_id, raw[:1])
        second = _key_typed_packet(window.window_id, raw[1:])
        assert injector.inject_payload("p1", first) is True  # buffered
        assert "".join(editor.lines) == ""
        assert injector.inject_payload("p1", second) is True
        assert "é" in "".join(editor.lines)

    def test_senders_do_not_share_reassembly_state(self):
        injector, editor, window = _injector()
        raw = "é".encode("utf-8")
        injector.inject_payload("p1", _key_typed_packet(window.window_id, raw[:1]))
        # p2's complete message is unaffected by p1's pending bytes.
        assert injector.inject_payload(
            "p2", _key_typed_packet(window.window_id, b"x")
        ) is True
        assert injector.inject_payload(
            "p1", _key_typed_packet(window.window_id, raw[1:])
        ) is True
        assert "é" in "".join(editor.lines)

    def test_invalid_utf8_counts_drop_and_reports_malformed(self):
        obs = Instrumentation()
        rejections = []
        injector, editor, window = _injector(obs, rejections)
        bad = _key_typed_packet(window.window_id, b"\xc0\xaf")
        assert injector.inject_payload("p1", bad) is False
        assert injector.stats.rejected_malformed == 1
        assert injector.keytyped_dropped == 1
        assert rejections == [("p1", "semantic")]
        assert obs.snapshot()["counters"]["hardening.keytyped_dropped"] == 1

    def test_non_keytyped_message_aborts_pending_sequence(self):
        obs = Instrumentation()
        injector, editor, window = _injector(obs)
        raw = "é".encode("utf-8")
        injector.inject_payload("p1", _key_typed_packet(window.window_id, raw[:1]))
        injector.inject_payload("p1", MouseMoved(window.window_id, 5, 5).encode())
        assert injector.keytyped_dropped == 1
        # The stale continuation byte alone is now an invalid start byte.
        assert injector.inject_payload(
            "p1", _key_typed_packet(window.window_id, raw[1:])
        ) is False

    def test_unexpected_exception_propagates(self):
        injector, editor, window = _injector()

        class Boom(RuntimeError):
            pass

        def exploding(msg):
            raise Boom("handler bug")

        injector._key_typed = exploding
        packet = _key_typed_packet(window.window_id, b"x")
        with pytest.raises(Boom):
            injector.inject_payload("p1", packet)
